//! The POP (Performance Optimisation and Productivity) efficiency model used
//! in Section III of the paper, after Rosas, Giménez & Labarta, "Scalability
//! Prediction for Fundamental Performance Factors".
//!
//! * parallel efficiency = load balance × communication efficiency
//! * communication efficiency = synchronisation × transfer
//! * computation scalability = IPC scalability × instruction scalability
//! * global efficiency = parallel efficiency × computation scalability
//!
//! All factors are fractions in `[0, 1]`-ish (they can exceed 1 for
//! super-linear effects) and are printed as percentages by the table
//! renderer, matching Tables I and II.

use crate::trace::Trace;

/// Intra-run factors derived from a single trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntraFactors {
    /// Load balance: mean over lanes of compute time / max over lanes.
    pub load_balance: f64,
    /// Communication efficiency: max lane compute time / runtime.
    pub comm_efficiency: f64,
    /// Parallel efficiency: load balance × communication efficiency.
    pub parallel_efficiency: f64,
    /// Transfer efficiency: ideal (zero-transfer) runtime / runtime, when an
    /// ideal replay was provided.
    pub transfer: Option<f64>,
    /// Synchronisation efficiency: comm efficiency / transfer efficiency.
    pub sync: Option<f64>,
}

/// Inter-run scalability factors of a run relative to a reference run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalFactors {
    /// Accumulated compute time of the reference / accumulated compute time
    /// of this run (assuming the same useful work).
    pub computation: f64,
    /// Aggregate IPC of this run / aggregate IPC of the reference.
    pub ipc: f64,
    /// Total instructions of the reference / total instructions of this run.
    pub instructions: f64,
}

/// The complete factor set of one row of Table I / Table II.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EfficiencyFactors {
    /// See [`IntraFactors`].
    pub intra: IntraFactors,
    /// See [`ScalFactors`].
    pub scal: ScalFactors,
    /// Global efficiency = parallel efficiency × computation scalability.
    pub global: f64,
}

/// Computes intra-run factors. `runtime` overrides the trace extent (the
/// simulator knows the exact FFT-phase duration); `ideal_runtime` is the
/// runtime of a zero-transfer-cost replay (Dimemas-style) and enables the
/// sync/transfer split.
pub fn intra_factors(trace: &Trace, runtime: Option<f64>, ideal_runtime: Option<f64>) -> IntraFactors {
    let runtime = runtime.unwrap_or_else(|| trace.runtime());
    let lanes = trace.lanes();
    let compute: Vec<f64> = lanes.iter().map(|&l| trace.compute_time(l)).collect();
    let max_c = compute.iter().copied().fold(0.0_f64, f64::max);
    let mean_c = if compute.is_empty() {
        0.0
    } else {
        compute.iter().sum::<f64>() / compute.len() as f64
    };
    let load_balance = if max_c > 0.0 { mean_c / max_c } else { 1.0 };
    let comm_efficiency = if runtime > 0.0 { max_c / runtime } else { 1.0 };
    let transfer = ideal_runtime.map(|ideal| if runtime > 0.0 { ideal / runtime } else { 1.0 });
    let sync = transfer.map(|t| if t > 0.0 { comm_efficiency / t } else { 0.0 });
    IntraFactors {
        load_balance,
        comm_efficiency,
        parallel_efficiency: load_balance * comm_efficiency,
        transfer,
        sync,
    }
}

/// Computes scalability factors of `run` against `reference` (which is the
/// smallest configuration, 1×8 in the paper).
pub fn scalability_factors(reference: &Trace, run: &Trace) -> ScalFactors {
    let acc_ref: f64 = reference
        .lanes()
        .iter()
        .map(|&l| reference.compute_time(l))
        .sum();
    let acc_run: f64 = run.lanes().iter().map(|&l| run.compute_time(l)).sum();
    let computation = if acc_run > 0.0 { acc_ref / acc_run } else { 1.0 };
    let ipc_ref = reference.aggregate_ipc(None);
    let ipc_run = run.aggregate_ipc(None);
    let ipc = if ipc_ref > 0.0 { ipc_run / ipc_ref } else { 1.0 };
    let ins_ref = reference.total_instructions(None);
    let ins_run = run.total_instructions(None);
    let instructions = if ins_run > 0.0 { ins_ref / ins_run } else { 1.0 };
    ScalFactors {
        computation,
        ipc,
        instructions,
    }
}

/// Computes the full factor set for one run.
pub fn efficiency_factors(
    reference: &Trace,
    run: &Trace,
    runtime: Option<f64>,
    ideal_runtime: Option<f64>,
) -> EfficiencyFactors {
    let intra = intra_factors(run, runtime, ideal_runtime);
    let scal = scalability_factors(reference, run);
    EfficiencyFactors {
        intra,
        scal,
        global: intra.parallel_efficiency * scal.computation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CommOp, CommRecord, ComputeRecord, Lane, StateClass};

    fn burst(rank: usize, t0: f64, t1: f64, ins: f64, cyc: f64) -> ComputeRecord {
        ComputeRecord {
            lane: Lane::new(rank, 0),
            class: StateClass::FftXy,
            t_start: t0,
            t_end: t1,
            instructions: ins,
            cycles: cyc,
        }
    }

    fn comm(rank: usize, t0: f64, t1: f64) -> CommRecord {
        CommRecord {
            lane: Lane::new(rank, 0),
            op: CommOp::Alltoall,
            comm_id: 0,
            comm_size: 2,
            bytes: 8,
            t_start: t0,
            t_end: t1,
        }
    }

    #[test]
    fn perfectly_balanced_compute_only() {
        let mut t = Trace::default();
        t.compute.push(burst(0, 0.0, 1.0, 10.0, 10.0));
        t.compute.push(burst(1, 0.0, 1.0, 10.0, 10.0));
        let f = intra_factors(&t, None, None);
        assert!((f.load_balance - 1.0).abs() < 1e-12);
        assert!((f.comm_efficiency - 1.0).abs() < 1e-12);
        assert!((f.parallel_efficiency - 1.0).abs() < 1e-12);
        assert!(f.transfer.is_none() && f.sync.is_none());
    }

    #[test]
    fn imbalance_shows_in_lb() {
        let mut t = Trace::default();
        t.compute.push(burst(0, 0.0, 2.0, 10.0, 10.0)); // 2 s
        t.compute.push(burst(1, 0.0, 1.0, 10.0, 10.0)); // 1 s
        let f = intra_factors(&t, None, None);
        // mean 1.5, max 2.0 -> LB = 0.75; runtime 2.0, max compute 2.0 -> comm 1.0
        assert!((f.load_balance - 0.75).abs() < 1e-12);
        assert!((f.comm_efficiency - 1.0).abs() < 1e-12);
        assert!((f.parallel_efficiency - 0.75).abs() < 1e-12);
    }

    #[test]
    fn comm_time_lowers_comm_efficiency() {
        let mut t = Trace::default();
        t.compute.push(burst(0, 0.0, 1.0, 10.0, 10.0));
        t.comm.push(comm(0, 1.0, 2.0));
        t.compute.push(burst(1, 0.0, 1.0, 10.0, 10.0));
        t.comm.push(comm(1, 1.0, 2.0));
        let f = intra_factors(&t, None, None);
        assert!((f.comm_efficiency - 0.5).abs() < 1e-12);
        assert!((f.load_balance - 1.0).abs() < 1e-12);
    }

    #[test]
    fn transfer_sync_split() {
        let mut t = Trace::default();
        t.compute.push(burst(0, 0.0, 1.0, 10.0, 10.0));
        t.comm.push(comm(0, 1.0, 2.0));
        let f = intra_factors(&t, Some(2.0), Some(1.5));
        // transfer = 1.5/2.0 = 0.75; comm eff = 1.0/2.0 = 0.5; sync = 0.5/0.75
        assert!((f.transfer.unwrap() - 0.75).abs() < 1e-12);
        assert!((f.sync.unwrap() - 0.5 / 0.75).abs() < 1e-12);
    }

    #[test]
    fn scalability_against_reference() {
        let mut reference = Trace::default();
        reference.compute.push(burst(0, 0.0, 1.0, 100.0, 100.0)); // IPC 1.0
        let mut run = Trace::default();
        run.compute.push(burst(0, 0.0, 1.0, 50.0, 100.0)); // IPC 0.5
        run.compute.push(burst(1, 0.0, 1.0, 50.0, 100.0));
        let s = scalability_factors(&reference, &run);
        // accumulated compute: 1.0 vs 2.0
        assert!((s.computation - 0.5).abs() < 1e-12);
        assert!((s.ipc - 0.5).abs() < 1e-12);
        assert!((s.instructions - 1.0).abs() < 1e-12);
    }

    #[test]
    fn decomposition_identity() {
        // CompScal == IPCscal * InsScal when durations equal cycles/freq
        // (here freq = 1: duration == cycles).
        let mut reference = Trace::default();
        reference.compute.push(burst(0, 0.0, 2.0, 10.0, 2.0));
        let mut run = Trace::default();
        run.compute.push(burst(0, 0.0, 3.0, 12.0, 3.0));
        let s = scalability_factors(&reference, &run);
        assert!((s.computation - s.ipc * s.instructions).abs() < 1e-12);
    }

    #[test]
    fn full_factor_set() {
        let mut reference = Trace::default();
        reference.compute.push(burst(0, 0.0, 1.0, 10.0, 10.0));
        let mut run = Trace::default();
        run.compute.push(burst(0, 0.0, 1.0, 10.0, 10.0));
        run.comm.push(comm(0, 1.0, 1.25));
        let f = efficiency_factors(&reference, &run, None, None);
        assert!((f.intra.comm_efficiency - 0.8).abs() < 1e-12);
        assert!((f.global - 0.8).abs() < 1e-12);
    }

    #[test]
    fn empty_traces_do_not_divide_by_zero() {
        let t = Trace::default();
        let f = efficiency_factors(&t, &t, None, None);
        assert!(f.global.is_finite());
        assert!(f.intra.load_balance.is_finite());
        assert!(f.scal.ipc.is_finite());
    }
}
