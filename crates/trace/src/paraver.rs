//! Paraver trace export (`.prv` + `.pcf` + `.row`).
//!
//! The BSC tool chain the paper uses stores traces in Paraver's text format:
//! a header line, then one record per line — state records (`1:`), event
//! records (`2:`) and communication/virtual records. This module emits a
//! faithful subset so traces produced by this reproduction can be opened in
//! the actual Paraver GUI:
//!
//! * every compute burst becomes a **state record** with a per-phase state
//!   id plus an **event record** carrying the instruction/cycle counters
//!   (the PAPI-style counters Extrae emits);
//! * every communication operation becomes a state record in the "group
//!   communication" state plus an MPI-call event;
//! * the `.pcf` configuration file defines the state palette and event
//!   types; the `.row` file names the lanes.
//!
//! Times are written in microseconds (Paraver's default resolution is ns;
//! we use a µs timebase declared in the header).

use crate::event::{CommOp, StateClass};
use crate::trace::Trace;
use std::fmt::Write as _;

/// Paraver state id of a compute class (1 = Running flavours; 0 = idle).
fn state_id(class: StateClass) -> u32 {
    match class {
        StateClass::PsiPrep => 2,
        StateClass::Pack => 3,
        StateClass::FftZ => 4,
        StateClass::FftXy => 5,
        StateClass::Vofr => 6,
        StateClass::Unpack => 7,
        StateClass::Runtime => 8,
        StateClass::Other => 9,
    }
}

/// Group-communication state id.
const STATE_GROUP_COMM: u32 = 10;

/// Event type ids (following Extrae's numbering style).
const EV_INSTRUCTIONS: u64 = 42000050;
const EV_CYCLES: u64 = 42000059;
const EV_MPI_CALL: u64 = 50000002;

/// MPI-call event value per operation (0 = end of call).
fn mpi_value(op: CommOp) -> u64 {
    match op {
        CommOp::Alltoall => 11,
        CommOp::Alltoallv => 12,
        CommOp::Barrier => 8,
        CommOp::Allreduce => 10,
        CommOp::Bcast => 7,
        CommOp::Gather => 13,
        CommOp::SendRecv => 1,
    }
}

fn us(t: f64) -> u64 {
    (t * 1e6).round().max(0.0) as u64
}

/// A Paraver trace bundle: the three files Paraver expects.
pub struct ParaverBundle {
    /// The `.prv` trace body.
    pub prv: String,
    /// The `.pcf` semantic configuration.
    pub pcf: String,
    /// The `.row` lane-naming file.
    pub row: String,
}

/// Exports a trace to the Paraver format. Lanes map to Paraver's
/// application model as one task per lane with a single thread
/// (`cpu:app:task:thread` = `lane+1:1:lane+1:1`).
pub fn export_paraver(trace: &Trace) -> ParaverBundle {
    let lanes = trace.lanes();
    let nlanes = lanes.len().max(1);
    let t_end = us(trace.t_max());
    // `lanes` is built from the very records iterated below, so the lookup
    // always succeeds; fall back to lane 1 rather than panic the exporter.
    let lane_index = |l: &crate::event::Lane| -> usize {
        lanes.iter().position(|x| x == l).unwrap_or(0) + 1
    };

    // Header: #Paraver (dd/mm/yy at hh:mm):endTime_us:nNodes(cpus):nAppl:...
    let mut prv = String::new();
    let _ = writeln!(
        prv,
        "#Paraver (01/01/26 at 00:00):{t_end}_us:1({nlanes}):1:{nlanes}({})",
        (0..nlanes).map(|_| "1:1").collect::<Vec<_>>().join(",")
    );

    // Records must not need sorting for Paraver, but sorted output is
    // friendlier; collect and sort by start time.
    let mut records: Vec<(u64, String)> = Vec::new();
    for r in &trace.compute {
        let li = lane_index(&r.lane);
        let (t0, t1) = (us(r.t_start), us(r.t_end));
        let sid = state_id(r.class);
        records.push((t0, format!("1:{li}:1:{li}:1:{t0}:{t1}:{sid}")));
        // Counter events at burst end (Extrae convention).
        records.push((
            t1,
            format!(
                "2:{li}:1:{li}:1:{t1}:{EV_INSTRUCTIONS}:{}:{EV_CYCLES}:{}",
                r.instructions.round() as u64,
                r.cycles.round() as u64
            ),
        ));
    }
    for r in &trace.comm {
        let li = lane_index(&r.lane);
        let (t0, t1) = (us(r.t_start), us(r.t_end));
        records.push((t0, format!("1:{li}:1:{li}:1:{t0}:{t1}:{STATE_GROUP_COMM}")));
        records.push((
            t0,
            format!("2:{li}:1:{li}:1:{t0}:{EV_MPI_CALL}:{}", mpi_value(r.op)),
        ));
        records.push((t1, format!("2:{li}:1:{li}:1:{t1}:{EV_MPI_CALL}:0")));
    }
    records.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
    for (_, line) in records {
        prv.push_str(&line);
        prv.push('\n');
    }

    // .pcf: state palette + event semantics.
    let mut pcf = String::from(
        "DEFAULT_OPTIONS\n\nLEVEL               THREAD\nUNITS               MICROSEC\n\nSTATES\n0    Idle\n1    Running\n",
    );
    for class in StateClass::ALL {
        let _ = writeln!(pcf, "{}    {}", state_id(class), class.name());
    }
    let _ = writeln!(pcf, "{STATE_GROUP_COMM}    Group Communication");
    pcf.push_str("\nEVENT_TYPE\n");
    let _ = writeln!(pcf, "7  {EV_INSTRUCTIONS} Instructions (PAPI_TOT_INS)");
    let _ = writeln!(pcf, "7  {EV_CYCLES} Cycles (PAPI_TOT_CYC)");
    let _ = writeln!(pcf, "9  {EV_MPI_CALL} MPI Collective call");
    pcf.push_str("VALUES\n0 End\n");
    for op in [
        CommOp::SendRecv,
        CommOp::Bcast,
        CommOp::Barrier,
        CommOp::Allreduce,
        CommOp::Alltoall,
        CommOp::Alltoallv,
        CommOp::Gather,
    ] {
        let _ = writeln!(pcf, "{} {}", mpi_value(op), op.name());
    }

    // .row: lane labels.
    let mut row = String::new();
    let _ = writeln!(row, "LEVEL THREAD SIZE {nlanes}");
    for l in &lanes {
        let _ = writeln!(row, "THREAD 1.{}.1 (rank {} thread {})", l.rank + 1, l.rank, l.thread);
    }

    ParaverBundle { prv, pcf, row }
}

/// A per-phase profile (Paraver's "useful duration" table): total seconds,
/// burst count and mean IPC per state class, over the whole trace.
pub fn phase_profile(trace: &Trace) -> Vec<(StateClass, f64, usize, f64)> {
    StateClass::ALL
        .iter()
        .filter_map(|&class| {
            let bursts: Vec<_> = trace
                .compute
                .iter()
                .filter(|r| r.class == class)
                .collect();
            if bursts.is_empty() {
                return None;
            }
            let total: f64 = bursts.iter().map(|r| r.duration()).sum();
            Some((class, total, bursts.len(), trace.mean_ipc(class)))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CommRecord, ComputeRecord, Lane};

    fn sample() -> Trace {
        let mut t = Trace::default();
        t.compute.push(ComputeRecord {
            lane: Lane::new(0, 0),
            class: StateClass::FftXy,
            t_start: 0.0,
            t_end: 1e-3,
            instructions: 1e6,
            cycles: 2e6,
        });
        t.compute.push(ComputeRecord {
            lane: Lane::new(1, 0),
            class: StateClass::FftZ,
            t_start: 0.0,
            t_end: 2e-3,
            instructions: 5e5,
            cycles: 1e6,
        });
        t.comm.push(CommRecord {
            lane: Lane::new(0, 0),
            op: CommOp::Alltoall,
            comm_id: 3,
            comm_size: 2,
            bytes: 64,
            t_start: 1e-3,
            t_end: 1.5e-3,
        });
        t
    }

    #[test]
    fn header_declares_lanes_and_duration() {
        let b = export_paraver(&sample());
        let header = b.prv.lines().next().unwrap();
        assert!(header.starts_with("#Paraver"), "{header}");
        assert!(header.contains(":2000_us:"), "{header}");
        assert!(header.contains("1(2)"), "{header}");
    }

    #[test]
    fn state_records_cover_all_bursts() {
        let b = export_paraver(&sample());
        let states: Vec<&str> = b.prv.lines().filter(|l| l.starts_with("1:")).collect();
        // 2 compute + 1 comm state records.
        assert_eq!(states.len(), 3);
        // Lane 1, FftXy (state 5), 0..1000us.
        assert!(states.contains(&"1:1:1:1:1:0:1000:5"), "{states:?}");
        // Lane 2, FftZ (state 4), 0..2000us.
        assert!(states.contains(&"1:2:1:2:1:0:2000:4"));
        // Comm state 10 on lane 1.
        assert!(states.contains(&"1:1:1:1:1:1000:1500:10"));
    }

    #[test]
    fn counter_and_mpi_events_present() {
        let b = export_paraver(&sample());
        let events: Vec<&str> = b.prv.lines().filter(|l| l.starts_with("2:")).collect();
        // 2 counter events + 2 mpi begin/end events.
        assert_eq!(events.len(), 4);
        assert!(events
            .iter()
            .any(|e| e.contains(&format!("{EV_INSTRUCTIONS}:1000000")) && e.contains(&format!("{EV_CYCLES}:2000000"))));
        assert!(events.iter().any(|e| e.ends_with(&format!("{EV_MPI_CALL}:11"))));
        assert!(events.iter().any(|e| e.ends_with(&format!("{EV_MPI_CALL}:0"))));
    }

    #[test]
    fn records_are_time_sorted() {
        let b = export_paraver(&sample());
        let times: Vec<u64> = b
            .prv
            .lines()
            .skip(1)
            .map(|l| l.split(':').nth(5).unwrap().parse().unwrap())
            .collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted);
    }

    #[test]
    fn pcf_and_row_are_consistent() {
        let b = export_paraver(&sample());
        assert!(b.pcf.contains("STATES"));
        assert!(b.pcf.contains("fft-xy"));
        assert!(b.pcf.contains("Group Communication"));
        assert!(b.pcf.contains("Alltoall"));
        assert!(b.row.contains("LEVEL THREAD SIZE 2"));
        assert!(b.row.contains("(rank 0 thread 0)"));
        assert!(b.row.contains("(rank 1 thread 0)"));
    }

    #[test]
    fn empty_trace_exports_cleanly() {
        let b = export_paraver(&Trace::default());
        assert!(b.prv.starts_with("#Paraver"));
        assert_eq!(b.prv.lines().count(), 1);
    }

    #[test]
    fn phase_profile_aggregates() {
        let p = phase_profile(&sample());
        assert_eq!(p.len(), 2);
        let (class, total, count, ipc) = p.iter().find(|e| e.0 == StateClass::FftXy).copied().unwrap();
        assert_eq!(class, StateClass::FftXy);
        assert!((total - 1e-3).abs() < 1e-12);
        assert_eq!(count, 1);
        assert!((ipc - 0.5).abs() < 1e-12);
    }
}
