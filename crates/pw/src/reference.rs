//! Serial reference pipeline: the single-rank, dense-grid version of the
//! miniapp kernel. The distributed implementation in `fftx-core` is verified
//! bit-for-bit (up to float tolerance) against this.

use crate::grid::FftGrid;
use crate::potential::apply_potential;
use crate::sticks::StickSet;
use fftx_fft::{Complex64, Fft3};

/// Spreads canonical stick-major coefficients onto the dense G-space grid.
pub fn coeffs_to_grid(set: &StickSet, grid: &FftGrid, coeffs: &[Complex64]) -> Vec<Complex64> {
    assert_eq!(coeffs.len(), set.ngw, "coeffs_to_grid: length mismatch");
    let mut dense = vec![Complex64::ZERO; grid.volume()];
    for (s, stick) in set.sticks.iter().enumerate() {
        let base = set.offsets[s];
        for (n, &iz) in stick.iz.iter().enumerate() {
            dense[grid.linear(stick.ix, stick.iy, iz)] = coeffs[base + n];
        }
    }
    dense
}

/// Gathers canonical coefficients back from the dense G-space grid.
pub fn grid_to_coeffs(set: &StickSet, grid: &FftGrid, dense: &[Complex64]) -> Vec<Complex64> {
    assert_eq!(dense.len(), grid.volume(), "grid_to_coeffs: length mismatch");
    let mut coeffs = vec![Complex64::ZERO; set.ngw];
    for (s, stick) in set.sticks.iter().enumerate() {
        let base = set.offsets[s];
        for (n, &iz) in stick.iz.iter().enumerate() {
            coeffs[base + n] = dense[grid.linear(stick.ix, stick.iy, iz)];
        }
    }
    coeffs
}

/// Applies the real-space-diagonal operator to one band:
/// `c' = FFT_fw( V(r) * FFT_inv(c) )`, both transforms on the dense grid
/// with the QE scaling convention (forward carries 1/N).
pub fn apply_vloc_band(
    set: &StickSet,
    grid: &FftGrid,
    plan: &Fft3,
    v: &[f64],
    coeffs: &[Complex64],
) -> Vec<Complex64> {
    let mut dense = coeffs_to_grid(set, grid, coeffs);
    plan.inverse(&mut dense);
    apply_potential(&mut dense, v, grid);
    plan.forward(&mut dense);
    grid_to_coeffs(set, grid, &dense)
}

/// Applies the operator to every band (the serial equivalent of one full
/// FFTXlib loop pass).
pub fn apply_vloc(
    set: &StickSet,
    grid: &FftGrid,
    v: &[f64],
    bands: &[Vec<Complex64>],
) -> Vec<Vec<Complex64>> {
    let plan = Fft3::new(grid.nr1, grid.nr2, grid.nr3);
    bands
        .iter()
        .map(|b| apply_vloc_band(set, grid, &plan, v, b))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{Cell, DUAL};
    use crate::gvec::GSphere;
    use crate::wave::{band_norm2, generate_band};
    use fftx_fft::max_dist;

    fn setup() -> (FftGrid, StickSet) {
        let cell = Cell::cubic(6.0);
        let grid = FftGrid::from_cutoff(&cell, DUAL * 6.0);
        let sphere = GSphere::generate(&cell, 6.0, &grid);
        let set = StickSet::build(&sphere, &grid);
        (grid, set)
    }

    #[test]
    fn grid_spread_gather_roundtrip() {
        let (grid, set) = setup();
        let band = generate_band(&set, 0, 5);
        let dense = coeffs_to_grid(&set, &grid, &band);
        // Exactly ngw non-zeros.
        let nz = dense.iter().filter(|c| c.norm_sqr() > 0.0).count();
        assert!(nz <= set.ngw);
        let back = grid_to_coeffs(&set, &grid, &dense);
        assert_eq!(back, band);
    }

    #[test]
    fn identity_potential_is_identity_operator() {
        let (grid, set) = setup();
        let band = generate_band(&set, 1, 9);
        let v = vec![1.0; grid.volume()];
        let out = apply_vloc(&set, &grid, &v, std::slice::from_ref(&band));
        assert!(max_dist(&out[0], &band) < 1e-10);
    }

    #[test]
    fn constant_potential_scales_coefficients() {
        let (grid, set) = setup();
        let band = generate_band(&set, 2, 9);
        let v = vec![2.5; grid.volume()];
        let out = apply_vloc(&set, &grid, &v, std::slice::from_ref(&band));
        let scaled: Vec<_> = band.iter().map(|c| c.scale(2.5)).collect();
        assert!(max_dist(&out[0], &scaled) < 1e-10);
    }

    #[test]
    fn operator_is_linear() {
        let (grid, set) = setup();
        let a = generate_band(&set, 3, 1);
        let b = generate_band(&set, 4, 1);
        let v = crate::potential::generate_potential(&grid, 2);
        let sum: Vec<_> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        let out = apply_vloc(&set, &grid, &v, &[a, b, sum]);
        let combined: Vec<_> = out[0].iter().zip(&out[1]).map(|(x, y)| *x + *y).collect();
        assert!(max_dist(&out[2], &combined) < 1e-9);
    }

    #[test]
    fn positive_potential_preserves_nonzero_norm() {
        let (grid, set) = setup();
        let band = generate_band(&set, 0, 77);
        let v = crate::potential::generate_potential(&grid, 3);
        let out = apply_vloc(&set, &grid, &v, std::slice::from_ref(&band));
        assert!(band_norm2(&out[0]) > 0.0);
        // V > 0 everywhere cannot annihilate the band, and the G-sphere
        // truncation only removes energy.
        assert!(band_norm2(&out[0]).is_finite());
    }
}
