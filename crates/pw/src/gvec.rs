//! G-vector sphere generation. In a plane-wave DFT code the kinetic-energy
//! cutoff restricts the wavefunction expansion to Miller triples inside a
//! sphere — this is why the FFT domain "is shaped as a sphere rather than a
//! 3D cube" (paper, Section II.A) and why the data must be redistributed
//! before the parallel FFT.

use crate::cell::Cell;
use crate::grid::FftGrid;

/// One plane wave: the Miller triple and its squared norm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GVector {
    /// Miller indices.
    pub miller: (i32, i32, i32),
    /// `h^2 + k^2 + l^2` (kinetic energy in units of `tpiba^2` Ry).
    pub norm2: f64,
}

/// The set of G-vectors inside a cutoff sphere, in canonical order
/// (ascending `norm2`, ties broken by Miller triple).
#[derive(Debug, Clone)]
pub struct GSphere {
    /// Squared cutoff in Miller units.
    pub gcut2: f64,
    /// The vectors, canonically ordered.
    pub vectors: Vec<GVector>,
}

impl GSphere {
    /// Enumerates all Miller triples with `|m|^2 <= gcut2` for a cutoff
    /// `ecut` (Ry). The `grid` bounds guard against aliasing (every vector
    /// must be representable on the grid).
    pub fn generate(cell: &Cell, ecut_ry: f64, grid: &FftGrid) -> Self {
        let gcut2 = cell.gcut2(ecut_ry);
        let nmax = gcut2.sqrt().floor() as i32;
        let (mx, my, mz) = grid.max_miller();
        assert!(
            nmax <= mx && nmax <= my && nmax <= mz,
            "GSphere: cutoff sphere (radius {nmax}) exceeds the FFT grid \
             ({mx},{my},{mz}) — use a denser grid"
        );
        let mut vectors = Vec::new();
        for h in -nmax..=nmax {
            for k in -nmax..=nmax {
                let hk2 = (h * h + k * k) as f64;
                if hk2 > gcut2 {
                    continue;
                }
                let lmax = ((gcut2 - hk2).sqrt()).floor() as i32;
                for l in -lmax..=lmax {
                    let norm2 = hk2 + (l * l) as f64;
                    vectors.push(GVector {
                        miller: (h, k, l),
                        norm2,
                    });
                }
            }
        }
        vectors.sort_by(|a, b| {
            a.norm2
                .total_cmp(&b.norm2)
                .then(a.miller.cmp(&b.miller))
        });
        GSphere { gcut2, vectors }
    }

    /// Number of plane waves (QE's `ngw` / `ngm`).
    #[inline]
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// True when no vector is inside the cutoff (cannot happen for positive
    /// cutoffs: G = 0 is always included).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::DUAL;

    fn setup(ecut: f64, alat: f64) -> (Cell, FftGrid, GSphere) {
        let cell = Cell::cubic(alat);
        let grid = FftGrid::from_cutoff(&cell, DUAL * ecut);
        let sphere = GSphere::generate(&cell, ecut, &grid);
        (cell, grid, sphere)
    }

    #[test]
    fn gamma_point_always_included() {
        let (_, _, s) = setup(4.0, 6.0);
        assert_eq!(s.vectors[0].miller, (0, 0, 0));
        assert_eq!(s.vectors[0].norm2, 0.0);
        assert!(!s.is_empty());
    }

    #[test]
    fn count_matches_sphere_volume_estimate() {
        let (cell, _, s) = setup(20.0, 10.0);
        let r = cell.gcut2(20.0).sqrt();
        let estimate = 4.0 / 3.0 * std::f64::consts::PI * r.powi(3);
        let ratio = s.len() as f64 / estimate;
        assert!(
            (0.9..1.1).contains(&ratio),
            "count {} vs estimate {estimate}",
            s.len()
        );
    }

    #[test]
    fn all_vectors_inside_cutoff_and_none_missed() {
        let (cell, _, s) = setup(10.0, 8.0);
        let gcut2 = cell.gcut2(10.0);
        for v in &s.vectors {
            let (h, k, l) = v.miller;
            assert!(v.norm2 <= gcut2 + 1e-12);
            assert_eq!(v.norm2, (h * h + k * k + l * l) as f64);
        }
        // Exhaustive recount.
        let nmax = gcut2.sqrt().ceil() as i32 + 1;
        let mut count = 0;
        for h in -nmax..=nmax {
            for k in -nmax..=nmax {
                for l in -nmax..=nmax {
                    if ((h * h + k * k + l * l) as f64) <= gcut2 {
                        count += 1;
                    }
                }
            }
        }
        assert_eq!(count, s.len());
    }

    #[test]
    fn inversion_symmetric() {
        let (_, _, s) = setup(12.0, 7.0);
        use std::collections::HashSet;
        let set: HashSet<(i32, i32, i32)> = s.vectors.iter().map(|v| v.miller).collect();
        for v in &s.vectors {
            let (h, k, l) = v.miller;
            assert!(set.contains(&(-h, -k, -l)));
        }
    }

    #[test]
    fn canonical_order_is_by_norm_then_miller() {
        let (_, _, s) = setup(9.0, 9.0);
        for w in s.vectors.windows(2) {
            assert!(
                w[0].norm2 < w[1].norm2
                    || (w[0].norm2 == w[1].norm2 && w[0].miller < w[1].miller)
            );
        }
    }

    #[test]
    fn paper_scale_counts() {
        // ecut 80 Ry, alat 20 bohr: ~96-97k wavefunction G-vectors.
        let (_, _, s) = setup(80.0, 20.0);
        assert!(
            (90_000..105_000).contains(&s.len()),
            "ngw = {} out of expected band",
            s.len()
        );
    }

    #[test]
    #[should_panic(expected = "exceeds the FFT grid")]
    fn aliasing_grid_rejected() {
        let cell = Cell::cubic(10.0);
        let tiny = FftGrid::new(4, 4, 4);
        GSphere::generate(&cell, 50.0, &tiny);
    }
}
