//! 2-D (pencil) process grid for the scatter exchange.
//!
//! The slab decomposition moves sticks↔planes with one padded alltoall over
//! all R ranks of a scatter family. The pencil decomposition factors those R
//! ranks into a p1 × p2 grid and replaces the single exchange with two
//! smaller transposes: an alltoall over each *row* (p2 ranks) followed by an
//! alltoall over each *column* (p1 ranks). Total volume roughly doubles, but
//! the per-message constant drops from (R − 1) messages to (p1 + p2 − 2) —
//! the AccFFT trade-off that wins at high rank counts.
//!
//! The grid is pure index arithmetic: rank `g` of a scatter family sits at
//! row `g / p2`, column `g % p2`. [`ProcessGrid::chunk_pos`] gives the
//! staging permutation that makes the two-phase exchange land its receive
//! buffer in *exactly* the slab order, so the unpack side of the pipeline is
//! untouched and slab/pencil results are bitwise identical by construction.

/// A p1 × p2 factorisation of a scatter family of `r = p1 * p2` ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcessGrid {
    /// Number of rows (column-communicator size).
    pub p1: usize,
    /// Number of columns (row-communicator size).
    pub p2: usize,
}

impl ProcessGrid {
    /// Factors `r` into p1 × p2 with p2 the largest divisor ≤ √r (so
    /// p1 ≥ p2, and prime r degenerates to a 1-wide grid whose row
    /// exchange is a self-copy).
    ///
    /// # Panics
    /// Panics when `r` is zero.
    pub fn factor(r: usize) -> Self {
        assert!(r > 0, "ProcessGrid: r must be positive");
        let mut p2 = 1;
        let mut d = 1;
        while d * d <= r {
            if r.is_multiple_of(d) {
                p2 = d;
            }
            d += 1;
        }
        ProcessGrid { p1: r / p2, p2 }
    }

    /// Total ranks in the family.
    pub fn r(self) -> usize {
        self.p1 * self.p2
    }

    /// Row of family-rank `g` (ranks of one row share a row communicator of
    /// size p2).
    pub fn row(self, g: usize) -> usize {
        g / self.p2
    }

    /// Column of family-rank `g` (ranks of one column share a column
    /// communicator of size p1).
    pub fn col(self, g: usize) -> usize {
        g % self.p2
    }

    /// Staging slot for the chunk destined to family-rank `gp`: the pack
    /// step writes gp's chunk at `chunk_pos(gp) * chunk` instead of
    /// `gp * chunk`, so that after the row exchange, the mid-restage, and
    /// the column exchange the receive buffer holds chunks in plain
    /// source-rank order — the slab order the unpack tables expect.
    pub fn chunk_pos(self, gp: usize) -> usize {
        self.col(gp) * self.p1 + self.row(gp)
    }

    /// True when the grid is degenerate (a single row): the row exchange is
    /// a self-copy and the column exchange is the full slab alltoall.
    pub fn is_degenerate(self) -> bool {
        self.p2 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_prefers_square() {
        assert_eq!(ProcessGrid::factor(64), ProcessGrid { p1: 8, p2: 8 });
        assert_eq!(ProcessGrid::factor(12), ProcessGrid { p1: 4, p2: 3 });
        assert_eq!(ProcessGrid::factor(6), ProcessGrid { p1: 3, p2: 2 });
        assert_eq!(ProcessGrid::factor(2), ProcessGrid { p1: 2, p2: 1 });
        assert_eq!(ProcessGrid::factor(1), ProcessGrid { p1: 1, p2: 1 });
    }

    #[test]
    fn prime_r_degenerates() {
        let g = ProcessGrid::factor(7);
        assert_eq!(g, ProcessGrid { p1: 7, p2: 1 });
        assert!(g.is_degenerate());
        // Degenerate chunk_pos is the identity.
        for gp in 0..7 {
            assert_eq!(g.chunk_pos(gp), gp);
        }
    }

    #[test]
    fn chunk_pos_is_a_permutation() {
        for r in 1..=24 {
            let g = ProcessGrid::factor(r);
            assert_eq!(g.r(), r);
            let mut seen = vec![false; r];
            for gp in 0..r {
                let p = g.chunk_pos(gp);
                assert!(!seen[p], "duplicate slot {p} for r={r}");
                seen[p] = true;
            }
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // rank indices drive both sides
    fn two_phase_exchange_lands_in_slab_order() {
        // Simulate the full pencil exchange over a family of r virtual
        // ranks with one-element chunks and check that every rank's final
        // receive buffer equals the slab alltoall result: slot `src` holds
        // the chunk source rank `src` addressed to it.
        for r in [4usize, 6, 8, 9, 12, 16] {
            let grid = ProcessGrid::factor(r);
            let (p1, p2) = (grid.p1, grid.p2);
            // send[g][slot] = (source, destination) packed by chunk_pos.
            let send: Vec<Vec<(usize, usize)>> = (0..r)
                .map(|g| {
                    let mut s = vec![(usize::MAX, usize::MAX); r];
                    for gp in 0..r {
                        s[grid.chunk_pos(gp)] = (g, gp);
                    }
                    s
                })
                .collect();
            // Phase 1: alltoall over each row (members = columns c, block
            // = p1 chunks).
            let mut recv1 = vec![vec![(usize::MAX, usize::MAX); r]; r];
            for g in 0..r {
                let row = grid.row(g);
                let me = grid.col(g);
                for c in 0..p2 {
                    let peer = row * p2 + c;
                    // Block `me` of peer's send buffer lands as block
                    // `c` of my receive buffer.
                    for k in 0..p1 {
                        recv1[g][c * p1 + k] = send[peer][me * p1 + k];
                    }
                }
            }
            // Restage: mid[rp * p2 + c] = recv1[c * p1 + rp].
            let mut mid = vec![vec![(usize::MAX, usize::MAX); r]; r];
            for g in 0..r {
                for rp in 0..p1 {
                    for c in 0..p2 {
                        mid[g][rp * p2 + c] = recv1[g][c * p1 + rp];
                    }
                }
            }
            // Phase 2: alltoall over each column (members = rows rp,
            // block = p2 chunks).
            let mut recv2 = vec![vec![(usize::MAX, usize::MAX); r]; r];
            for g in 0..r {
                let col = grid.col(g);
                let me = grid.row(g);
                for rp in 0..p1 {
                    let peer = rp * p2 + col;
                    for k in 0..p2 {
                        recv2[g][rp * p2 + k] = mid[peer][me * p2 + k];
                    }
                }
            }
            for g in 0..r {
                for src in 0..r {
                    assert_eq!(
                        recv2[g][src],
                        (src, g),
                        "r={r} rank {g} slot {src}: pencil exchange broke slab order"
                    );
                }
            }
        }
    }
}
