//! Synthetic Kohn–Sham band coefficients.
//!
//! The paper's benchmark applies the FFT kernel to 128 bands; the physical
//! content of the coefficients is irrelevant to the kernel's performance and
//! data flow, so we generate a deterministic, physically shaped spectrum:
//! random phases with amplitudes decaying as `1 / (1 + |G|^2)`, the typical
//! falloff of smooth wavefunctions. Coefficients are stored in the canonical
//! stick-major order of [`crate::sticks::StickSet`].

use crate::sticks::{StickDist, StickSet};
use fftx_fft::{c64, Complex64};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates the canonical coefficient vector of one band.
pub fn generate_band(set: &StickSet, band: usize, seed: u64) -> Vec<Complex64> {
    let mut rng = StdRng::seed_from_u64(seed ^ (band as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut coeffs = vec![Complex64::ZERO; set.ngw];
    for (s, stick) in set.sticks.iter().enumerate() {
        let base = set.offsets[s];
        let (h, k) = stick.hk;
        let hk2 = (h * h + k * k) as f64;
        for (idx, &l) in stick.lz.iter().enumerate() {
            let norm2 = hk2 + (l * l) as f64;
            let amp = 1.0 / (1.0 + norm2);
            let re: f64 = rng.gen_range(-1.0..1.0);
            let im: f64 = rng.gen_range(-1.0..1.0);
            coeffs[base + idx] = c64(re, im).scale(amp);
        }
    }
    coeffs
}

/// Generates `nbnd` bands.
pub fn generate_bands(set: &StickSet, nbnd: usize, seed: u64) -> Vec<Vec<Complex64>> {
    (0..nbnd).map(|b| generate_band(set, b, seed)).collect()
}

/// Extracts rank `rank`'s share of a canonical band vector: the slices of
/// its sticks, concatenated in ascending stick order.
pub fn extract_share(set: &StickSet, dist: &StickDist, rank: usize, band: &[Complex64]) -> Vec<Complex64> {
    assert_eq!(band.len(), set.ngw, "extract_share: band length mismatch");
    let mut out = Vec::with_capacity(dist.ngw_per_rank[rank]);
    for &s in &dist.per_rank[rank] {
        out.extend_from_slice(&band[set.coeff_range(s)]);
    }
    out
}

/// Reassembles a canonical band vector from all per-rank shares (inverse of
/// [`extract_share`] applied to every rank).
pub fn assemble_shares(set: &StickSet, dist: &StickDist, shares: &[Vec<Complex64>]) -> Vec<Complex64> {
    assert_eq!(shares.len(), dist.nranks(), "assemble_shares: rank count");
    let mut out = vec![Complex64::ZERO; set.ngw];
    for (rank, share) in shares.iter().enumerate() {
        let mut off = 0;
        for &s in &dist.per_rank[rank] {
            let range = set.coeff_range(s);
            let len = range.len();
            out[range].copy_from_slice(&share[off..off + len]);
            off += len;
        }
        assert_eq!(off, share.len(), "assemble_shares: share {rank} length");
    }
    out
}

/// Norm-squared of a coefficient vector (plane-wave "charge").
pub fn band_norm2(band: &[Complex64]) -> f64 {
    band.iter().map(|c| c.norm_sqr()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{Cell, DUAL};
    use crate::grid::FftGrid;
    use crate::gvec::GSphere;

    fn setup() -> (StickSet, StickDist) {
        let cell = Cell::cubic(8.0);
        let grid = FftGrid::from_cutoff(&cell, DUAL * 8.0);
        let sphere = GSphere::generate(&cell, 8.0, &grid);
        let set = StickSet::build(&sphere, &grid);
        let dist = StickDist::balance(&set, 4);
        (set, dist)
    }

    #[test]
    fn generation_is_deterministic_per_band_and_seed() {
        let (set, _) = setup();
        let a = generate_band(&set, 3, 42);
        let b = generate_band(&set, 3, 42);
        assert_eq!(a, b);
        let c = generate_band(&set, 4, 42);
        assert_ne!(a, c);
        let d = generate_band(&set, 3, 43);
        assert_ne!(a, d);
    }

    #[test]
    fn amplitudes_decay_with_norm() {
        let (set, _) = setup();
        let band = generate_band(&set, 0, 7);
        // G = 0 coefficient has amplitude scale 1; find a high-|G| stick.
        let (far_s, far) = set
            .sticks
            .iter()
            .enumerate()
            .max_by_key(|(_, s)| s.hk.0 * s.hk.0 + s.hk.1 * s.hk.1)
            .unwrap();
        let hk2 = (far.hk.0 * far.hk.0 + far.hk.1 * far.hk.1) as f64;
        let idx = set.offsets[far_s];
        assert!(band[idx].abs() <= 2.0_f64.sqrt() / (1.0 + hk2) + 1e-12);
    }

    #[test]
    fn share_extract_assemble_roundtrip() {
        let (set, dist) = setup();
        let band = generate_band(&set, 1, 99);
        let shares: Vec<Vec<Complex64>> = (0..dist.nranks())
            .map(|r| extract_share(&set, &dist, r, &band))
            .collect();
        let total: usize = shares.iter().map(|s| s.len()).sum();
        assert_eq!(total, set.ngw);
        for (r, s) in shares.iter().enumerate() {
            assert_eq!(s.len(), dist.ngw_per_rank[r]);
        }
        let back = assemble_shares(&set, &dist, &shares);
        assert_eq!(back, band);
    }

    #[test]
    fn generate_bands_count() {
        let (set, _) = setup();
        let bands = generate_bands(&set, 5, 1);
        assert_eq!(bands.len(), 5);
        for b in &bands {
            assert_eq!(b.len(), set.ngw);
            assert!(band_norm2(b) > 0.0);
        }
    }
}
