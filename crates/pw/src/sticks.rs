//! Sticks: the z-columns of the G-space grid that intersect the cutoff
//! sphere, and their load-balanced distribution over ranks.
//!
//! Because the G-vectors fill a sphere, only ~pi/4 of the (x, y) columns
//! carry data; the parallel 3-D FFT therefore works on *sticks* (full
//! z-columns at occupied (x, y) positions), does the 1-D transforms along
//! z there, and only then scatters to dense xy planes. Sticks are
//! distributed over ranks balancing the number of plane waves per rank,
//! exactly like QE's `sticks_map`.

use crate::grid::FftGrid;
use crate::gvec::GSphere;

/// One stick: a z-column of the G-space grid inside the cutoff.
#[derive(Debug, Clone, PartialEq)]
pub struct Stick {
    /// Miller (h, k) of the column.
    pub hk: (i32, i32),
    /// Wrapped grid x index.
    pub ix: usize,
    /// Wrapped grid y index.
    pub iy: usize,
    /// Miller l values of the plane waves on this stick, ascending.
    pub lz: Vec<i32>,
    /// Wrapped grid z indices, parallel to `lz`.
    pub iz: Vec<usize>,
}

impl Stick {
    /// Number of plane waves on the stick.
    #[inline]
    pub fn len(&self) -> usize {
        self.lz.len()
    }

    /// True when the stick carries no plane wave (never constructed).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lz.is_empty()
    }
}

/// All sticks of a cutoff sphere, in canonical order (ascending
/// `h^2 + k^2`, ties by `(h, k)`), plus the canonical coefficient layout:
/// wavefunction coefficients are stored stick-major, z-ascending.
#[derive(Debug, Clone)]
pub struct StickSet {
    /// Sticks in canonical order.
    pub sticks: Vec<Stick>,
    /// Coefficient offset of each stick in the canonical band layout.
    pub offsets: Vec<usize>,
    /// Total number of plane waves (== sphere size).
    pub ngw: usize,
}

impl StickSet {
    /// Groups a sphere's vectors into sticks.
    pub fn build(sphere: &GSphere, grid: &FftGrid) -> Self {
        use std::collections::BTreeMap;
        let mut columns: BTreeMap<(i64, i32, i32), Vec<i32>> = BTreeMap::new();
        for v in &sphere.vectors {
            let (h, k, l) = v.miller;
            let key = ((h as i64) * (h as i64) + (k as i64) * (k as i64), h, k);
            columns.entry(key).or_default().push(l);
        }
        let mut sticks = Vec::with_capacity(columns.len());
        let mut offsets = Vec::with_capacity(columns.len());
        let mut off = 0;
        for ((_, h, k), mut lz) in columns {
            lz.sort_unstable();
            let iz: Vec<usize> = lz.iter().map(|&l| FftGrid::wrap(l, grid.nr3)).collect();
            offsets.push(off);
            off += lz.len();
            sticks.push(Stick {
                hk: (h, k),
                ix: FftGrid::wrap(h, grid.nr1),
                iy: FftGrid::wrap(k, grid.nr2),
                lz,
                iz,
            });
        }
        StickSet {
            sticks,
            offsets,
            ngw: off,
        }
    }

    /// Number of sticks (QE's `nst`).
    #[inline]
    pub fn nst(&self) -> usize {
        self.sticks.len()
    }

    /// Coefficient range of stick `s` in the canonical band layout.
    #[inline]
    pub fn coeff_range(&self, s: usize) -> std::ops::Range<usize> {
        self.offsets[s]..self.offsets[s] + self.sticks[s].len()
    }
}

/// A distribution of sticks over `nranks` ranks.
#[derive(Debug, Clone)]
pub struct StickDist {
    /// Owner rank of each stick (canonical stick order).
    pub owner: Vec<usize>,
    /// Stick ids per rank, each ascending.
    pub per_rank: Vec<Vec<usize>>,
    /// Plane waves per rank.
    pub ngw_per_rank: Vec<usize>,
}

impl StickDist {
    /// Balanced distribution: sticks sorted by length descending are
    /// assigned greedily to the rank with the fewest plane waves (ties:
    /// fewest sticks, then lowest rank) — QE's `sticks_dist` strategy.
    pub fn balance(set: &StickSet, nranks: usize) -> Self {
        assert!(nranks > 0, "StickDist: need at least one rank");
        let mut order: Vec<usize> = (0..set.nst()).collect();
        order.sort_by_key(|&s| (std::cmp::Reverse(set.sticks[s].len()), s));
        let mut owner = vec![0usize; set.nst()];
        let mut per_rank: Vec<Vec<usize>> = vec![Vec::new(); nranks];
        let mut ngw_per_rank = vec![0usize; nranks];
        for s in order {
            let best = (0..nranks)
                .min_by_key(|&r| (ngw_per_rank[r], per_rank[r].len(), r))
                .expect("nranks > 0");
            owner[s] = best;
            per_rank[best].push(s);
            ngw_per_rank[best] += set.sticks[s].len();
        }
        for list in per_rank.iter_mut() {
            list.sort_unstable();
        }
        StickDist {
            owner,
            per_rank,
            ngw_per_rank,
        }
    }

    /// Number of ranks.
    #[inline]
    pub fn nranks(&self) -> usize {
        self.per_rank.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{Cell, DUAL};
    use crate::grid::FftGrid;
    use crate::gvec::GSphere;

    fn setup(ecut: f64, alat: f64) -> (FftGrid, GSphere, StickSet) {
        let cell = Cell::cubic(alat);
        let grid = FftGrid::from_cutoff(&cell, DUAL * ecut);
        let sphere = GSphere::generate(&cell, ecut, &grid);
        let set = StickSet::build(&sphere, &grid);
        (grid, sphere, set)
    }

    #[test]
    fn sticks_cover_the_sphere_exactly() {
        let (_, sphere, set) = setup(12.0, 8.0);
        assert_eq!(set.ngw, sphere.len());
        let total: usize = set.sticks.iter().map(|s| s.len()).sum();
        assert_eq!(total, sphere.len());
        // Column count is ~ pi * r^2 (disc in the hk plane).
        let r2 = sphere.gcut2;
        let est = std::f64::consts::PI * r2;
        let ratio = set.nst() as f64 / est;
        assert!((0.85..1.15).contains(&ratio), "nst={} est={est}", set.nst());
    }

    #[test]
    fn offsets_partition_coefficients() {
        let (_, _, set) = setup(9.0, 7.0);
        let mut expected = 0;
        for s in 0..set.nst() {
            let range = set.coeff_range(s);
            assert_eq!(range.start, expected);
            expected = range.end;
        }
        assert_eq!(expected, set.ngw);
    }

    #[test]
    fn stick_z_lists_sorted_and_wrapped() {
        let (grid, _, set) = setup(10.0, 6.0);
        for st in &set.sticks {
            assert!(!st.is_empty());
            assert!(st.lz.windows(2).all(|w| w[0] < w[1]));
            assert_eq!(st.lz.len(), st.iz.len());
            for (&l, &iz) in st.lz.iter().zip(&st.iz) {
                assert_eq!(iz, FftGrid::wrap(l, grid.nr3));
                assert!(iz < grid.nr3);
            }
            assert!(st.ix < grid.nr1 && st.iy < grid.nr2);
        }
    }

    #[test]
    fn distribution_covers_all_sticks_once() {
        let (_, _, set) = setup(12.0, 8.0);
        for nranks in [1, 2, 3, 7, 16] {
            let dist = StickDist::balance(&set, nranks);
            assert_eq!(dist.nranks(), nranks);
            let mut seen = vec![false; set.nst()];
            for (r, list) in dist.per_rank.iter().enumerate() {
                for &s in list {
                    assert!(!seen[s], "stick {s} assigned twice");
                    seen[s] = true;
                    assert_eq!(dist.owner[s], r);
                }
            }
            assert!(seen.into_iter().all(|b| b));
            let total: usize = dist.ngw_per_rank.iter().sum();
            assert_eq!(total, set.ngw);
        }
    }

    #[test]
    fn distribution_is_balanced() {
        let (_, _, set) = setup(16.0, 10.0);
        let dist = StickDist::balance(&set, 8);
        let max = *dist.ngw_per_rank.iter().max().unwrap();
        let min = *dist.ngw_per_rank.iter().min().unwrap();
        // Greedy balance should be within one longest stick.
        let longest = set.sticks.iter().map(|s| s.len()).max().unwrap();
        assert!(max - min <= longest, "max={max} min={min} longest={longest}");
    }

    #[test]
    fn more_ranks_than_sticks_leaves_empties() {
        let cell = Cell::cubic(4.0);
        let grid = FftGrid::from_cutoff(&cell, DUAL * 1.0);
        let sphere = GSphere::generate(&cell, 1.0, &grid);
        let set = StickSet::build(&sphere, &grid);
        let n = set.nst() + 3;
        let dist = StickDist::balance(&set, n);
        let empty = dist.per_rank.iter().filter(|l| l.is_empty()).count();
        assert_eq!(empty, 3);
    }

    #[test]
    fn gamma_stick_contains_g0() {
        let (_, _, set) = setup(8.0, 8.0);
        let g0 = set
            .sticks
            .iter()
            .find(|s| s.hk == (0, 0))
            .expect("gamma stick exists");
        assert!(g0.lz.contains(&0));
    }
}
