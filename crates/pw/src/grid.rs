//! The dense FFT grid and Miller-index ↔ grid-index wrapping.

use crate::cell::Cell;
use fftx_fft::good_fft_order;

/// Dimensions of the dense real-space / G-space grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FftGrid {
    /// Points along x.
    pub nr1: usize,
    /// Points along y.
    pub nr2: usize,
    /// Points along z.
    pub nr3: usize,
}

impl FftGrid {
    /// Builds the grid for a density cutoff `ecut_rho` (Ry) the way QE's
    /// `realspace_grid_init` does: `nr = 2*floor(sqrt(gcut2)) + 1`, rounded
    /// up to a good FFT order.
    pub fn from_cutoff(cell: &Cell, ecut_rho: f64) -> Self {
        let gmax = cell.gcut2(ecut_rho).sqrt();
        let nr = good_fft_order(2 * gmax.floor() as usize + 1);
        FftGrid {
            nr1: nr,
            nr2: nr,
            nr3: nr,
        }
    }

    /// Explicit dimensions (each rounded up to a good FFT order).
    pub fn new(nr1: usize, nr2: usize, nr3: usize) -> Self {
        FftGrid {
            nr1: good_fft_order(nr1),
            nr2: good_fft_order(nr2),
            nr3: good_fft_order(nr3),
        }
    }

    /// Explicit dimensions taken verbatim — **no** rounding to a good FFT
    /// order, so a dimension with a large prime factor stays prime and the
    /// 1-D engine falls back to Bluestein. This is how the serving layer
    /// builds its non-power-friendly `prime` geometry class; QE itself
    /// never produces such grids (every `realspace_grid_init` dimension
    /// passes `good_fft_order`), which is exactly why the path needs its
    /// own coverage.
    pub fn raw(nr1: usize, nr2: usize, nr3: usize) -> Self {
        assert!(nr1 > 0 && nr2 > 0 && nr3 > 0, "FftGrid::raw: zero dimension");
        FftGrid { nr1, nr2, nr3 }
    }

    /// Total number of grid points.
    #[inline]
    pub fn volume(&self) -> usize {
        self.nr1 * self.nr2 * self.nr3
    }

    /// Largest Miller index representable without aliasing along each axis.
    pub fn max_miller(&self) -> (i32, i32, i32) {
        (
            ((self.nr1 - 1) / 2) as i32,
            ((self.nr2 - 1) / 2) as i32,
            ((self.nr3 - 1) / 2) as i32,
        )
    }

    /// Wraps a (possibly negative) Miller index onto `[0, n)`.
    #[inline]
    pub fn wrap(m: i32, n: usize) -> usize {
        let n = n as i32;
        debug_assert!(m > -n && m < n, "Miller index {m} out of grid range {n}");
        if m >= 0 {
            m as usize
        } else {
            (m + n) as usize
        }
    }

    /// Grid indices of Miller triple `(h, k, l)`.
    #[inline]
    pub fn index_of(&self, h: i32, k: i32, l: i32) -> (usize, usize, usize) {
        (
            Self::wrap(h, self.nr1),
            Self::wrap(k, self.nr2),
            Self::wrap(l, self.nr3),
        )
    }

    /// Linear index into the dense array (x fastest):
    /// `x + nr1*(y + nr2*z)`.
    #[inline]
    pub fn linear(&self, x: usize, y: usize, z: usize) -> usize {
        debug_assert!(x < self.nr1 && y < self.nr2 && z < self.nr3);
        x + self.nr1 * (y + self.nr2 * z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{Cell, DUAL};

    #[test]
    fn paper_grid_is_120_cubed() {
        // ecutwfc = 80 Ry, dual 4, alat = 20 bohr -> sqrt(gcutm) = 56.94,
        // 2*56+1 = 113, good order = 120 (2^3 * 3 * 5).
        let cell = Cell::cubic(20.0);
        let grid = FftGrid::from_cutoff(&cell, DUAL * 80.0);
        assert_eq!(grid, FftGrid { nr1: 120, nr2: 120, nr3: 120 });
        assert_eq!(grid.volume(), 1_728_000);
    }

    #[test]
    fn new_rounds_to_good_orders() {
        let g = FftGrid::new(13, 115, 8);
        assert_eq!((g.nr1, g.nr2, g.nr3), (14, 120, 8));
    }

    #[test]
    fn wrap_is_inverse_of_signed_index() {
        let n = 12;
        for m in -5i32..=5 {
            let w = FftGrid::wrap(m, n);
            assert!(w < n);
            // Unwrapped: indices > n/2 map back to negatives.
            let back = if w as i32 > (n as i32) / 2 {
                w as i32 - n as i32
            } else {
                w as i32
            };
            assert_eq!(back, m, "m={m}");
        }
    }

    #[test]
    fn index_of_and_linear() {
        let g = FftGrid { nr1: 4, nr2: 6, nr3: 8 };
        assert_eq!(g.index_of(0, 0, 0), (0, 0, 0));
        assert_eq!(g.index_of(-1, 2, -3), (3, 2, 5));
        assert_eq!(g.linear(3, 2, 5), 3 + 4 * (2 + 6 * 5));
        assert_eq!(g.max_miller(), (1, 2, 3));
    }
}
