//! Simulation cell and reciprocal-space units.
//!
//! FFTXlib's benchmark input is a cubic cell given by the lattice parameter
//! `alat` (bohr) and a plane-wave kinetic-energy cutoff (Ry). Reciprocal
//! lattice vectors are measured in units of `tpiba = 2*pi/alat`, so for a
//! cubic cell the G-vectors are exactly the integer Miller triples and the
//! kinetic energy of `G = tpiba * (h,k,l)` is `tpiba^2 * (h^2+k^2+l^2)` Ry.

use std::f64::consts::PI;

/// A cubic simulation cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cell {
    alat: f64,
}

impl Cell {
    /// Cubic cell with lattice parameter `alat` in bohr.
    ///
    /// # Panics
    /// Panics unless `alat > 0`.
    pub fn cubic(alat: f64) -> Self {
        assert!(alat > 0.0 && alat.is_finite(), "Cell: alat must be positive");
        Cell { alat }
    }

    /// Lattice parameter (bohr).
    #[inline]
    pub fn alat(&self) -> f64 {
        self.alat
    }

    /// `2*pi/alat` (bohr^-1): the reciprocal-space unit length.
    #[inline]
    pub fn tpiba(&self) -> f64 {
        2.0 * PI / self.alat
    }

    /// `tpiba^2` (Ry per squared Miller index, with hbar^2/2m = 1 Ry·bohr^2).
    #[inline]
    pub fn tpiba2(&self) -> f64 {
        self.tpiba() * self.tpiba()
    }

    /// Cell volume (bohr^3).
    #[inline]
    pub fn volume(&self) -> f64 {
        self.alat.powi(3)
    }

    /// Squared cutoff in Miller-index units for a kinetic-energy cutoff
    /// `ecut` (Ry): `|m|^2 <= gcut2` selects the plane waves below `ecut`.
    #[inline]
    pub fn gcut2(&self, ecut_ry: f64) -> f64 {
        ecut_ry / self.tpiba2()
    }
}

/// The dual of the wavefunction cutoff: the density/potential grid uses
/// `ecutrho = DUAL * ecutwfc` (4 for norm-conserving setups, as in the
/// paper's benchmark).
pub const DUAL: f64 = 4.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn units_are_consistent() {
        let cell = Cell::cubic(20.0);
        assert!((cell.alat() - 20.0).abs() < 1e-15);
        assert!((cell.tpiba() - 2.0 * PI / 20.0).abs() < 1e-15);
        assert!((cell.tpiba2() - cell.tpiba() * cell.tpiba()).abs() < 1e-15);
        assert!((cell.volume() - 8000.0).abs() < 1e-9);
    }

    #[test]
    fn paper_parameters_give_expected_cutoffs() {
        // ecutwfc = 80 Ry, alat = 20 bohr (the benchmark of Figs. 2 and 6).
        let cell = Cell::cubic(20.0);
        let gkcut = cell.gcut2(80.0);
        // 80 / (2 pi / 20)^2 = 810.57...
        assert!((gkcut - 810.569_469).abs() < 1e-3, "gkcut = {gkcut}");
        let gcutm = cell.gcut2(DUAL * 80.0);
        assert!((gcutm / gkcut - 4.0).abs() < 1e-12);
        // Sphere radius ~28.5 Millers for waves, ~57 for density.
        assert!((gkcut.sqrt() - 28.47).abs() < 0.01);
        assert!((gcutm.sqrt() - 56.94).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "alat must be positive")]
    fn rejects_nonpositive_alat() {
        Cell::cubic(0.0);
    }
}
