//! # fftx-pw
//!
//! Plane-wave DFT data machinery for the FFTXlib-on-KNL reproduction: the
//! cubic cell and reciprocal units, the G-vector cutoff sphere, the dense
//! FFT grid with QE's good-order rule, sticks (occupied z-columns) and their
//! load-balanced distribution, the two-layer task-group layout of the paper,
//! synthetic band/potential generators, and the serial reference pipeline
//! the distributed kernel is verified against.

#![warn(missing_docs)]

pub mod cell;
pub mod gamma;
pub mod grid;
pub mod gvec;
pub mod layout;
pub mod pencil;
pub mod potential;
pub mod reference;
pub mod sticks;
pub mod wave;

pub use cell::{Cell, DUAL};
pub use gamma::{apply_vloc_gamma, GammaBand, HalfSphere};
pub use grid::FftGrid;
pub use gvec::{GSphere, GVector};
pub use layout::{factorise_rt, GroupIndexMaps, TaskGroupLayout};
pub use pencil::ProcessGrid;
pub use potential::{apply_potential, apply_potential_slab, generate_potential};
pub use reference::{apply_vloc, apply_vloc_band, coeffs_to_grid, grid_to_coeffs};
pub use sticks::{Stick, StickDist, StickSet};
pub use wave::{assemble_shares, band_norm2, extract_share, generate_band, generate_bands};
