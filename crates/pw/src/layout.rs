//! The two-layer distributed data layout with FFT task groups.
//!
//! P = R × T ranks. Rank `r = g*T + i` belongs to *task group* `g`
//! (T neighbouring ranks — the pack/unpack `MPI_Alltoallv` family, "R
//! sub-communicators with T ranks each") and to *scatter family* `i`
//! (R ranks strided by T — the scatter `MPI_Alltoall` family, "T
//! sub-communicators with R ranks each", the paper's "1, 9, 17, …").
//!
//! Data placement:
//! * wavefunction sticks are balance-distributed over all P ranks
//!   (share `W_r` per rank);
//! * iteration k processes bands `kT .. (k+1)T`; the *pack* inside task
//!   group g sends each member's share of band `kT+i` to member i, so rank
//!   `g*T+i` ends up with band `kT+i` on the group's stick union
//!   `U_g = ∪_j W_{g*T+j}`;
//! * the scatter family i jointly holds all sticks of band `kT+i`
//!   (`∪_g U_g` = everything) and transposes them into z-plane slabs:
//!   all ranks of task group g own the plane range `P_g`.
//!
//! T = 1 makes the pack local and the scatter span all P ranks; T = P makes
//! the scatter local and the pack span all P ranks — the two extremes of
//! Section II of the paper.

use crate::grid::FftGrid;
use crate::sticks::{StickDist, StickSet};

/// The complete distributed layout for one (grid, sphere, R×T) choice.
/// Construction is deterministic, so every rank computes an identical copy
/// without communication.
#[derive(Debug, Clone)]
pub struct TaskGroupLayout {
    /// Dense grid dimensions.
    pub grid: FftGrid,
    /// Stick set of the wavefunction sphere.
    pub set: StickSet,
    /// Stick distribution over all P ranks.
    pub dist: StickDist,
    /// Scatter-family size (ranks sharing one band's FFT).
    pub r: usize,
    /// Task-group size == number of bands per outer iteration (QE's `ntg`).
    pub t: usize,
    /// Per task group g: stick ids of `U_g`, ordered member-major
    /// (member 0's sticks ascending, then member 1's, …).
    pub group_sticks: Vec<Vec<usize>>,
    /// Per task group g: owned z-plane range `[z0, z1)`.
    pub plane_range: Vec<(usize, usize)>,
}

/// Precomputed flat index tables for one task group's data movement — the
/// wrapped-z gather/scatter and stick→plane arithmetic that the kernel
/// steps would otherwise re-derive from the layout on every band of every
/// iteration. Built once per (layout, group) by
/// [`TaskGroupLayout::index_maps`]; the execution engines' `ExecPlan` owns
/// a copy per group (OpenFFT-style precomputed communication patterns).
#[derive(Debug, Clone)]
pub struct GroupIndexMaps {
    /// Destination z-stick-buffer index for each coefficient of the
    /// member-major `U_g` coefficient stream: *deposit* is
    /// `zbuf[deposit[n]] = stream[n]`, *extract* reads the same table as a
    /// gather. Indices are `(stick_base + si) * nr3 + iz` with `iz` the
    /// stick's wrapped (FFT-ordered) z index.
    pub deposit: Vec<u32>,
    /// Member `j`'s coefficients occupy
    /// `deposit[member_offsets[j] .. member_offsets[j + 1]]`; length `t + 1`
    /// and `member_offsets[t] == ngw_group(g)`.
    pub member_offsets: Vec<usize>,
    /// Per peer group `gp`: the xy-plane offset `at = iy * nr1 + ix` of each
    /// stick of `U_{gp}`, in `group_sticks[gp]` order — the column positions
    /// the scatter writes into / reads from this group's plane slab.
    pub plane_cols: Vec<Vec<u32>>,
}

/// Picks an R × T factorisation for `p` ranks, preferring the largest
/// task-group size `t ≤ prefer_t` that divides `p` (falling back to
/// `t = 1`, the pure-scatter extreme, when `p` is prime or `prefer_t`
/// shares no divisor with it).
///
/// This is the re-planning rule used after a rank eviction: survivors all
/// evaluate `factorise_rt(P - dead, prefer_t)` locally and — because the
/// function is pure — arrive at the same shrunk layout without
/// communication (see DESIGN.md §11).
pub fn factorise_rt(p: usize, prefer_t: usize) -> (usize, usize) {
    assert!(p > 0, "factorise_rt: need at least one rank");
    let t = (1..=prefer_t.max(1).min(p))
        .rev()
        .find(|t| p.is_multiple_of(*t))
        .unwrap_or(1);
    (p / t, t)
}

impl TaskGroupLayout {
    /// Builds the layout for `r * t` ranks.
    pub fn new(grid: FftGrid, set: StickSet, r: usize, t: usize) -> Self {
        assert!(r > 0 && t > 0, "TaskGroupLayout: r and t must be positive");
        let p = r * t;
        let dist = StickDist::balance(&set, p);
        let group_sticks: Vec<Vec<usize>> = (0..r)
            .map(|g| {
                let mut sticks = Vec::new();
                for j in 0..t {
                    sticks.extend_from_slice(&dist.per_rank[g * t + j]);
                }
                sticks
            })
            .collect();
        let base = grid.nr3 / r;
        let extra = grid.nr3 % r;
        let mut plane_range = Vec::with_capacity(r);
        let mut z0 = 0;
        for g in 0..r {
            let npp = base + usize::from(g < extra);
            plane_range.push((z0, z0 + npp));
            z0 += npp;
        }
        debug_assert_eq!(z0, grid.nr3);
        TaskGroupLayout {
            grid,
            set,
            dist,
            r,
            t,
            group_sticks,
            plane_range,
        }
    }

    /// Total number of ranks P = R × T.
    #[inline]
    pub fn nranks(&self) -> usize {
        self.r * self.t
    }

    /// Task group of a rank (`rank / T`).
    #[inline]
    pub fn task_group_of(&self, rank: usize) -> usize {
        rank / self.t
    }

    /// Position of a rank inside its task group (`rank % T`) — also its
    /// scatter-family index.
    #[inline]
    pub fn member_of(&self, rank: usize) -> usize {
        rank % self.t
    }

    /// Plane waves owned by `rank` (its share `W_r`).
    #[inline]
    pub fn ngw_rank(&self, rank: usize) -> usize {
        self.dist.ngw_per_rank[rank]
    }

    /// Number of sticks in `U_g`.
    #[inline]
    pub fn nst_group(&self, g: usize) -> usize {
        self.group_sticks[g].len()
    }

    /// Number of z planes owned by task group `g`.
    #[inline]
    pub fn npp(&self, g: usize) -> usize {
        let (z0, z1) = self.plane_range[g];
        z1 - z0
    }

    /// Maximum `nst_group` over groups (padding unit of the scatter).
    pub fn max_nst_group(&self) -> usize {
        (0..self.r).map(|g| self.nst_group(g)).max().unwrap_or(0)
    }

    /// Maximum `npp` over groups (padding unit of the scatter).
    pub fn max_npp(&self) -> usize {
        (0..self.r).map(|g| self.npp(g)).max().unwrap_or(0)
    }

    /// Offset of member `j`'s sticks inside the member-major `U_g` ordering.
    pub fn group_stick_offset(&self, g: usize, j: usize) -> usize {
        (0..j)
            .map(|jj| self.dist.per_rank[g * self.t + jj].len())
            .sum()
    }

    /// Plane waves in `U_g` (the coefficient count a rank holds after pack).
    pub fn ngw_group(&self, g: usize) -> usize {
        (0..self.t).map(|j| self.ngw_rank(g * self.t + j)).sum()
    }

    /// Bytes one rank contributes to the pack `MPI_Alltoallv` per iteration
    /// (its whole share, once per destination band).
    pub fn pack_bytes(&self, rank: usize) -> usize {
        self.ngw_rank(rank) * std::mem::size_of::<fftx_fft::Complex64>() * self.t
    }

    /// Bytes one rank contributes to the (padded) scatter `MPI_Alltoall`
    /// per direction: R chunks of `max_nst × max_npp` complex values.
    pub fn scatter_bytes(&self) -> usize {
        self.r
            * self.max_nst_group()
            * self.max_npp()
            * std::mem::size_of::<fftx_fft::Complex64>()
    }

    /// Builds the flat index tables for task group `g` (see
    /// [`GroupIndexMaps`]). The deposit table enumerates coefficients in
    /// exactly the member-major stream order of the pack exchange: member 0's
    /// sticks ascending, then member 1's, …, each stick contributing its
    /// wrapped-z coefficients in stick order.
    pub fn index_maps(&self, g: usize) -> GroupIndexMaps {
        let nr3 = self.grid.nr3;
        let mut deposit = Vec::with_capacity(self.ngw_group(g));
        let mut member_offsets = Vec::with_capacity(self.t + 1);
        member_offsets.push(0);
        let mut stick_base = 0usize;
        for j in 0..self.t {
            let rank = g * self.t + j;
            for (si, &s) in self.dist.per_rank[rank].iter().enumerate() {
                let col = (stick_base + si) * nr3;
                for &iz in &self.set.sticks[s].iz {
                    deposit.push(u32::try_from(col + iz).expect("zbuf index fits u32"));
                }
            }
            stick_base += self.dist.per_rank[rank].len();
            member_offsets.push(deposit.len());
        }
        let nr1 = self.grid.nr1;
        let plane_cols = (0..self.r)
            .map(|gp| {
                self.group_sticks[gp]
                    .iter()
                    .map(|&s| {
                        let stick = &self.set.sticks[s];
                        u32::try_from(stick.iy * nr1 + stick.ix).expect("plane offset fits u32")
                    })
                    .collect()
            })
            .collect();
        GroupIndexMaps {
            deposit,
            member_offsets,
            plane_cols,
        }
    }

    /// Sanity-checks all structural invariants (used by tests and on
    /// construction in debug builds).
    pub fn validate(&self) {
        assert_eq!(self.dist.nranks(), self.nranks());
        // Every stick appears in exactly one group, and groups partition
        // the stick set.
        let mut seen = vec![false; self.set.nst()];
        for g in 0..self.r {
            for &s in &self.group_sticks[g] {
                assert!(!seen[s], "stick {s} in two groups");
                seen[s] = true;
            }
        }
        assert!(seen.into_iter().all(|b| b), "stick missing from groups");
        // Plane ranges partition [0, nr3).
        let mut z = 0;
        for g in 0..self.r {
            let (z0, z1) = self.plane_range[g];
            assert_eq!(z0, z);
            assert!(z1 >= z0);
            z = z1;
        }
        assert_eq!(z, self.grid.nr3);
        // Member-major group ordering is consistent with offsets.
        for g in 0..self.r {
            for j in 0..self.t {
                let off = self.group_stick_offset(g, j);
                let mine = &self.dist.per_rank[g * self.t + j];
                assert_eq!(
                    &self.group_sticks[g][off..off + mine.len()],
                    mine.as_slice()
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{Cell, DUAL};
    use crate::gvec::GSphere;

    fn layout(ecut: f64, alat: f64, r: usize, t: usize) -> TaskGroupLayout {
        let cell = Cell::cubic(alat);
        let grid = FftGrid::from_cutoff(&cell, DUAL * ecut);
        let sphere = GSphere::generate(&cell, ecut, &grid);
        let set = StickSet::build(&sphere, &grid);
        TaskGroupLayout::new(grid, set, r, t)
    }

    #[test]
    fn invariants_hold_across_shapes() {
        for (r, t) in [(1, 1), (4, 1), (1, 4), (2, 3), (4, 2), (3, 4)] {
            let l = layout(8.0, 8.0, r, t);
            l.validate();
            assert_eq!(l.nranks(), r * t);
        }
    }

    #[test]
    fn group_union_has_all_coefficients() {
        let l = layout(10.0, 9.0, 3, 2);
        let total: usize = (0..l.r).map(|g| l.ngw_group(g)).sum();
        assert_eq!(total, l.set.ngw);
        for g in 0..l.r {
            let by_sticks: usize = l.group_sticks[g]
                .iter()
                .map(|&s| l.set.sticks[s].len())
                .sum();
            assert_eq!(by_sticks, l.ngw_group(g));
        }
    }

    #[test]
    fn rank_group_and_member_arithmetic() {
        let l = layout(6.0, 7.0, 3, 4);
        for rank in 0..12 {
            assert_eq!(l.task_group_of(rank), rank / 4);
            assert_eq!(l.member_of(rank), rank % 4);
        }
    }

    #[test]
    fn plane_ranges_balanced() {
        let l = layout(8.0, 8.0, 7, 1);
        let max = (0..7).map(|g| l.npp(g)).max().unwrap();
        let min = (0..7).map(|g| l.npp(g)).min().unwrap();
        assert!(max - min <= 1);
        assert_eq!((0..7).map(|g| l.npp(g)).sum::<usize>(), l.grid.nr3);
        assert_eq!(l.max_npp(), max);
    }

    #[test]
    fn extremes_match_paper_description() {
        // T = 1: every group has exactly one rank's sticks; scatter spans P.
        let l1 = layout(8.0, 8.0, 4, 1);
        for g in 0..4 {
            assert_eq!(l1.group_sticks[g], l1.dist.per_rank[g]);
        }
        // T = P: single group holding everything; scatter family size 1.
        let l2 = layout(8.0, 8.0, 1, 4);
        assert_eq!(l2.nst_group(0), l2.set.nst());
        assert_eq!(l2.ngw_group(0), l2.set.ngw);
        assert_eq!(l2.npp(0), l2.grid.nr3);
    }

    #[test]
    fn byte_accounting_is_positive_and_scales() {
        let l = layout(10.0, 10.0, 2, 4);
        for rank in 0..l.nranks() {
            assert!(l.pack_bytes(rank) >= 16 * l.ngw_rank(rank));
        }
        assert!(l.scatter_bytes() >= 16 * l.max_nst_group() * l.max_npp());
        // With T = 1 there is no pack traffic beyond the local copy
        // (one destination: itself).
        let l1 = layout(10.0, 10.0, 8, 1);
        for rank in 0..8 {
            assert_eq!(l1.pack_bytes(rank), 16 * l1.ngw_rank(rank));
        }
    }

    #[test]
    fn factorise_rt_prefers_large_divisor_groups() {
        assert_eq!(factorise_rt(6, 2), (3, 2));
        assert_eq!(factorise_rt(6, 4), (2, 3));
        assert_eq!(factorise_rt(7, 2), (7, 1), "prime p falls back to t = 1");
        assert_eq!(factorise_rt(8, 4), (2, 4));
        assert_eq!(factorise_rt(1, 4), (1, 1));
        assert_eq!(factorise_rt(12, 0), (12, 1), "prefer_t clamps to >= 1");
        // The result always builds a valid layout.
        for p in 1..=12 {
            let (r, t) = factorise_rt(p, 3);
            assert_eq!(r * t, p);
            let l = layout(6.0, 7.0, r, t);
            l.validate();
        }
    }

    #[test]
    fn index_maps_match_layout_arithmetic() {
        for (r, t) in [(4, 1), (2, 3), (3, 2), (1, 4)] {
            let l = layout(8.0, 8.0, r, t);
            for g in 0..l.r {
                let maps = l.index_maps(g);
                // Member offsets partition the group's coefficient stream.
                assert_eq!(maps.member_offsets.len(), l.t + 1);
                assert_eq!(maps.member_offsets[0], 0);
                assert_eq!(*maps.member_offsets.last().unwrap(), l.ngw_group(g));
                assert_eq!(maps.deposit.len(), l.ngw_group(g));
                for j in 0..l.t {
                    assert_eq!(
                        maps.member_offsets[j + 1] - maps.member_offsets[j],
                        l.ngw_rank(g * l.t + j),
                        "member {j} slice length"
                    );
                }
                // The deposit table reproduces the per-member wrapped-z walk.
                let nr3 = l.grid.nr3;
                let mut n = 0;
                for j in 0..l.t {
                    let stick_base = l.group_stick_offset(g, j);
                    for (si, &s) in l.dist.per_rank[g * l.t + j].iter().enumerate() {
                        for &iz in &l.set.sticks[s].iz {
                            assert_eq!(
                                maps.deposit[n] as usize,
                                (stick_base + si) * nr3 + iz
                            );
                            n += 1;
                        }
                    }
                }
                // Every target is unique and in bounds (deposit is a
                // permutation into the sphere part of the z buffer).
                let mut seen = vec![false; l.nst_group(g) * nr3];
                for &d in &maps.deposit {
                    assert!(!seen[d as usize], "duplicate deposit target");
                    seen[d as usize] = true;
                }
                // Plane columns match the sticks' xy coordinates.
                assert_eq!(maps.plane_cols.len(), l.r);
                for gp in 0..l.r {
                    assert_eq!(maps.plane_cols[gp].len(), l.nst_group(gp));
                    for (si, &s) in l.group_sticks[gp].iter().enumerate() {
                        let stick = &l.set.sticks[s];
                        assert_eq!(
                            maps.plane_cols[gp][si] as usize,
                            stick.iy * l.grid.nr1 + stick.ix
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn more_groups_shrink_scatter_grow_pack() {
        // Fixed P = 8: compare T=1 vs T=8.
        let all_scatter = layout(10.0, 10.0, 8, 1);
        let all_pack = layout(10.0, 10.0, 1, 8);
        // T=P: scatter family has a single member -> the padded chunk covers
        // the whole grid but goes to itself only.
        assert_eq!(all_pack.r, 1);
        assert!(all_pack.pack_bytes(0) > all_scatter.pack_bytes(0));
    }
}
