//! Γ-point (real-wavefunction) machinery.
//!
//! At the Γ point of the Brillouin zone the Kohn–Sham orbitals can be chosen
//! real in r-space, which makes their plane-wave coefficients Hermitian:
//! `c(-G) = conj(c(G))`. Quantum ESPRESSO (and FFTXlib's `gamma_only` path)
//! exploits this twice:
//!
//! 1. **Half storage:** only one member of every ±G pair is stored (the
//!    "positive half" of the sphere, plus G = 0).
//! 2. **The Γ trick:** two real bands ride one complex FFT. Loading
//!    `c = c1 + i*c2` onto the grid and transforming gives
//!    `psi(r) = phi1(r) + i*phi2(r)` with both φ real, so after the
//!    point-wise `V(r)` multiply a single forward FFT returns both bands,
//!    separated with `c1(G) = (c(G) + conj(c(-G)))/2` and
//!    `c2(G) = (c(G) - conj(c(-G)))/(2i)`.
//!
//! This halves the FFT count of the miniapp kernel for real-orbital
//! calculations — the dominant production case for the Quantum ESPRESSO
//! workloads FFTXlib represents.

use crate::grid::FftGrid;
use crate::gvec::GSphere;
use crate::potential::apply_potential;
use fftx_fft::{c64, Complex64, Fft3};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The positive half of a cutoff sphere: exactly one representative of each
/// ±G pair (G = 0 counts as its own representative).
#[derive(Debug, Clone)]
pub struct HalfSphere {
    /// Miller triples of the stored half, canonically ordered (ascending
    /// norm, then triple), G = 0 first.
    pub millers: Vec<(i32, i32, i32)>,
    /// Number of plane waves of the *full* sphere this half represents.
    pub full_len: usize,
}

/// True when `m` is the canonical representative of its ±pair: the first
/// non-zero component is positive (QE's `gstart` convention up to ordering).
pub fn is_positive_half(m: (i32, i32, i32)) -> bool {
    let (h, k, l) = m;
    if h != 0 {
        return h > 0;
    }
    if k != 0 {
        return k > 0;
    }
    l >= 0
}

impl HalfSphere {
    /// Extracts the positive half of a full sphere.
    pub fn from_sphere(sphere: &GSphere) -> Self {
        let millers: Vec<(i32, i32, i32)> = sphere
            .vectors
            .iter()
            .map(|v| v.miller)
            .filter(|&m| is_positive_half(m))
            .collect();
        HalfSphere {
            millers,
            full_len: sphere.len(),
        }
    }

    /// Number of stored coefficients.
    pub fn len(&self) -> usize {
        self.millers.len()
    }

    /// True when the half sphere stores nothing (empty input sphere).
    pub fn is_empty(&self) -> bool {
        self.millers.is_empty()
    }
}

/// A real (Γ-point) band stored on the half sphere. Hermitian symmetry
/// requires the G = 0 coefficient to be real; the constructor enforces it.
#[derive(Debug, Clone, PartialEq)]
pub struct GammaBand {
    /// Coefficients over [`HalfSphere::millers`], G = 0 first (real).
    pub coeffs: Vec<Complex64>,
}

impl GammaBand {
    /// Wraps coefficients, checking the G = 0 reality condition.
    pub fn new(half: &HalfSphere, coeffs: Vec<Complex64>) -> Self {
        assert_eq!(coeffs.len(), half.len(), "GammaBand: length mismatch");
        if let (Some(&(0, 0, 0)), Some(c0)) = (half.millers.first(), coeffs.first()) {
            assert!(
                c0.im.abs() < 1e-12,
                "GammaBand: the G=0 coefficient must be real (got {c0})"
            );
        }
        GammaBand { coeffs }
    }

    /// Deterministic synthetic band with the physical `1/(1+|G|^2)` falloff.
    pub fn generate(half: &HalfSphere, band: usize, seed: u64) -> Self {
        let mut rng =
            StdRng::seed_from_u64(seed ^ (band as u64).wrapping_mul(0xA24B_AED4_963E_E407));
        let coeffs = half
            .millers
            .iter()
            .map(|&(h, k, l)| {
                let norm2 = (h * h + k * k + l * l) as f64;
                let amp = 1.0 / (1.0 + norm2);
                if (h, k, l) == (0, 0, 0) {
                    c64(rng.gen_range(-1.0..1.0) * amp, 0.0)
                } else {
                    c64(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)).scale(amp)
                }
            })
            .collect();
        GammaBand { coeffs }
    }

    /// Expands to the full sphere in the canonical [`GSphere`] order,
    /// applying the Hermitian symmetry for the negative half.
    pub fn to_full(&self, half: &HalfSphere, sphere: &GSphere) -> Vec<Complex64> {
        use std::collections::HashMap;
        let index: HashMap<(i32, i32, i32), usize> = half
            .millers
            .iter()
            .enumerate()
            .map(|(i, &m)| (m, i))
            .collect();
        sphere
            .vectors
            .iter()
            .map(|v| {
                let m = v.miller;
                if let Some(&i) = index.get(&m) {
                    self.coeffs[i]
                } else {
                    let neg = (-m.0, -m.1, -m.2);
                    let i = index[&neg];
                    self.coeffs[i].conj()
                }
            })
            .collect()
    }
}

/// Spreads `c1 + i*c2` onto the dense G-space grid using the Hermitian
/// symmetry (each half coefficient fills both ±G slots).
pub fn load_two_bands(
    half: &HalfSphere,
    grid: &FftGrid,
    b1: &GammaBand,
    b2: &GammaBand,
) -> Vec<Complex64> {
    assert_eq!(b1.coeffs.len(), half.len());
    assert_eq!(b2.coeffs.len(), half.len());
    let mut dense = vec![Complex64::ZERO; grid.volume()];
    for (i, &(h, k, l)) in half.millers.iter().enumerate() {
        let c = b1.coeffs[i] + b2.coeffs[i].mul_i();
        let (x, y, z) = grid.index_of(h, k, l);
        dense[grid.linear(x, y, z)] = c;
        if (h, k, l) != (0, 0, 0) {
            // c(-G) = conj(c1(G)) + i*conj(c2(G))
            let cm = b1.coeffs[i].conj() + b2.coeffs[i].conj().mul_i();
            let (x, y, z) = grid.index_of(-h, -k, -l);
            dense[grid.linear(x, y, z)] = cm;
        }
    }
    dense
}

/// Separates the two bands back out of a transformed grid (inverse of the
/// Γ trick): `c1(G) = (c(G)+conj(c(-G)))/2`, `c2(G) = (c(G)-conj(c(-G)))/2i`.
pub fn extract_two_bands(
    half: &HalfSphere,
    grid: &FftGrid,
    dense: &[Complex64],
) -> (GammaBand, GammaBand) {
    let mut c1 = Vec::with_capacity(half.len());
    let mut c2 = Vec::with_capacity(half.len());
    for &(h, k, l) in &half.millers {
        let (x, y, z) = grid.index_of(h, k, l);
        let cp = dense[grid.linear(x, y, z)];
        let (x, y, z) = grid.index_of(-h, -k, -l);
        let cm = dense[grid.linear(x, y, z)];
        let a = (cp + cm.conj()).scale(0.5);
        let b = (cp - cm.conj()).mul_neg_i().scale(0.5);
        c1.push(a);
        c2.push(b);
    }
    (GammaBand { coeffs: c1 }, GammaBand { coeffs: c2 })
}

/// Applies the real-space-diagonal operator to a batch of Γ-point bands,
/// two per complex FFT (the last band pairs with a zero band when the count
/// is odd). Returns the updated half-sphere bands.
pub fn apply_vloc_gamma(
    half: &HalfSphere,
    grid: &FftGrid,
    v: &[f64],
    bands: &[GammaBand],
) -> Vec<GammaBand> {
    let plan = Fft3::new(grid.nr1, grid.nr2, grid.nr3);
    let zero = GammaBand {
        coeffs: vec![Complex64::ZERO; half.len()],
    };
    let mut out = Vec::with_capacity(bands.len());
    let mut i = 0;
    while i < bands.len() {
        let b1 = &bands[i];
        let b2 = bands.get(i + 1).unwrap_or(&zero);
        let mut dense = load_two_bands(half, grid, b1, b2);
        plan.inverse(&mut dense);
        apply_potential(&mut dense, v, grid);
        plan.forward(&mut dense);
        let (o1, o2) = extract_two_bands(half, grid, &dense);
        out.push(o1);
        if i + 1 < bands.len() {
            out.push(o2);
        }
        i += 2;
    }
    out
}

/// FFT count of the Γ path for `n` bands (vs `n` for the complex path):
/// `ceil(n/2)` complex transforms each way.
pub fn gamma_fft_count(nbnd: usize) -> usize {
    nbnd.div_ceil(2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{Cell, DUAL};
    use crate::reference::apply_vloc;
    use fftx_fft::max_dist;

    fn setup() -> (FftGrid, GSphere, HalfSphere) {
        let cell = Cell::cubic(7.0);
        let grid = FftGrid::from_cutoff(&cell, DUAL * 6.0);
        let sphere = GSphere::generate(&cell, 6.0, &grid);
        let half = HalfSphere::from_sphere(&sphere);
        (grid, sphere, half)
    }

    #[test]
    fn half_sphere_is_exactly_half_plus_gamma() {
        let (_, sphere, half) = setup();
        assert_eq!(half.full_len, sphere.len());
        // Full sphere = 2 * (half without G=0) + 1.
        assert_eq!(sphere.len(), 2 * (half.len() - 1) + 1);
        assert_eq!(half.millers[0], (0, 0, 0));
        for &m in &half.millers {
            assert!(is_positive_half(m), "{m:?} not canonical");
        }
    }

    #[test]
    fn positive_half_convention() {
        assert!(is_positive_half((0, 0, 0)));
        assert!(is_positive_half((1, -5, -5)));
        assert!(!is_positive_half((-1, 5, 5)));
        assert!(is_positive_half((0, 2, -9)));
        assert!(!is_positive_half((0, -2, 9)));
        assert!(is_positive_half((0, 0, 3)));
        assert!(!is_positive_half((0, 0, -3)));
    }

    #[test]
    fn expansion_is_hermitian() {
        let (_, sphere, half) = setup();
        let band = GammaBand::generate(&half, 0, 7);
        let full = band.to_full(&half, &sphere);
        use std::collections::HashMap;
        let by_miller: HashMap<(i32, i32, i32), Complex64> = sphere
            .vectors
            .iter()
            .zip(&full)
            .map(|(v, &c)| (v.miller, c))
            .collect();
        for (&m, &c) in &by_miller {
            let neg = by_miller[&(-m.0, -m.1, -m.2)];
            assert!(c.dist(neg.conj()) < 1e-14, "not Hermitian at {m:?}");
        }
    }

    #[test]
    fn hermitian_coeffs_give_real_field() {
        let (grid, _, half) = setup();
        let b1 = GammaBand::generate(&half, 1, 3);
        let zero = GammaBand {
            coeffs: vec![Complex64::ZERO; half.len()],
        };
        let mut dense = load_two_bands(&half, &grid, &b1, &zero);
        Fft3::new(grid.nr1, grid.nr2, grid.nr3).inverse(&mut dense);
        let max_im = dense.iter().map(|c| c.im.abs()).fold(0.0_f64, f64::max);
        let max_re = dense.iter().map(|c| c.re.abs()).fold(0.0_f64, f64::max);
        assert!(max_im < 1e-10 * max_re.max(1.0), "field not real: {max_im}");
    }

    #[test]
    fn load_extract_roundtrip() {
        let (grid, _, half) = setup();
        let b1 = GammaBand::generate(&half, 0, 11);
        let b2 = GammaBand::generate(&half, 1, 11);
        let dense = load_two_bands(&half, &grid, &b1, &b2);
        let (o1, o2) = extract_two_bands(&half, &grid, &dense);
        assert!(max_dist(&o1.coeffs, &b1.coeffs) < 1e-13);
        assert!(max_dist(&o2.coeffs, &b2.coeffs) < 1e-13);
    }

    #[test]
    fn gamma_trick_matches_the_complex_path() {
        // Applying V via the two-bands-per-FFT trick must equal applying V
        // to each band expanded to the full sphere through the ordinary
        // complex pipeline.
        let (grid, sphere, half) = setup();
        let set = crate::sticks::StickSet::build(&sphere, &grid);
        let v = crate::potential::generate_potential(&grid, 5);
        let bands: Vec<GammaBand> = (0..4).map(|b| GammaBand::generate(&half, b, 21)).collect();

        let gamma_out = apply_vloc_gamma(&half, &grid, &v, &bands);

        // Reference: full-sphere complex path. The canonical coefficient
        // order of the complex path is stick-major; build it per band.
        for (b, band) in bands.iter().enumerate() {
            let full = band.to_full(&half, &sphere);
            // Reorder canonical sphere order -> stick-major order.
            let stickwise = reorder_sphere_to_sticks(&sphere, &set, &full);
            let expect = apply_vloc(&set, &grid, &v, &[stickwise]);
            let got_full = gamma_out[b].to_full(&half, &sphere);
            let got_stickwise = reorder_sphere_to_sticks(&sphere, &set, &got_full);
            assert!(
                max_dist(&got_stickwise, &expect[0]) < 1e-9,
                "band {b} mismatch"
            );
        }
    }

    /// Reorders canonical-sphere-ordered coefficients into the stick-major
    /// order used by the distributed pipeline.
    fn reorder_sphere_to_sticks(
        sphere: &GSphere,
        set: &crate::sticks::StickSet,
        coeffs: &[Complex64],
    ) -> Vec<Complex64> {
        use std::collections::HashMap;
        let by_miller: HashMap<(i32, i32, i32), Complex64> = sphere
            .vectors
            .iter()
            .zip(coeffs)
            .map(|(v, &c)| (v.miller, c))
            .collect();
        let mut out = Vec::with_capacity(set.ngw);
        for stick in &set.sticks {
            for &l in &stick.lz {
                out.push(by_miller[&(stick.hk.0, stick.hk.1, l)]);
            }
        }
        out
    }

    #[test]
    fn odd_band_count_pads_with_zero() {
        let (grid, _, half) = setup();
        let v = vec![1.5; grid.volume()];
        let bands: Vec<GammaBand> = (0..3).map(|b| GammaBand::generate(&half, b, 9)).collect();
        let out = apply_vloc_gamma(&half, &grid, &v, &bands);
        assert_eq!(out.len(), 3);
        // Constant potential scales each band by 1.5.
        for (b, o) in out.iter().enumerate() {
            let expect: Vec<Complex64> =
                bands[b].coeffs.iter().map(|c| c.scale(1.5)).collect();
            assert!(max_dist(&o.coeffs, &expect) < 1e-10, "band {b}");
        }
    }

    #[test]
    fn fft_count_is_halved() {
        assert_eq!(gamma_fft_count(128), 64);
        assert_eq!(gamma_fft_count(7), 4);
        assert_eq!(gamma_fft_count(1), 1);
        assert_eq!(gamma_fft_count(0), 0);
    }

    #[test]
    #[should_panic(expected = "must be real")]
    fn complex_g0_rejected() {
        let (_, _, half) = setup();
        let mut coeffs = vec![Complex64::ZERO; half.len()];
        coeffs[0] = c64(1.0, 0.5);
        GammaBand::new(&half, coeffs);
    }
}
