//! The real-space local potential V(r) and the VOFR step.
//!
//! The miniapp applies an operator diagonal in real space: psi(r) *= V(r).
//! Any smooth real field exercises the same code path; we build one from a
//! deterministic sum of low-frequency modes plus a seeded random component.

use crate::grid::FftGrid;
use fftx_fft::Complex64;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::f64::consts::TAU;

/// Generates a smooth, strictly positive V(r) on the dense grid
/// (x-fastest layout).
pub fn generate_potential(grid: &FftGrid, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0xD134_2543_DE82_EF95).wrapping_add(1));
    // A handful of random low-frequency Fourier modes keeps V smooth.
    let modes: Vec<(f64, f64, f64, f64, f64)> = (0..6)
        .map(|_| {
            (
                rng.gen_range(0.02..0.15),            // amplitude (sum < 1 keeps V > 0)
                rng.gen_range(-3.0f64..3.0).round(),  // qx
                rng.gen_range(-3.0f64..3.0).round(),  // qy
                rng.gen_range(-3.0f64..3.0).round(),  // qz
                rng.gen_range(0.0..TAU),              // phase
            )
        })
        .collect();
    let mut v = Vec::with_capacity(grid.volume());
    for z in 0..grid.nr3 {
        let fz = z as f64 / grid.nr3 as f64;
        for y in 0..grid.nr2 {
            let fy = y as f64 / grid.nr2 as f64;
            for x in 0..grid.nr1 {
                let fx = x as f64 / grid.nr1 as f64;
                let mut val = 1.0;
                for &(a, qx, qy, qz, ph) in &modes {
                    val += a * (TAU * (qx * fx + qy * fy + qz * fz) + ph).cos();
                }
                v.push(val);
            }
        }
    }
    v
}

/// VOFR: psi(r) *= V(r), point-wise over a slab of `nzl` planes starting at
/// plane `z0` of the potential.
pub fn apply_potential_slab(
    psi: &mut [Complex64],
    v: &[f64],
    grid: &FftGrid,
    z0: usize,
    nzl: usize,
) {
    let plane = grid.nr1 * grid.nr2;
    assert!(psi.len() >= nzl * plane, "apply_potential_slab: psi too short");
    assert!(
        v.len() >= (z0 + nzl) * plane,
        "apply_potential_slab: V does not cover the slab"
    );
    for zl in 0..nzl {
        let voff = (z0 + zl) * plane;
        let poff = zl * plane;
        for i in 0..plane {
            psi[poff + i] = psi[poff + i].scale(v[voff + i]);
        }
    }
}

/// VOFR over the full dense grid.
pub fn apply_potential(psi: &mut [Complex64], v: &[f64], grid: &FftGrid) {
    apply_potential_slab(psi, v, grid, 0, grid.nr3);
}

#[cfg(test)]
mod tests {
    use super::*;
    use fftx_fft::c64;

    fn grid() -> FftGrid {
        FftGrid { nr1: 4, nr2: 3, nr3: 5 }
    }

    #[test]
    fn potential_is_positive_and_deterministic() {
        let g = grid();
        let v1 = generate_potential(&g, 11);
        let v2 = generate_potential(&g, 11);
        assert_eq!(v1, v2);
        assert_eq!(v1.len(), g.volume());
        assert!(v1.iter().all(|&x| x > 0.0 && x.is_finite()));
        let v3 = generate_potential(&g, 12);
        assert_ne!(v1, v3);
    }

    #[test]
    fn potential_is_smooth_on_larger_grid() {
        let g = FftGrid { nr1: 16, nr2: 16, nr3: 16 };
        let v = generate_potential(&g, 5);
        // Neighbouring points differ by a bounded amount (low-frequency
        // modes only: max |dV/dx| ~ sum a*q*tau/n).
        for z in 0..16 {
            for y in 0..16 {
                for x in 0..15 {
                    let a = v[g.linear(x, y, z)];
                    let b = v[g.linear(x + 1, y, z)];
                    // Worst case: sum of 6 modes, amp<=0.15, |q|<=3 ->
                    // |dV| <= 6*0.15*2*pi*3/16 ~ 1.1 per step.
                    assert!((a - b).abs() < 1.2, "jump at ({x},{y},{z})");
                }
            }
        }
    }

    #[test]
    fn slab_application_matches_full() {
        let g = grid();
        let v = generate_potential(&g, 3);
        let mut full: Vec<_> = (0..g.volume()).map(|i| c64(i as f64, -1.0)).collect();
        let mut by_slabs = full.clone();
        apply_potential(&mut full, &v, &g);
        // Apply in two slabs: planes [0,2) and [2,5).
        let plane = g.nr1 * g.nr2;
        apply_potential_slab(&mut by_slabs[..2 * plane], &v, &g, 0, 2);
        apply_potential_slab(&mut by_slabs[2 * plane..], &v, &g, 2, 3);
        assert_eq!(full, by_slabs);
    }

    #[test]
    #[should_panic(expected = "does not cover")]
    fn slab_bounds_checked() {
        let g = grid();
        let v = generate_potential(&g, 3);
        let mut psi = vec![Complex64::ZERO; g.volume()];
        apply_potential_slab(&mut psi, &v, &g, 3, 3); // 3+3 > nr3=5
    }
}
