//! # fftx-knlsim
//!
//! A discrete-event performance simulator of a Knights Landing node — the
//! substitute for the paper's testbed (68 cores @ 1.4 GHz, 4-way SMT).
//! Rank programs (compute bursts classified by phase, and collectives) are
//! executed either in *static* lockstep (the original FFTXlib) or through a
//! simulated per-rank *task scheduler* (the OmpSs versions). Compute speed
//! is governed by a calibrated phase-IPC + SMT + node-contention model, and
//! collectives by a latency/bandwidth model; a zero-transfer replay yields
//! the Dimemas-style ideal runtime used for the sync/transfer split.

#![warn(missing_docs)]

pub mod arch;
pub mod capacity;
pub mod cost;
pub mod des;
pub mod model;
pub mod program;

pub use arch::KnlConfig;
pub use capacity::{backlog_profile, fleet_floor, peak_rate, required_rate};
pub use cost::{quick_estimate, CostBreakdown};
pub use des::{simulate, simulate_faulty, SimResult};
pub use fftx_fault::{BandSpikes, FaultPlan};
pub use model::{CommModel, ContentionModel};
pub use program::{RankTasks, Segment, TaskSpec};
