//! Capacity math over per-timestep work profiles.
//!
//! The fleet capacity planner reduces N simulated traffic traces to a
//! per-window offered-work profile (work units per fixed window) and asks
//! two questions this module answers in closed form:
//!
//! * [`required_rate`] — the smallest *constant* service rate that
//!   finishes every unit of offered work by the end of the horizon. This
//!   is the capacity constraint that reallocates work across timesteps: a
//!   window offering more than the rate can serve carries its excess as
//!   backlog into later windows, so the binding constraint is the worst
//!   *suffix average* of the profile, not its peak.
//! * [`backlog_profile`] — the backlog recurrence itself,
//!   `backlog[t+1] = max(0, backlog[t] + work[t] − rate·window)`, which
//!   shows *where* a candidate rate queues and for how long.
//!
//! [`peak_rate`] (the no-queueing rate) and [`fleet_floor`] (the smallest
//! integer shard count whose aggregate rate covers a requirement) round
//! the profile analysis into fleet sizes.

/// The smallest constant service rate (work units per second) that leaves
/// zero backlog at the end of the profile: the maximum over all suffixes
/// of the suffix's average offered rate. Empty or all-zero profiles need
/// rate 0. A non-positive `window_s` yields 0 (degenerate profile).
pub fn required_rate(work: &[f64], window_s: f64) -> f64 {
    if work.is_empty() || window_s <= 0.0 {
        return 0.0;
    }
    let mut best = 0.0f64;
    let mut suffix = 0.0f64;
    for (back, &w) in work.iter().rev().enumerate() {
        suffix += w;
        let avg = suffix / ((back + 1) as f64 * window_s);
        best = best.max(avg);
    }
    best
}

/// The rate that never queues: the single worst window's offered rate.
pub fn peak_rate(work: &[f64], window_s: f64) -> f64 {
    if window_s <= 0.0 {
        return 0.0;
    }
    work.iter().copied().fold(0.0f64, f64::max) / window_s
}

/// The backlog recurrence under a constant service rate: entry `t` is the
/// backlog carried *into* window `t`, with one trailing entry for the
/// backlog left after the final window. `backlog[0]` is always 0.
pub fn backlog_profile(work: &[f64], rate: f64, window_s: f64) -> Vec<f64> {
    let mut out = Vec::with_capacity(work.len() + 1);
    let mut backlog = 0.0f64;
    out.push(backlog);
    for &w in work {
        backlog = (backlog + w - rate * window_s).max(0.0);
        out.push(backlog);
    }
    out
}

/// The smallest shard count whose aggregate rate `k · shard_rate` covers
/// `required` (at least 1; saturates at `usize::MAX` when the per-shard
/// rate is non-positive but work is offered).
pub fn fleet_floor(required: f64, shard_rate: f64) -> usize {
    if required <= 0.0 {
        return 1;
    }
    if shard_rate <= 0.0 {
        return usize::MAX;
    }
    ((required / shard_rate).ceil() as usize).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn required_rate_is_the_worst_suffix_average() {
        // Uniform profile: required == offered.
        assert!((required_rate(&[4.0, 4.0, 4.0], 1.0) - 4.0).abs() < 1e-12);
        // A late burst cannot be amortised over the windows before it.
        let bursty = [0.0, 0.0, 12.0];
        assert!((required_rate(&bursty, 1.0) - 12.0).abs() < 1e-12);
        // An early burst can: 12 units over 3 windows.
        let early = [12.0, 0.0, 0.0];
        assert!((required_rate(&early, 1.0) - 4.0).abs() < 1e-12);
        assert_eq!(required_rate(&[], 1.0), 0.0);
        assert_eq!(required_rate(&[1.0], 0.0), 0.0);
    }

    #[test]
    fn required_rate_drains_exactly() {
        let work = [3.0, 9.0, 0.0, 6.0, 1.0];
        let r = required_rate(&work, 0.5);
        let prof = backlog_profile(&work, r, 0.5);
        assert!(prof.last().unwrap().abs() < 1e-9, "required rate must drain");
        // Any lower rate leaves backlog.
        let low = backlog_profile(&work, r * 0.95, 0.5);
        assert!(*low.last().unwrap() > 0.0);
    }

    #[test]
    fn backlog_recurrence_carries_excess_forward() {
        let prof = backlog_profile(&[5.0, 0.0, 7.0], 3.0, 1.0);
        assert_eq!(prof.len(), 4);
        assert_eq!(prof[0], 0.0);
        assert!((prof[1] - 2.0).abs() < 1e-12);
        assert_eq!(prof[2], 0.0); // the idle window absorbs the carry
        assert!((prof[3] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn peak_and_floor() {
        assert!((peak_rate(&[2.0, 8.0, 4.0], 2.0) - 4.0).abs() < 1e-12);
        assert_eq!(peak_rate(&[], 1.0), 0.0);
        assert_eq!(fleet_floor(0.0, 5.0), 1);
        assert_eq!(fleet_floor(10.0, 5.0), 2);
        assert_eq!(fleet_floor(10.1, 5.0), 3);
        assert_eq!(fleet_floor(1.0, 0.0), usize::MAX);
    }
}
