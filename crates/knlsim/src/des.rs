//! The discrete-event engine.
//!
//! Lanes (rank × worker) execute task segments; compute segments progress at
//! a *rate* given by the contention model (re-evaluated at every event, like
//! a processor-sharing queue), collectives rendezvous across ranks and then
//! occupy the network for the modeled transfer time. The engine is fully
//! deterministic: all scheduling ties break on (priority, creation index)
//! and all iteration is in lane order.

use crate::arch::KnlConfig;
use crate::model::{CommModel, ContentionModel};
use crate::program::{RankTasks, Segment};
use fftx_fault::FaultPlan;
use fftx_trace::{CommRecord, ComputeRecord, Lane, StateClass, TaskRecord, Trace};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// Simulation output.
pub struct SimResult {
    /// The synthetic trace (same record types the real engines produce).
    pub trace: Trace,
    /// Virtual makespan in seconds.
    pub runtime: f64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum LState {
    Idle,
    Computing,
    WaitColl(usize),
    Done,
}

struct LaneSt {
    rank: usize,
    worker: usize,
    core: usize,
    /// Global lane index (noise seeding).
    index: usize,
    /// Per-lane count of compute segments started (noise seeding).
    seg_counter: u64,
    state: LState,
    task: usize,
    seg_idx: usize,
    class: StateClass,
    remaining_instr: f64,
    total_instr: f64,
    seg_start: f64,
    cycles_acc: f64,
    task_start: f64,
}

struct CollInst {
    comm_key: u64,
    op: fftx_trace::CommOp,
    size: usize,
    bytes: usize,
    /// Ranks that have posted their contribution.
    posts: usize,
    /// Lanes blocked on completion, with their wait-start times.
    waiters: Vec<(usize, f64)>,
    /// Set once the transfer occupies a channel.
    release_at: Option<f64>,
    /// All participants posted, waiting for a free channel.
    queued: bool,
    done: bool,
}

/// Shared-mesh state: at most `channels` transfers progress at once, the
/// rest queue FIFO (this is what serialises simultaneous sub-communicator
/// collectives and staggers the task-based version's bands).
struct Network {
    channels: usize,
    active: usize,
    queue: VecDeque<usize>,
}

struct RankSched {
    ready: BinaryHeap<Reverse<(u64, usize)>>,
    pending: Vec<usize>,
    successors: Vec<Vec<usize>>,
    remaining: usize,
}

/// Runs the simulation of `ranks` on the modeled node.
///
/// # Panics
/// Panics on a simulated deadlock (mismatched collectives), capacity
/// violations, or malformed dependency graphs.
pub fn simulate(
    ranks: &[RankTasks],
    knl: &KnlConfig,
    contention: &ContentionModel,
    comm: &CommModel,
) -> SimResult {
    simulate_faulty(ranks, knl, contention, comm, &FaultPlan::none())
}

/// [`simulate`] with straggler injection: compute segments are stretched by
/// `plan.rank_factor(rank)`, and band-keyed segments matching the plan's
/// spikes absorb an extra stall (sized to take `extra_seconds` at the
/// class's uncontended speed; contention can only lengthen it).
/// `FaultPlan::none()` makes this identical to [`simulate`].
///
/// # Panics
/// Same conditions as [`simulate`].
pub fn simulate_faulty(
    ranks: &[RankTasks],
    knl: &KnlConfig,
    contention: &ContentionModel,
    comm: &CommModel,
    plan: &FaultPlan,
) -> SimResult {
    let nlanes: usize = ranks.iter().map(|r| r.workers).sum();
    knl.check_capacity(nlanes);

    // Lanes in (rank, worker) order; core placement round-robin over the
    // global lane index (hyper-threads appear once lanes exceed cores).
    let mut lanes: Vec<LaneSt> = Vec::with_capacity(nlanes);
    for (rank, rt) in ranks.iter().enumerate() {
        for worker in 0..rt.workers {
            let idx = lanes.len();
            lanes.push(LaneSt {
                rank,
                worker,
                core: knl.core_of(idx, nlanes),
                index: idx,
                seg_counter: 0,
                state: LState::Idle,
                task: usize::MAX,
                seg_idx: 0,
                class: StateClass::Other,
                remaining_instr: 0.0,
                total_instr: 0.0,
                seg_start: 0.0,
                cycles_acc: 0.0,
                task_start: 0.0,
            });
        }
    }

    // Per-rank schedulers.
    let mut scheds: Vec<RankSched> = ranks
        .iter()
        .map(|rt| {
            let n = rt.tasks.len();
            let mut pending = vec![0usize; n];
            let mut successors: Vec<Vec<usize>> = vec![Vec::new(); n];
            for (i, t) in rt.tasks.iter().enumerate() {
                for &d in &t.deps {
                    assert!(d < i, "task {i} depends on later task {d}");
                    successors[d].push(i);
                    pending[i] += 1;
                }
            }
            let mut ready = BinaryHeap::new();
            for (i, t) in rt.tasks.iter().enumerate() {
                if pending[i] == 0 {
                    ready.push(Reverse((t.priority, i)));
                }
            }
            RankSched {
                ready,
                pending,
                successors,
                remaining: n,
            }
        })
        .collect();

    // Collective matching.
    let mut colls: Vec<CollInst> = Vec::new();
    let mut coll_index: HashMap<(u64, u64, u64), usize> = HashMap::new();
    let mut seq: HashMap<(usize, u64, u64), u64> = HashMap::new();
    let mut seq_wait: HashMap<(usize, u64, u64), u64> = HashMap::new();

    let mut network = Network {
        channels: comm.channels.max(1),
        active: 0,
        queue: VecDeque::new(),
    };
    let mut trace = Trace::default();
    let mut now = 0.0_f64;
    let freq = knl.freq_hz;
    let mut events: u64 = 0;

    /// Registers one rank's contribution to a collective instance; starts
    /// the transfer (or queues it on the mesh) once all ranks have posted.
    /// Returns the instance index.
    #[allow(clippy::too_many_arguments)]
    fn register_post(
        rank: usize,
        op: fftx_trace::CommOp,
        comm_key: u64,
        size: usize,
        bytes: usize,
        tag: u64,
        colls: &mut Vec<CollInst>,
        coll_index: &mut HashMap<(u64, u64, u64), usize>,
        seq: &mut HashMap<(usize, u64, u64), u64>,
        network: &mut Network,
        comm: &CommModel,
        now: f64,
    ) -> usize {
        let s = seq.entry((rank, comm_key, tag)).or_insert(0);
        let my_seq = *s;
        *s += 1;
        let key = (comm_key, tag, my_seq);
        let ci = *coll_index.entry(key).or_insert_with(|| {
            colls.push(CollInst {
                comm_key,
                op,
                size,
                bytes,
                posts: 0,
                waiters: Vec::new(),
                release_at: None,
                queued: false,
                done: false,
            });
            colls.len() - 1
        });
        let inst = &mut colls[ci];
        assert_eq!(inst.size, size, "collective size mismatch at {key:?}");
        inst.posts += 1;
        assert!(inst.posts <= size, "too many posts at collective {key:?}");
        if inst.posts == size {
            let dur = comm.duration(op, size, bytes);
            if dur <= 0.0 {
                // Size-1 or ideal-network transfers bypass the channel
                // arbitration entirely.
                inst.release_at = Some(now);
            } else if network.active < network.channels {
                network.active += 1;
                inst.release_at = Some(now + dur);
            } else {
                inst.queued = true;
                network.queue.push_back(ci);
            }
        }
        ci
    }

    // Starts the current segment of `lane`; returns true when the lane's
    // task finished and it went idle (so dispatch must run again).
    // Implemented as a macro-like closure via explicit fn to satisfy the
    // borrow checker (needs several disjoint &muts).
    #[allow(clippy::too_many_arguments)]
    fn start_segment(
        li: usize,
        lanes: &mut [LaneSt],
        ranks: &[RankTasks],
        scheds: &mut [RankSched],
        colls: &mut Vec<CollInst>,
        coll_index: &mut HashMap<(u64, u64, u64), usize>,
        seq: &mut HashMap<(usize, u64, u64), u64>,
        seq_wait: &mut HashMap<(usize, u64, u64), u64>,
        network: &mut Network,
        contention: &ContentionModel,
        comm: &CommModel,
        plan: &FaultPlan,
        freq: f64,
        trace: &mut Trace,
        now: f64,
    ) {
        loop {
            let lane = &mut lanes[li];
            let task = &ranks[lane.rank].tasks[lane.task];
            if lane.seg_idx >= task.segments.len() {
                // Task complete.
                trace.tasks.push(TaskRecord {
                    lane: Lane::new(lane.rank, lane.worker),
                    task_id: lane.task as u64,
                    label: task.label.clone(),
                    t_created: 0.0,
                    t_start: lane.task_start,
                    t_end: now,
                });
                let rank = lane.rank;
                let tidx = lane.task;
                lane.state = LState::Idle;
                lane.task = usize::MAX;
                let sched = &mut scheds[rank];
                sched.remaining -= 1;
                let succs = sched.successors[tidx].clone();
                for s in succs {
                    sched.pending[s] -= 1;
                    if sched.pending[s] == 0 {
                        let p = ranks[rank].tasks[s].priority;
                        sched.ready.push(Reverse((p, s)));
                    }
                }
                return;
            }
            match &task.segments[lane.seg_idx] {
                Segment::Compute {
                    class,
                    flops,
                    noise_key,
                } => {
                    lane.seg_counter += 1;
                    let mut instr = flops
                        * contention.instructions_per_flop(*class)
                        * contention.noise_factor(lane.index, lane.seg_counter)
                        * contention.band_factor(*noise_key);
                    if plan.is_active() {
                        instr *= plan.rank_factor(lane.rank);
                        // A spike is an off-core stall: extra work sized so
                        // it takes `extra_seconds` at the class's uncontended
                        // speed (contention can only stretch it).
                        instr += plan.spike_extra(*noise_key)
                            * freq
                            * contention.base_ipc(*class);
                    }
                    if instr <= 0.0 {
                        lane.seg_idx += 1;
                        continue;
                    }
                    lane.state = LState::Computing;
                    lane.class = *class;
                    lane.remaining_instr = instr;
                    lane.total_instr = instr;
                    lane.seg_start = now;
                    lane.cycles_acc = 0.0;
                    return;
                }
                Segment::Collective {
                    op,
                    comm_key,
                    size,
                    bytes,
                    tag,
                } => {
                    let (op, comm_key, size, bytes, tag) = (*op, *comm_key, *size, *bytes, *tag);
                    let rank = lane.rank;
                    let ci = register_post(
                        rank, op, comm_key, size, bytes, tag, colls, coll_index, seq, network,
                        comm, now,
                    );
                    colls[ci].waiters.push((li, now));
                    lane.state = LState::WaitColl(ci);
                    return;
                }
                Segment::CollectivePost {
                    op,
                    comm_key,
                    size,
                    bytes,
                    tag,
                } => {
                    let (op, comm_key, size, bytes, tag) = (*op, *comm_key, *size, *bytes, *tag);
                    let rank = lane.rank;
                    register_post(
                        rank, op, comm_key, size, bytes, tag, colls, coll_index, seq, network,
                        comm, now,
                    );
                    // The lane continues immediately — that is the point.
                    lane.seg_idx += 1;
                    continue;
                }
                Segment::CollectiveWait { comm_key, tag } => {
                    let (comm_key, tag) = (*comm_key, *tag);
                    let rank = lane.rank;
                    let s = seq_wait.entry((rank, comm_key, tag)).or_insert(0);
                    let my_seq = *s;
                    *s += 1;
                    let key = (comm_key, tag, my_seq);
                    let ci = *coll_index
                        .get(&key)
                        .unwrap_or_else(|| panic!("CollectiveWait before its post at {key:?}"));
                    if colls[ci].done {
                        // The transfer finished while we computed: fully
                        // overlapped, zero wait recorded.
                        trace.comm.push(CommRecord {
                            lane: Lane::new(lane.rank, lane.worker),
                            op: colls[ci].op,
                            comm_id: colls[ci].comm_key,
                            comm_size: colls[ci].size,
                            bytes: colls[ci].bytes,
                            t_start: now,
                            t_end: now,
                        });
                        lane.seg_idx += 1;
                        continue;
                    }
                    colls[ci].waiters.push((li, now));
                    lane.state = LState::WaitColl(ci);
                    return;
                }
            }
        }
    }

    loop {
        events += 1;
        assert!(events < 200_000_000, "simulation event limit exceeded");

        // Dispatch ready tasks to idle lanes (lane order => deterministic).
        for li in 0..lanes.len() {
            if lanes[li].state != LState::Idle {
                continue;
            }
            let rank = lanes[li].rank;
            if let Some(Reverse((_p, tidx))) = scheds[rank].ready.pop() {
                lanes[li].task = tidx;
                lanes[li].seg_idx = 0;
                lanes[li].task_start = now;
                start_segment(
                    li,
                    &mut lanes,
                    ranks,
                    &mut scheds,
                    &mut colls,
                    &mut coll_index,
                    &mut seq,
                    &mut seq_wait,
                    &mut network,
                    contention,
                    comm,
                    plan,
                    freq,
                    &mut trace,
                    now,
                );
            } else if scheds[rank].remaining == 0 {
                lanes[li].state = LState::Done;
            }
        }
        // A completed zero-length task may have readied successors for
        // other idle lanes within the same instant; loop dispatch until
        // stable.
        let any_dispatchable = lanes.iter().any(|l| {
            l.state == LState::Idle && !scheds[l.rank].ready.is_empty()
        });
        if any_dispatchable {
            continue;
        }

        if scheds.iter().all(|s| s.remaining == 0) {
            break;
        }

        // Node state: active compute lanes per core and total demand load.
        let mut core_active = vec![0usize; knl.cores];
        let mut core_demand_max = vec![0.0f64; knl.cores];
        let mut core_demand_sum = vec![0.0f64; knl.cores];
        for l in &lanes {
            if l.state == LState::Computing {
                core_active[l.core] += 1;
                let d = contention.bw_demand(l.class);
                core_demand_sum[l.core] += d;
                if d > core_demand_max[l.core] {
                    core_demand_max[l.core] = d;
                }
            }
        }
        let load: f64 = core_demand_max.iter().sum();
        let co_demand = |l: &LaneSt| -> f64 {
            let n = core_active[l.core];
            if n <= 1 {
                return 1.0;
            }
            (core_demand_sum[l.core] - contention.bw_demand(l.class)) / (n - 1) as f64
        };

        // Candidate time step.
        let mut dt = f64::INFINITY;
        for l in &lanes {
            if l.state == LState::Computing {
                let ipc =
                    contention.effective_ipc(l.class, core_active[l.core], co_demand(l), load);
                let speed = freq * ipc;
                dt = dt.min(l.remaining_instr / speed);
            }
        }
        for c in &colls {
            if let (Some(r), false) = (c.release_at, c.done) {
                dt = dt.min((r - now).max(0.0));
            }
        }
        if !dt.is_finite() {
            // Nothing can progress: diagnose the deadlock.
            let stuck: Vec<String> = lanes
                .iter()
                .filter_map(|l| match l.state {
                    LState::WaitColl(ci) => Some(format!(
                        "rank {} worker {} waiting on comm_key {} ({}/{} posted)",
                        l.rank,
                        l.worker,
                        colls[ci].comm_key,
                        colls[ci].posts,
                        colls[ci].size
                    )),
                    _ => None,
                })
                .collect();
            panic!("simulated deadlock: no runnable lane; waiting: {stuck:?}");
        }

        // Advance time and progress compute lanes.
        now += dt;
        let mut finished_compute = Vec::new();
        for (li, l) in lanes.iter_mut().enumerate() {
            if l.state == LState::Computing {
                let n = core_active[l.core];
                let co = if n <= 1 {
                    1.0
                } else {
                    (core_demand_sum[l.core] - contention.bw_demand(l.class)) / (n - 1) as f64
                };
                let ipc = contention.effective_ipc(l.class, n, co, load);
                let speed = freq * ipc;
                l.remaining_instr -= dt * speed;
                l.cycles_acc += dt * freq;
                if l.remaining_instr <= 1e-6 {
                    finished_compute.push(li);
                }
            }
        }
        for li in finished_compute {
            let l = &mut lanes[li];
            trace.compute.push(ComputeRecord {
                lane: Lane::new(l.rank, l.worker),
                class: l.class,
                t_start: l.seg_start,
                t_end: now,
                instructions: l.total_instr,
                cycles: l.cycles_acc,
            });
            l.seg_idx += 1;
            start_segment(
                li,
                &mut lanes,
                ranks,
                &mut scheds,
                &mut colls,
                &mut coll_index,
                &mut seq,
                &mut seq_wait,
                &mut network,
                contention,
                comm,
                plan,
                freq,
                &mut trace,
                now,
            );
        }

        // Release finished collectives.
        for ci in 0..colls.len() {
            let ready = matches!(colls[ci].release_at, Some(r) if r <= now + 1e-15)
                && !colls[ci].done;
            if !ready {
                continue;
            }
            colls[ci].done = true;
            // Free the channel and start the next queued transfer, if any.
            let dur_this = comm.duration(colls[ci].op, colls[ci].size, colls[ci].bytes);
            if dur_this > 0.0 {
                network.active -= 1;
                if let Some(next) = network.queue.pop_front() {
                    network.active += 1;
                    colls[next].queued = false;
                    let d = comm.duration(colls[next].op, colls[next].size, colls[next].bytes);
                    colls[next].release_at = Some(now + d);
                }
            }
            let waiters = std::mem::take(&mut colls[ci].waiters);
            let (op, comm_key, size, bytes) = (
                colls[ci].op,
                colls[ci].comm_key,
                colls[ci].size,
                colls[ci].bytes,
            );
            for (li, t_arrive) in waiters {
                let l = &mut lanes[li];
                trace.comm.push(CommRecord {
                    lane: Lane::new(l.rank, l.worker),
                    op,
                    comm_id: comm_key,
                    comm_size: size,
                    bytes,
                    t_start: t_arrive,
                    t_end: now,
                });
                l.seg_idx += 1;
                start_segment(
                    li,
                    &mut lanes,
                    ranks,
                    &mut scheds,
                    &mut colls,
                    &mut coll_index,
                    &mut seq,
                    &mut seq_wait,
                    &mut network,
                    contention,
                    comm,
                    plan,
                    freq,
                    &mut trace,
                    now,
                );
            }
        }
    }

    trace.sort();
    SimResult {
        trace,
        runtime: now,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::TaskSpec;
    use fftx_trace::CommOp;

    fn knl() -> KnlConfig {
        KnlConfig::paper()
    }

    /// The paper model without system noise, for exact-duration asserts.
    fn quiet() -> ContentionModel {
        ContentionModel {
            noise: 0.0,
            band_noise: 0.0,
            ..ContentionModel::paper()
        }
    }

    fn compute(flops: f64) -> Segment {
        Segment::compute(StateClass::FftXy, flops)
    }

    fn coll(key: u64, size: usize, tag: u64) -> Segment {
        Segment::Collective {
            op: CommOp::Alltoall,
            comm_key: key,
            size,
            bytes: 1 << 16,
            tag,
        }
    }

    #[test]
    fn single_lane_compute_duration() {
        let m = quiet();
        let flops = 1.4e9; // one second at IPC 1 and 1.4 GHz
        let r = simulate(
            &[RankTasks::static_program(vec![compute(flops)])],
            &knl(),
            &m,
            &CommModel::paper(),
        );
        let expect = flops * m.instructions_per_flop(StateClass::FftXy)
            / (1.4e9 * m.base_ipc(StateClass::FftXy));
        assert!(
            (r.runtime - expect).abs() < 1e-9,
            "runtime {} vs {expect}",
            r.runtime
        );
        assert_eq!(r.trace.compute.len(), 1);
        let burst = &r.trace.compute[0];
        assert!((burst.ipc() - m.base_ipc(StateClass::FftXy)).abs() < 1e-9);
    }

    #[test]
    fn lockstep_collective_synchronises() {
        // Rank 1 computes twice as long before the collective; rank 0 waits.
        let progs = vec![
            RankTasks::static_program(vec![compute(1e9), coll(7, 2, 0), compute(1e9)]),
            RankTasks::static_program(vec![compute(2e9), coll(7, 2, 0), compute(1e9)]),
        ];
        let r = simulate(&progs, &knl(), &ContentionModel::paper(), &CommModel::paper());
        assert_eq!(r.trace.comm.len(), 2);
        let w0 = r.trace.comm.iter().find(|c| c.lane.rank == 0).unwrap();
        let w1 = r.trace.comm.iter().find(|c| c.lane.rank == 1).unwrap();
        // Rank 0 arrived earlier and waited longer.
        assert!(w0.duration() > w1.duration());
        assert!((w0.t_end - w1.t_end).abs() < 1e-12);
    }

    #[test]
    fn contention_slows_parallel_lanes() {
        let m = quiet();
        let one = simulate(
            &[RankTasks::static_program(vec![compute(1e9)])],
            &knl(),
            &m,
            &CommModel::paper(),
        );
        let many: Vec<RankTasks> = (0..64)
            .map(|_| RankTasks::static_program(vec![compute(1e9)]))
            .collect();
        let r64 = simulate(&many, &knl(), &m, &CommModel::paper());
        assert!(
            r64.runtime > 1.5 * one.runtime,
            "64 lanes {} vs 1 lane {}",
            r64.runtime,
            one.runtime
        );
        // Uncontended model: no slowdown at all (distinct cores).
        let r64_ideal = simulate(&many, &knl(), &ContentionModel::uncontended(), &CommModel::paper());
        assert!((r64_ideal.runtime - one.runtime).abs() < 1e-9);
    }

    #[test]
    fn hyperthreading_shares_the_core() {
        let m = quiet();
        // 128 lanes pack onto 64 cores x 2 hyper-threads; compare against
        // a 64-lane run where every lane has a core to itself.
        let shared: Vec<RankTasks> = (0..128)
            .map(|_| RankTasks::static_program(vec![compute(1e9)]))
            .collect();
        let alone: Vec<RankTasks> = (0..64)
            .map(|_| RankTasks::static_program(vec![compute(1e9)]))
            .collect();
        let r_shared = simulate(&shared, &knl(), &m, &CommModel::paper());
        let r_alone = simulate(&alone, &knl(), &m, &CommModel::paper());
        let ipc_shared = r_shared.trace.aggregate_ipc(None);
        let ipc_alone = r_alone.trace.aggregate_ipc(None);
        assert!(
            ipc_shared < 0.7 * ipc_alone,
            "shared {ipc_shared} vs alone {ipc_alone}"
        );
    }

    #[test]
    fn task_mode_runs_tasks_on_workers() {
        // One rank, 4 workers, 8 independent tasks: must take ~2 serial
        // rounds, not 8.
        let tasks: Vec<TaskSpec> = (0..8)
            .map(|i| TaskSpec::new(format!("t{i}"), i, vec![compute(1.4e9)]))
            .collect();
        let rt = RankTasks { tasks, workers: 4 };
        let m = ContentionModel::uncontended();
        let r = simulate(&[rt], &knl(), &m, &CommModel::paper());
        let serial = 8.0 * 1.4e9 * m.instructions_per_flop(StateClass::FftXy)
            / (1.4e9 * m.base_ipc(StateClass::FftXy));
        assert!((r.runtime - serial / 4.0).abs() < 1e-9, "runtime {}", r.runtime);
        assert_eq!(r.trace.tasks.len(), 8);
    }

    #[test]
    fn dependencies_serialise_tasks() {
        let tasks = vec![
            TaskSpec::new("a", 0, vec![compute(1e9)]),
            TaskSpec::new("b", 1, vec![compute(1e9)]).with_deps(vec![0]),
            TaskSpec::new("c", 2, vec![compute(1e9)]).with_deps(vec![1]),
        ];
        let rt = RankTasks { tasks, workers: 4 };
        let m = ContentionModel::uncontended();
        let r = simulate(&[rt], &knl(), &m, &CommModel::paper());
        let one = 1e9 * m.instructions_per_flop(StateClass::FftXy)
            / (1.4e9 * m.base_ipc(StateClass::FftXy));
        assert!((r.runtime - 3.0 * one).abs() < 1e-9);
        // Task records must be strictly ordered.
        let mut t = r.trace.tasks.clone();
        t.sort_by(|a, b| a.t_start.total_cmp(&b.t_start));
        assert!(t[0].t_end <= t[1].t_start + 1e-12);
        assert!(t[1].t_end <= t[2].t_start + 1e-12);
    }

    #[test]
    fn tagged_collectives_cross_match_in_task_mode() {
        // 2 ranks x 2 workers, 2 bands; each band does an alltoall with its
        // own tag. Must complete without deadlock, 4 comm records.
        let mk = |_rank: usize| {
            let tasks: Vec<TaskSpec> = (0..2u64)
                .map(|b| {
                    TaskSpec::new(
                        format!("band{b}"),
                        b,
                        vec![compute(1e8), coll(3, 2, b), compute(1e8)],
                    )
                })
                .collect();
            RankTasks { tasks, workers: 2 }
        };
        let r = simulate(
            &[mk(0), mk(1)],
            &knl(),
            &ContentionModel::paper(),
            &CommModel::paper(),
        );
        assert_eq!(r.trace.comm.len(), 4);
    }

    #[test]
    fn determinism() {
        let mk = || {
            let tasks: Vec<TaskSpec> = (0..6u64)
                .map(|b| {
                    TaskSpec::new(
                        format!("band{b}"),
                        b,
                        vec![compute(3e8 + b as f64 * 1e7), coll(3, 2, b), compute(2e8)],
                    )
                })
                .collect();
            vec![
                RankTasks { tasks: tasks.clone(), workers: 3 },
                RankTasks { tasks, workers: 3 },
            ]
        };
        let a = simulate(&mk(), &knl(), &ContentionModel::paper(), &CommModel::paper());
        let b = simulate(&mk(), &knl(), &ContentionModel::paper(), &CommModel::paper());
        assert_eq!(a.runtime, b.runtime);
        assert_eq!(a.trace.compute.len(), b.trace.compute.len());
        for (x, y) in a.trace.compute.iter().zip(&b.trace.compute) {
            assert_eq!(x.t_start, y.t_start);
            assert_eq!(x.t_end, y.t_end);
        }
    }

    #[test]
    fn conservation_all_segments_execute() {
        let tasks: Vec<TaskSpec> = (0..5u64)
            .map(|b| TaskSpec::new(format!("t{b}"), b, vec![compute(1e8), compute(2e8)]))
            .collect();
        let rt = RankTasks { tasks, workers: 2 };
        let total: f64 = rt.total_flops();
        let m = quiet();
        let r = simulate(&[rt], &knl(), &m, &CommModel::paper());
        let instr_expect = total * m.instructions_per_flop(StateClass::FftXy);
        let instr_got: f64 = r.trace.compute.iter().map(|c| c.instructions).sum();
        assert!((instr_got - instr_expect).abs() < 1.0);
        assert_eq!(r.trace.compute.len(), 10);
    }

    #[test]
    #[should_panic(expected = "simulated deadlock")]
    fn mismatched_collective_deadlocks_loudly() {
        let progs = vec![
            RankTasks::static_program(vec![coll(1, 2, 0)]),
            RankTasks::static_program(vec![coll(2, 2, 0)]),
        ];
        simulate(&progs, &knl(), &ContentionModel::paper(), &CommModel::paper());
    }

    #[test]
    fn ideal_network_removes_transfer_only() {
        let progs = vec![
            RankTasks::static_program(vec![compute(1e9), coll(7, 2, 0)]),
            RankTasks::static_program(vec![compute(2e9), coll(7, 2, 0)]),
        ];
        let real = simulate(&progs, &knl(), &ContentionModel::paper(), &CommModel::paper());
        let ideal = simulate(
            &progs,
            &knl(),
            &ContentionModel::paper(),
            &CommModel::paper().idealized(),
        );
        assert!(ideal.runtime < real.runtime);
        // The slow rank's wait (sync) remains in the ideal replay: rank 0
        // still waits for rank 1.
        let w0 = ideal.trace.comm.iter().find(|c| c.lane.rank == 0).unwrap();
        assert!(w0.duration() > 0.0);
    }
}

#[cfg(test)]
mod split_phase_tests {
    use super::*;
    use crate::program::TaskSpec;
    use fftx_trace::CommOp;

    fn quiet() -> ContentionModel {
        ContentionModel {
            noise: 0.0,
            band_noise: 0.0,
            ..ContentionModel::paper()
        }
    }

    fn compute(flops: f64) -> Segment {
        Segment::compute(StateClass::FftXy, flops)
    }

    fn post(key: u64, size: usize, tag: u64) -> Segment {
        Segment::CollectivePost {
            op: CommOp::Alltoall,
            comm_key: key,
            size,
            bytes: 1 << 20,
            tag,
        }
    }

    fn wait(key: u64, tag: u64) -> Segment {
        Segment::CollectiveWait { comm_key: key, tag }
    }

    /// A transfer fully covered by overlapped compute costs no wait time:
    /// post -> long compute -> wait must equal the compute-only runtime.
    #[test]
    fn fully_overlapped_transfer_is_free() {
        let knl = KnlConfig::paper();
        let m = quiet();
        let cm = CommModel::paper();
        let transfer = cm.duration(CommOp::Alltoall, 2, 1 << 20);
        assert!(transfer > 0.0);
        // Compute long enough to cover the transfer several times.
        let long_flops = 20.0 * transfer * knl.freq_hz * m.base_ipc(StateClass::FftXy)
            / m.instructions_per_flop(StateClass::FftXy);
        let split = vec![
            RankTasks::static_program(vec![post(1, 2, 0), compute(long_flops), wait(1, 0)]),
            RankTasks::static_program(vec![post(1, 2, 0), compute(long_flops), wait(1, 0)]),
        ];
        let blocking = vec![
            RankTasks::static_program(vec![
                Segment::Collective {
                    op: CommOp::Alltoall,
                    comm_key: 1,
                    size: 2,
                    bytes: 1 << 20,
                    tag: 0,
                },
                compute(long_flops),
            ]),
            RankTasks::static_program(vec![
                Segment::Collective {
                    op: CommOp::Alltoall,
                    comm_key: 1,
                    size: 2,
                    bytes: 1 << 20,
                    tag: 0,
                },
                compute(long_flops),
            ]),
        ];
        let r_split = simulate(&split, &knl, &m, &cm);
        let r_block = simulate(&blocking, &knl, &m, &cm);
        // Split-phase hides the transfer behind the compute entirely.
        assert!(
            r_split.runtime < r_block.runtime - 0.5 * transfer,
            "split {} vs blocking {} (transfer {})",
            r_split.runtime,
            r_block.runtime,
            transfer
        );
        // The recorded wait is (near) zero for both ranks.
        for c in &r_split.trace.comm {
            assert!(c.duration() < 1e-12, "overlapped wait must be free");
        }
    }

    /// With no compute between post and wait, split-phase degenerates to
    /// the blocking collective.
    #[test]
    fn unoverlapped_split_equals_blocking() {
        let knl = KnlConfig::paper();
        let m = quiet();
        let cm = CommModel::paper();
        let mk_split = || {
            RankTasks::static_program(vec![compute(1e8), post(1, 2, 0), wait(1, 0)])
        };
        let mk_block = || {
            RankTasks::static_program(vec![
                compute(1e8),
                Segment::Collective {
                    op: CommOp::Alltoall,
                    comm_key: 1,
                    size: 2,
                    bytes: 1 << 20,
                    tag: 0,
                },
            ])
        };
        let r_split = simulate(&[mk_split(), mk_split()], &knl, &m, &cm);
        let r_block = simulate(&[mk_block(), mk_block()], &knl, &m, &cm);
        assert!((r_split.runtime - r_block.runtime).abs() < 1e-12);
    }

    /// The wait of a slower rank's partner accounts the rendezvous time.
    #[test]
    fn partner_skew_shows_up_in_the_wait() {
        let knl = KnlConfig::paper();
        let m = quiet();
        let cm = CommModel::paper();
        let fast = RankTasks::static_program(vec![compute(1e8), post(1, 2, 0), wait(1, 0)]);
        let slow = RankTasks::static_program(vec![compute(1e9), post(1, 2, 0), wait(1, 0)]);
        let r = simulate(&[fast, slow], &knl, &m, &cm);
        let w0 = r.trace.comm.iter().find(|c| c.lane.rank == 0).unwrap();
        let w1 = r.trace.comm.iter().find(|c| c.lane.rank == 1).unwrap();
        assert!(w0.duration() > w1.duration());
    }

    /// Split-phase inside tasks: posts from one task generation overlap
    /// compute of the next.
    #[test]
    fn split_phase_in_task_mode() {
        let knl = KnlConfig::paper();
        let m = quiet();
        let cm = CommModel::paper();
        let mk = || {
            let tasks: Vec<TaskSpec> = (0..4u64)
                .flat_map(|b| {
                    let base = (2 * b) as usize;
                    vec![
                        TaskSpec::new(format!("post{b}"), b, vec![compute(1e8), post(9, 2, b)]),
                        TaskSpec::new(format!("wait{b}"), b, vec![wait(9, b), compute(1e8)])
                            .with_deps(vec![base]),
                    ]
                })
                .collect();
            RankTasks { tasks, workers: 2 }
        };
        let r = simulate(&[mk(), mk()], &knl, &m, &cm);
        assert_eq!(r.trace.comm.len(), 8); // 4 waits x 2 ranks
        assert_eq!(r.trace.tasks.len(), 16);
    }

    #[test]
    #[should_panic(expected = "CollectiveWait before its post")]
    fn wait_without_post_is_rejected() {
        let progs = vec![RankTasks::static_program(vec![wait(5, 0)])];
        simulate(&progs, &KnlConfig::paper(), &quiet(), &CommModel::paper());
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::program::RankTasks;
    use fftx_trace::StateClass;

    fn quiet() -> ContentionModel {
        ContentionModel {
            noise: 0.0,
            band_noise: 0.0,
            ..ContentionModel::paper()
        }
    }

    fn compute(flops: f64) -> Segment {
        Segment::compute(StateClass::FftXy, flops)
    }

    #[test]
    fn empty_plan_is_exactly_the_clean_simulation() {
        let progs = vec![
            RankTasks::static_program(vec![compute(1e9), compute(5e8)]),
            RankTasks::static_program(vec![compute(1e9), compute(5e8)]),
        ];
        let clean = simulate(&progs, &KnlConfig::paper(), &quiet(), &CommModel::paper());
        let faulty = simulate_faulty(
            &progs,
            &KnlConfig::paper(),
            &quiet(),
            &CommModel::paper(),
            &FaultPlan::none(),
        );
        assert_eq!(clean.runtime, faulty.runtime);
        assert_eq!(clean.trace.compute.len(), faulty.trace.compute.len());
    }

    #[test]
    fn slow_rank_stretches_only_that_rank() {
        let progs = vec![RankTasks::static_program(vec![compute(1.4e9)])];
        let clean = simulate(&progs, &KnlConfig::paper(), &quiet(), &CommModel::paper());
        let slowed = simulate_faulty(
            &progs,
            &KnlConfig::paper(),
            &quiet(),
            &CommModel::paper(),
            &FaultPlan::slow_rank(0, 2.0),
        );
        assert!(
            (slowed.runtime - 2.0 * clean.runtime).abs() < 1e-9,
            "slowed {} vs clean {}",
            slowed.runtime,
            clean.runtime
        );
        // A plan naming a rank that does not exist changes nothing.
        let other = simulate_faulty(
            &progs,
            &KnlConfig::paper(),
            &quiet(),
            &CommModel::paper(),
            &FaultPlan::slow_rank(1, 2.0),
        );
        assert_eq!(other.runtime, clean.runtime);
    }

    #[test]
    fn spikes_hit_only_matching_band_segments() {
        // Two band work items at ordinal 13: band 0 (key 13) and band 1
        // (key 64 + 13). A spike on every 2nd band hits only band 0.
        let keyed = |band: u64| Segment::compute_keyed(StateClass::FftXy, 1e9, band * 64 + 13);
        let progs = vec![RankTasks::static_program(vec![keyed(0), keyed(1)])];
        let clean = simulate(&progs, &KnlConfig::paper(), &quiet(), &CommModel::paper());
        let spiked = simulate_faulty(
            &progs,
            &KnlConfig::paper(),
            &quiet(),
            &CommModel::paper(),
            &FaultPlan::spikes(2, 13, 0.5),
        );
        // The stall is 0.5 s of unit-IPC work; at the class IPC it can only
        // take longer.
        assert!(
            spiked.runtime >= clean.runtime + 0.5,
            "spiked {} vs clean {}",
            spiked.runtime,
            clean.runtime
        );
        // A spike at a different ordinal misses every segment.
        let missed = simulate_faulty(
            &progs,
            &KnlConfig::paper(),
            &quiet(),
            &CommModel::paper(),
            &FaultPlan::spikes(2, 14, 0.5),
        );
        assert_eq!(missed.runtime, clean.runtime);
    }
}
