//! The performance models: per-phase IPC with SMT sharing and node-level
//! resource contention, and the collective cost model.
//!
//! These are *calibrated shape models*, not cycle-accurate simulations: the
//! constants are chosen so the simulated original kernel reproduces the
//! efficiency-factor columns of Table I (IPC scalability 1.00 → 0.93 → 0.79
//! → 0.56 → 0.28 over 8 → 128 lanes, halving under 2× hyper-threading, and
//! the transfer-efficiency decay), and the predictions for the task-based
//! version are then read off the same model (Table II, Figs. 6/7). See
//! DESIGN.md §6 and EXPERIMENTS.md for paper-vs-model numbers.

use fftx_trace::{CommOp, StateClass};

/// Per-phase IPC / bandwidth-demand model plus node contention.
#[derive(Debug, Clone, Copy)]
pub struct ContentionModel {
    /// Node load (in demand units ≈ busy cores) where degradation begins.
    pub sat_load: f64,
    /// Strength of the superlinear degradation term.
    pub slope: f64,
    /// Exponent of the degradation term.
    pub power: f64,
    /// Issue share per hardware thread when 1..=4 threads are active on a
    /// core.
    pub smt_share: [f64; 4],
    /// System-noise amplitude: every compute segment's work is multiplied
    /// by a deterministic pseudo-random factor in `[1-noise, 1+noise]`.
    /// Real nodes exhibit this run-to-run variability — it is what the
    /// paper's own load-balance rows (95-98% for a perfectly balanced
    /// kernel) measure.
    pub noise: f64,
    /// Systematic per-work-item (band × step) duration variability,
    /// *identical on every rank*: data/cache/locality effects make some
    /// bands consistently cheaper than others. The static code pays for it
    /// with synchronisation waits at every collective (each member of a
    /// task group handles a different band); the dynamic scheduler absorbs
    /// it — and the accumulated differences are what de-synchronise the
    /// compute phases (Fig. 7). Calibrated against the LB/sync rows of
    /// Tables I and II.
    pub band_noise: f64,
    /// Globally disable contention (ablation).
    pub enabled: bool,
}

impl ContentionModel {
    /// Calibrated against Table I (see module docs).
    pub fn paper() -> Self {
        ContentionModel {
            sat_load: 8.0,
            slope: 0.0080,
            power: 1.2,
            smt_share: [1.0, 0.44, 0.26, 0.19],
            noise: 0.03,
            band_noise: 0.20,
            enabled: true,
        }
    }

    /// An idealised node without any contention (ablation study).
    pub fn uncontended() -> Self {
        ContentionModel {
            enabled: false,
            noise: 0.0,
            band_noise: 0.0,
            ..Self::paper()
        }
    }

    /// Deterministic per-lane hardware-noise factor for one compute
    /// segment, identified by the executing lane and its per-lane segment
    /// counter (splitmix64 hash).
    pub fn noise_factor(&self, lane: usize, segment: u64) -> f64 {
        Self::hash_factor(
            (lane as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(segment),
            self.noise,
        )
    }

    /// Deterministic systematic work-variation factor for a work item
    /// (same value on every rank). `u64::MAX` disables it.
    pub fn band_factor(&self, noise_key: u64) -> f64 {
        if noise_key == u64::MAX {
            return 1.0;
        }
        Self::hash_factor(
            noise_key.wrapping_mul(0xD6E8_FEB8_6659_FD93),
            self.band_noise,
        )
    }

    fn hash_factor(seed: u64, amp: f64) -> f64 {
        if amp == 0.0 {
            return 1.0;
        }
        let mut z = seed.wrapping_add(0x1234_5678_9ABC_DEF0);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let u = (z >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        1.0 + amp * (2.0 * u - 1.0)
    }

    /// Uncontended single-thread IPC of a phase class. The relative values
    /// mirror the Fig. 3 measurements (psi prep ~0.06, z FFT ~0.52, main
    /// xy/vofr phase ~0.77 — those are 64-lane contended values; the bases
    /// here are the model inputs that produce them under load).
    pub fn base_ipc(&self, class: StateClass) -> f64 {
        match class {
            StateClass::PsiPrep => 0.11,
            StateClass::Pack | StateClass::Unpack => 0.80,
            StateClass::FftZ => 0.98,
            StateClass::FftXy => 1.48,
            StateClass::Vofr => 1.32,
            StateClass::Runtime => 1.00,
            StateClass::Other => 0.90,
        }
    }

    /// Relative shared-resource (bandwidth/L2) demand of a phase class;
    /// enters the node-load sum. High-intensity phases press harder.
    pub fn bw_demand(&self, class: StateClass) -> f64 {
        match class {
            StateClass::PsiPrep => 0.35,
            StateClass::Pack | StateClass::Unpack => 0.40,
            StateClass::FftZ => 0.90,
            StateClass::FftXy => 1.00,
            StateClass::Vofr => 1.00,
            StateClass::Runtime => 0.10,
            StateClass::Other => 0.45,
        }
    }

    /// Node-level slowdown factor for a given total load (sum of per-core
    /// demands of active compute lanes) as experienced by a phase with
    /// shared-resource demand 1.0.
    pub fn node_factor(&self, load: f64) -> f64 {
        self.node_factor_for(1.0, load)
    }

    /// Node-level slowdown factor experienced by a phase of demand
    /// `sensitivity`: phases that barely touch the shared resources are
    /// proportionally less sensitive to node load. (This is why overlapping
    /// a copy-bound prep phase with other ranks' FFTs costs the prep phase
    /// little while relieving the FFTs a lot — the asymmetry the task-based
    /// de-synchronisation exploits.)
    pub fn node_factor_for(&self, sensitivity: f64, load: f64) -> f64 {
        if !self.enabled {
            return 1.0;
        }
        let excess = (load - self.sat_load).max(0.0);
        1.0 / (1.0 + sensitivity * self.slope * excess.powf(self.power))
    }

    /// Effective IPC of a lane executing `class` while `active_on_core`
    /// threads (including itself) compute on its core whose *other* threads
    /// have average demand `co_demand`, and the node carries `load` demand
    /// units.
    ///
    /// The SMT share improves when the siblings run low-intensity
    /// (stall-heavy) phases — hyper-threading's latency hiding. In the
    /// lockstep original all siblings run the same high-demand phase and
    /// the share stays at its floor; the de-synchronised task version mixes
    /// phases on a core and recovers issue slots, which is how it profits
    /// from hyper-threading (the paper's extra ~3 % at 16×8).
    pub fn effective_ipc(
        &self,
        class: StateClass,
        active_on_core: usize,
        co_demand: f64,
        load: f64,
    ) -> f64 {
        let smt = if self.enabled {
            let floor = self.smt_share[(active_on_core.max(1) - 1).min(3)];
            if active_on_core > 1 {
                // Sub-linear in the siblings' idleness: even lightly
                // stalled co-runners free a disproportionate share of
                // issue slots. The recoverable share shrinks at higher SMT
                // levels (4 threads split front-end resources statically on
                // KNL, so there is less to reclaim).
                let recover = [0.0, 1.0, 0.45, 0.30][(active_on_core - 1).min(3)];
                floor + (1.0 - floor) * recover * (1.0 - co_demand.clamp(0.0, 1.0)).powf(0.7)
            } else {
                floor
            }
        } else {
            1.0
        };
        self.base_ipc(class) * smt * self.node_factor_for(self.bw_demand(class), load)
    }

    /// Instruction expansion: flops → retired instructions per class
    /// (loads/stores/address arithmetic on top of the arithmetic count).
    pub fn instructions_per_flop(&self, class: StateClass) -> f64 {
        match class {
            // Copy-dominated phases retire mostly memory instructions.
            StateClass::PsiPrep | StateClass::Pack | StateClass::Unpack | StateClass::Other => 1.6,
            StateClass::FftZ | StateClass::FftXy => 1.15,
            StateClass::Vofr => 1.3,
            StateClass::Runtime => 1.0,
        }
    }
}

/// Cost model for on-node collectives.
#[derive(Debug, Clone, Copy)]
pub struct CommModel {
    /// Per-stage latency (s); a P-rank collective pays `ceil(log2 P)` stages.
    pub alpha: f64,
    /// Effective per-rank exchange bandwidth (bytes/s).
    pub beta: f64,
    /// Extra per-peer message cost (s) — alltoall sends P-1 messages.
    pub per_msg: f64,
    /// Concurrent collectives the mesh sustains at full speed; further
    /// transfers queue FIFO. This is what makes communication cost grow
    /// with the number of simultaneously active sub-communicators (the
    /// paper's decaying transfer efficiency) and what staggers the bands
    /// of the task-based version (the de-synchronisation of Fig. 7).
    pub channels: usize,
    /// Zero out transfer time (the Dimemas-style ideal-network replay used
    /// to split communication efficiency into sync × transfer).
    pub ideal: bool,
}

impl CommModel {
    /// Calibrated against Table I's communication/transfer columns.
    pub fn paper() -> Self {
        CommModel {
            alpha: 2.0e-5,
            beta: 1.5e9,
            per_msg: 8.0e-6,
            channels: 1,
            ideal: false,
        }
    }

    /// The ideal-network variant of this model.
    pub fn idealized(self) -> Self {
        CommModel {
            ideal: true,
            ..self
        }
    }

    /// Transfer duration of one collective once all participants arrived.
    /// `bytes` is the per-rank contribution.
    pub fn duration(&self, op: CommOp, comm_size: usize, bytes: usize) -> f64 {
        if self.ideal || comm_size <= 1 {
            return 0.0;
        }
        let p = comm_size as f64;
        let stages = p.log2().ceil().max(1.0);
        let volume = bytes as f64 * (p - 1.0) / p;
        let msgs = match op {
            CommOp::Alltoall | CommOp::Alltoallv => p - 1.0,
            CommOp::Barrier => 0.0,
            _ => stages,
        };
        self.alpha * stages + self.per_msg * msgs + volume / self.beta
    }

    /// Cost of writing one buddy checkpoint: a single point-to-point
    /// message carrying `bytes` of batch state to the ring neighbour
    /// (the recovery layer's steady-state overhead — paid every batch,
    /// faults or not).
    pub fn checkpoint_seconds(&self, bytes: usize) -> f64 {
        if self.ideal {
            return 0.0;
        }
        self.alpha + self.per_msg + bytes as f64 / self.beta
    }

    /// Cost of recovering from `replays` mid-batch faults: each replay
    /// restores the checkpointed batch state (`checkpoint_bytes` through
    /// memory at the exchange bandwidth — a deliberately conservative
    /// stand-in for a local memcpy) and re-executes the batch
    /// (`batch_seconds`). The fault-free run pays none of this.
    pub fn replay_seconds(&self, checkpoint_bytes: usize, batch_seconds: f64, replays: u32) -> f64 {
        if self.ideal {
            return 0.0;
        }
        replays as f64 * (checkpoint_bytes as f64 / self.beta + batch_seconds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_factor_is_monotone_nonincreasing() {
        let m = ContentionModel::paper();
        let mut prev = m.node_factor(0.0);
        for load in [4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0] {
            let f = m.node_factor(load);
            assert!(f <= prev + 1e-12, "load {load}");
            assert!(f > 0.0 && f <= 1.0);
            prev = f;
        }
        assert_eq!(m.node_factor(0.0), 1.0);
        assert_eq!(m.node_factor(8.0), 1.0);
    }

    #[test]
    fn calibration_is_in_the_papers_regime() {
        // The end-to-end calibration lives in the table1/table2 harness
        // binaries (they FAIL if the simulated columns drift off the
        // paper); this test pins the raw curve's regime so refactors that
        // change its meaning are caught early.
        let m = ContentionModel::paper();
        let f8 = m.node_factor(8.0);
        assert!((f8 - 1.0).abs() < 1e-12, "no degradation at 8 lanes");
        let r64 = m.node_factor(64.0) / f8;
        assert!(
            (0.40..0.60).contains(&r64),
            "main-phase slowdown at full node: {r64:.3}"
        );
        // Low-demand phases are proportionally less sensitive.
        let light = m.node_factor_for(0.35, 64.0);
        assert!(light > m.node_factor(64.0));
        assert!(light < 1.0);
    }

    #[test]
    fn smt_sharing_decreases() {
        let m = ContentionModel::paper();
        for w in m.smt_share.windows(2) {
            assert!(w[1] < w[0]);
        }
        let a = m.effective_ipc(StateClass::FftXy, 1, 1.0, 8.0);
        let b = m.effective_ipc(StateClass::FftXy, 2, 1.0, 8.0);
        assert!(b < a);
    }

    #[test]
    fn smt_latency_hiding_helps_with_light_siblings() {
        let m = ContentionModel::paper();
        let heavy_sib = m.effective_ipc(StateClass::FftXy, 2, 1.0, 8.0);
        let light_sib = m.effective_ipc(StateClass::FftXy, 2, 0.4, 8.0);
        assert!(light_sib > heavy_sib);
        // Still below running alone.
        assert!(light_sib < m.effective_ipc(StateClass::FftXy, 1, 1.0, 8.0));
    }

    #[test]
    fn uncontended_model_is_flat() {
        let m = ContentionModel::uncontended();
        assert_eq!(m.node_factor(1000.0), 1.0);
        assert_eq!(
            m.effective_ipc(StateClass::FftXy, 4, 1.0, 1000.0),
            m.base_ipc(StateClass::FftXy)
        );
    }

    #[test]
    fn phase_ordering_matches_fig3() {
        // Under 64-lane load the contended IPCs must order like Fig. 3:
        // psi-prep << z FFT < main xy phase.
        let m = ContentionModel::paper();
        let load = 64.0;
        let prep = m.effective_ipc(StateClass::PsiPrep, 1, 1.0, load);
        let z = m.effective_ipc(StateClass::FftZ, 1, 1.0, load);
        let xy = m.effective_ipc(StateClass::FftXy, 1, 1.0, load);
        assert!(prep < 0.15, "psi prep {prep}");
        assert!(z > 0.3 && z < xy, "z {z} xy {xy}");
        assert!((0.6..1.0).contains(&xy), "main phase {xy}");
    }

    #[test]
    fn comm_duration_scales_with_size_and_bytes() {
        let c = CommModel::paper();
        let small = c.duration(CommOp::Alltoall, 8, 1024);
        let bigger_p = c.duration(CommOp::Alltoall, 64, 1024);
        let bigger_b = c.duration(CommOp::Alltoall, 8, 1 << 20);
        assert!(small > 0.0);
        assert!(bigger_p > small);
        assert!(bigger_b > small);
        assert_eq!(c.duration(CommOp::Alltoall, 1, 1 << 20), 0.0);
    }

    #[test]
    fn ideal_network_is_free() {
        let c = CommModel::paper().idealized();
        assert_eq!(c.duration(CommOp::Alltoall, 64, 1 << 20), 0.0);
    }

    #[test]
    fn recovery_overhead_model_scales_and_idealizes() {
        let c = CommModel::paper();
        // Checkpoints: latency-bound for tiny payloads, bandwidth-bound for
        // big ones, strictly monotone in bytes.
        let small = c.checkpoint_seconds(64);
        let big = c.checkpoint_seconds(1 << 24);
        assert!(small >= c.alpha + c.per_msg);
        assert!(big > small);
        // Replays: zero when fault-free, linear in the replay count, and
        // dominated by the batch re-execution for realistic batch times.
        assert_eq!(c.replay_seconds(1 << 20, 0.01, 0), 0.0);
        let one = c.replay_seconds(1 << 20, 0.01, 1);
        let three = c.replay_seconds(1 << 20, 0.01, 3);
        assert!(one > 0.01);
        assert!((three - 3.0 * one).abs() < 1e-12);
        // The Dimemas-style ideal replay zeroes the overhead out too.
        let ideal = c.idealized();
        assert_eq!(ideal.checkpoint_seconds(1 << 24), 0.0);
        assert_eq!(ideal.replay_seconds(1 << 20, 0.01, 3), 0.0);
    }
}
