//! Closed-form cost screening for candidate placements.
//!
//! The serving layer's placement tuner has to rank many candidate
//! configurations (R×T layout, scheduler policy, hyper-threading degree)
//! per workload class. Running the full discrete-event simulation for every
//! candidate is exact but needless for pruning — this module computes a
//! cheap analytic estimate from the same lowered rank programs and the same
//! calibrated models, so the screen and the final DES ranking can never
//! disagree about the inputs, only about queueing effects.
//!
//! The estimate deliberately ignores scheduling: compute is assumed
//! perfectly balanced over the configured lanes at the steady-state SMT and
//! node-contention operating point, and collectives serialize through the
//! mesh channels with no compute overlap. That makes it an upper-bound-ish
//! screen whose *relative order* tracks the simulator closely enough to
//! pick a top-k for exact evaluation.

use crate::arch::KnlConfig;
use crate::model::{CommModel, ContentionModel};
use crate::program::{RankTasks, Segment};
use fftx_trace::StateClass;
use std::collections::BTreeMap;

/// The components of a quick placement-cost estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostBreakdown {
    /// Execution lanes the programs occupy.
    pub lanes: usize,
    /// Hardware threads sharing one core at this occupancy (the HT degree
    /// of the placement).
    pub threads_per_core: usize,
    /// Balanced per-lane compute seconds at the steady-state operating
    /// point.
    pub compute_s: f64,
    /// Channel-serialized collective seconds (no compute overlap assumed).
    pub comm_s: f64,
}

impl CostBreakdown {
    /// The scalar screening cost: compute plus unoverlapped communication.
    pub fn total(&self) -> f64 {
        self.compute_s + self.comm_s
    }
}

/// Analytic cost screen over lowered rank programs — see the module docs
/// for the assumptions.
///
/// # Panics
/// Panics when `programs` is empty or occupies more lanes than the node
/// has hardware threads.
pub fn quick_estimate(
    programs: &[RankTasks],
    knl: &KnlConfig,
    contention: &ContentionModel,
    comm: &CommModel,
) -> CostBreakdown {
    assert!(!programs.is_empty(), "quick_estimate: no rank programs");
    let lanes: usize = programs.iter().map(|r| r.workers.max(1)).sum();
    knl.check_capacity(lanes);
    let threads_per_core = lanes.div_ceil(knl.cores_used(lanes));

    // Aggregate flops per phase class and channel-occupancy seconds. Each
    // collective appears once per participant, so its transfer time is
    // divided by the communicator size to count the channel occupancy once.
    let mut flops: BTreeMap<StateClass, f64> = BTreeMap::new();
    let mut channel_s = 0.0;
    for rank in programs {
        for task in &rank.tasks {
            for seg in &task.segments {
                match seg {
                    Segment::Compute { class, flops: f, .. } => {
                        *flops.entry(*class).or_insert(0.0) += f;
                    }
                    Segment::Collective { op, size, bytes, .. }
                    | Segment::CollectivePost { op, size, bytes, .. } => {
                        channel_s += comm.duration(*op, *size, *bytes) / (*size).max(1) as f64;
                    }
                    Segment::CollectiveWait { .. } => {}
                }
            }
        }
    }

    // Steady-state operating point: every lane active with the
    // demand-weighted average phase intensity.
    let total_flops: f64 = flops.values().sum();
    let avg_demand = if total_flops > 0.0 {
        flops
            .iter()
            .map(|(c, f)| contention.bw_demand(*c) * f)
            .sum::<f64>()
            / total_flops
    } else {
        0.0
    };
    let load = lanes as f64 * avg_demand;

    let mut compute_s = 0.0;
    for (class, f) in &flops {
        let ipc = contention.effective_ipc(*class, threads_per_core, avg_demand, load);
        let instructions = f / lanes as f64 * contention.instructions_per_flop(*class);
        compute_s += instructions / (ipc * knl.freq_hz);
    }

    CostBreakdown {
        lanes,
        threads_per_core,
        compute_s,
        comm_s: channel_s / comm.channels.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::TaskSpec;
    use fftx_trace::CommOp;

    fn program(workers: usize, flops: f64, bytes: usize, size: usize) -> RankTasks {
        let segments = vec![
            Segment::compute(StateClass::FftXy, flops),
            Segment::Collective {
                op: CommOp::Alltoall,
                comm_key: 1,
                size,
                bytes,
                tag: 0,
            },
        ];
        RankTasks {
            tasks: vec![TaskSpec::new("t", 0, segments)],
            workers,
        }
    }

    #[test]
    fn estimate_scales_down_with_lanes() {
        let knl = KnlConfig::paper();
        let con = ContentionModel::paper();
        let comm = CommModel::paper();
        let one: Vec<RankTasks> = vec![program(1, 1e9, 1 << 16, 1)];
        let four: Vec<RankTasks> = (0..4).map(|_| program(1, 0.25e9, 1 << 16, 4)).collect();
        let c1 = quick_estimate(&one, &knl, &con, &comm);
        let c4 = quick_estimate(&four, &knl, &con, &comm);
        assert_eq!(c1.lanes, 1);
        assert_eq!(c4.lanes, 4);
        assert!(c4.compute_s < c1.compute_s, "{} vs {}", c4.compute_s, c1.compute_s);
        // Rank-1 collectives cost nothing; the 4-rank exchange does.
        assert_eq!(c1.comm_s, 0.0);
        assert!(c4.comm_s > 0.0);
        assert!(c4.total() > c4.compute_s);
    }

    #[test]
    fn ht_degree_follows_occupancy() {
        let knl = KnlConfig::paper();
        let con = ContentionModel::paper();
        let comm = CommModel::paper();
        let p: Vec<RankTasks> = (0..knl.cores * 2).map(|_| program(1, 1e6, 0, 1)).collect();
        let c = quick_estimate(&p, &knl, &con, &comm);
        assert_eq!(c.threads_per_core, 2);
        let q = quick_estimate(&p[..knl.cores / 2], &knl, &con, &comm);
        assert_eq!(q.threads_per_core, 1);
    }

    #[test]
    fn collective_channel_time_counts_each_exchange_once() {
        let knl = KnlConfig::paper();
        let con = ContentionModel::paper();
        let comm = CommModel::paper();
        let size = 4usize;
        let bytes = 1 << 20;
        let p: Vec<RankTasks> = (0..size).map(|_| program(1, 0.0, bytes, size)).collect();
        let c = quick_estimate(&p, &knl, &con, &comm);
        let expect = comm.duration(CommOp::Alltoall, size, bytes);
        assert!((c.comm_s - expect).abs() < 1e-12, "{} vs {expect}", c.comm_s);
    }
}
