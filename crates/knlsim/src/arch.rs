//! The modeled Knights Landing node: core count, frequency, SMT, and the
//! lane → core placement.

/// Architecture parameters of the simulated node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KnlConfig {
    /// Physical cores (the BSC test system has 68).
    pub cores: usize,
    /// Core clock in Hz (1.4 GHz).
    pub freq_hz: f64,
    /// Hardware threads per core (4-way hyper-threading).
    pub max_smt: usize,
}

impl KnlConfig {
    /// The BSC test system of Section III: 68 cores @ 1.4 GHz, 4-way SMT.
    pub fn paper() -> Self {
        KnlConfig {
            cores: 68,
            freq_hz: 1.4e9,
            max_smt: 4,
        }
    }

    /// Number of cores actually used for `nlanes` lanes: the smallest SMT
    /// level is chosen and lanes are packed evenly (128 lanes → 64 cores ×
    /// 2 hyper-threads, the way the paper pins its 16×8 runs — not 60×2+8×1).
    pub fn cores_used(&self, nlanes: usize) -> usize {
        let smt_level = nlanes.div_ceil(self.cores).max(1);
        nlanes.div_ceil(smt_level).min(self.cores)
    }

    /// Core index a global lane is pinned to: *compact* placement — lanes
    /// `smt*k .. smt*(k+1)` share core `k`, so hyper-thread siblings are
    /// adjacent lanes (the same process's neighbouring threads, as a
    /// per-process pinning mask produces).
    #[inline]
    pub fn core_of(&self, lane: usize, nlanes: usize) -> usize {
        let smt_level = nlanes.div_ceil(self.cores).max(1);
        (lane / smt_level).min(self.cores_used(nlanes) - 1)
    }

    /// How many of `nlanes` land on each core (used for capacity checks).
    pub fn threads_per_core(&self, nlanes: usize) -> Vec<usize> {
        let mut v = vec![0usize; self.cores];
        for lane in 0..nlanes {
            v[self.core_of(lane, nlanes)] += 1;
        }
        v
    }

    /// Checks the lane count fits the node.
    ///
    /// # Panics
    /// Panics when `nlanes` exceeds `cores * max_smt`.
    pub fn check_capacity(&self, nlanes: usize) {
        assert!(
            nlanes <= self.cores * self.max_smt,
            "KnlConfig: {nlanes} lanes exceed node capacity {} x {}",
            self.cores,
            self.max_smt
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_preset() {
        let k = KnlConfig::paper();
        assert_eq!(k.cores, 68);
        assert_eq!(k.freq_hz, 1.4e9);
        assert_eq!(k.max_smt, 4);
        k.check_capacity(68 * 4);
    }

    #[test]
    fn round_robin_placement() {
        let k = KnlConfig::paper();
        assert_eq!(k.core_of(0, 64), 0);
        assert_eq!(k.core_of(63, 64), 63);
        assert_eq!(k.cores_used(64), 64);
        // Compact: at 2x SMT, lanes 0 and 1 are siblings on core 0.
        assert_eq!(k.core_of(0, 128), 0);
        assert_eq!(k.core_of(1, 128), 0);
        assert_eq!(k.core_of(2, 128), 1);
        // 128 lanes pack evenly: 64 cores x 2 hyper-threads.
        assert_eq!(k.cores_used(128), 64);
        let tpc = k.threads_per_core(128);
        assert_eq!(tpc.iter().sum::<usize>(), 128);
        assert_eq!(tpc.iter().filter(|&&c| c == 2).count(), 64);
        assert_eq!(tpc.iter().filter(|&&c| c == 0).count(), 4);
        // 256 lanes: 64 cores x 4.
        assert_eq!(k.cores_used(256), 64);
        assert!(k.threads_per_core(256).iter().all(|&c| c == 4 || c == 0));
    }

    #[test]
    #[should_panic(expected = "exceed node capacity")]
    fn capacity_enforced() {
        KnlConfig::paper().check_capacity(68 * 4 + 1);
    }
}
