//! Simulator input: per-rank task lists of compute/collective segments.
//!
//! The static (original) execution is the special case of one task per rank
//! executed by one worker; the task-based modes give every band its own
//! task (or chain of tasks) executed by several workers per rank.

use fftx_trace::{CommOp, StateClass};

/// One unit of work inside a task.
#[derive(Debug, Clone, PartialEq)]
pub enum Segment {
    /// A classified compute burst of `flops` floating-point operations
    /// (converted to instructions and cycles by the contention model).
    Compute {
        /// Phase classification.
        class: StateClass,
        /// Work volume.
        flops: f64,
        /// Identity of the work item (band × step). Segments with the same
        /// key get the same systematic work-variation factor on every rank
        /// — see [`crate::model::ContentionModel::band_noise`]. `u64::MAX`
        /// disables the variation.
        noise_key: u64,
    },
    /// A blocking collective. All `size` participating ranks must arrive at
    /// a matching `(comm_key, tag, seq)` before the transfer starts.
    Collective {
        /// Operation kind (for the trace and cost model).
        op: CommOp,
        /// Stable identifier of the communicator (shared by participants).
        comm_key: u64,
        /// Number of participating ranks.
        size: usize,
        /// Bytes contributed per rank.
        bytes: usize,
        /// Match tag (e.g. the band index), disambiguating concurrent
        /// collectives on one communicator.
        tag: u64,
    },
    /// The posting half of a split-phase collective (`MPI_Ialltoall`): the
    /// lane contributes and continues immediately; the transfer starts once
    /// every rank has posted. Must be paired with a later
    /// [`Segment::CollectiveWait`] with the same `(comm_key, tag)` on the
    /// same rank, in matching order.
    CollectivePost {
        /// Operation kind.
        op: CommOp,
        /// Communicator identifier.
        comm_key: u64,
        /// Number of participating ranks.
        size: usize,
        /// Bytes contributed per rank.
        bytes: usize,
        /// Match tag.
        tag: u64,
    },
    /// The completion half of a split-phase collective: blocks until the
    /// matching posted transfer has finished (zero time if it already has —
    /// the overlap the paper's future-work section is after).
    CollectiveWait {
        /// Communicator identifier (must match the post).
        comm_key: u64,
        /// Match tag (must match the post).
        tag: u64,
    },
}

impl Segment {
    /// Compute segment without systematic work variation.
    pub fn compute(class: StateClass, flops: f64) -> Self {
        Segment::Compute {
            class,
            flops,
            noise_key: u64::MAX,
        }
    }

    /// Compute segment tied to a work item (band/step) for the systematic
    /// per-band variation model.
    pub fn compute_keyed(class: StateClass, flops: f64, noise_key: u64) -> Self {
        Segment::Compute {
            class,
            flops,
            noise_key,
        }
    }
}

/// A schedulable task: a sequence of segments plus scheduling metadata.
#[derive(Debug, Clone)]
pub struct TaskSpec {
    /// Display label (lands in the trace).
    pub label: String,
    /// Scheduler priority: lower runs first, ties in creation order.
    pub priority: u64,
    /// Indices (within the same rank's task list) of tasks that must finish
    /// before this one becomes ready.
    pub deps: Vec<usize>,
    /// The work.
    pub segments: Vec<Segment>,
}

impl TaskSpec {
    /// A dependency-free task.
    pub fn new(label: impl Into<String>, priority: u64, segments: Vec<Segment>) -> Self {
        TaskSpec {
            label: label.into(),
            priority,
            deps: Vec::new(),
            segments,
        }
    }

    /// Adds predecessor task indices.
    pub fn with_deps(mut self, deps: Vec<usize>) -> Self {
        self.deps = deps;
        self
    }
}

/// All tasks of one rank plus its worker count.
#[derive(Debug, Clone)]
pub struct RankTasks {
    /// Tasks in creation order (dependency indices refer to this order).
    pub tasks: Vec<TaskSpec>,
    /// Worker lanes executing this rank's tasks (1 = static execution).
    pub workers: usize,
}

impl RankTasks {
    /// A static program: one worker running one task containing `segments`.
    pub fn static_program(segments: Vec<Segment>) -> Self {
        RankTasks {
            tasks: vec![TaskSpec::new("main", 0, segments)],
            workers: 1,
        }
    }

    /// Total flops across all tasks (conservation checks).
    pub fn total_flops(&self) -> f64 {
        self.tasks
            .iter()
            .flat_map(|t| &t.segments)
            .map(|s| match s {
                Segment::Compute { flops, .. } => *flops,
                _ => 0.0,
            })
            .sum()
    }

    /// Number of collective segments (conservation checks).
    pub fn collective_count(&self) -> usize {
        self.tasks
            .iter()
            .flat_map(|t| &t.segments)
            .filter(|s| matches!(s, Segment::Collective { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_program_shape() {
        let p = RankTasks::static_program(vec![
            Segment::compute(StateClass::FftXy, 100.0),
            Segment::Collective {
                op: CommOp::Alltoall,
                comm_key: 1,
                size: 4,
                bytes: 64,
                tag: 0,
            },
            Segment::compute(StateClass::FftZ, 50.0),
        ]);
        assert_eq!(p.workers, 1);
        assert_eq!(p.tasks.len(), 1);
        assert_eq!(p.total_flops(), 150.0);
        assert_eq!(p.collective_count(), 1);
    }

    #[test]
    fn task_with_deps() {
        let t = TaskSpec::new("b", 3, vec![]).with_deps(vec![0, 1]);
        assert_eq!(t.deps, vec![0, 1]);
        assert_eq!(t.priority, 3);
    }
}
