//! Property tests of the discrete-event engine: conservation, determinism,
//! and monotonicity under randomly generated programs.

use fftx_knlsim::{simulate, CommModel, ContentionModel, KnlConfig, RankTasks, Segment, TaskSpec};
use fftx_trace::{CommOp, StateClass};
use proptest::prelude::*;

fn quiet() -> ContentionModel {
    ContentionModel {
        noise: 0.0,
        band_noise: 0.0,
        ..ContentionModel::paper()
    }
}

/// Random per-rank programs: every rank gets the same number of tagged
/// collectives (so they match) interleaved with random compute.
fn programs(ranks: usize, bands: usize, workers: usize, flops: &[f64]) -> Vec<RankTasks> {
    (0..ranks)
        .map(|_| {
            let tasks = (0..bands)
                .map(|b| {
                    TaskSpec::new(
                        format!("b{b}"),
                        b as u64,
                        vec![
                            Segment::compute_keyed(
                                StateClass::FftXy,
                                flops[b % flops.len()],
                                b as u64,
                            ),
                            Segment::Collective {
                                op: CommOp::Alltoall,
                                comm_key: 7,
                                size: ranks,
                                bytes: 64 * 1024,
                                tag: b as u64,
                            },
                            Segment::compute_keyed(
                                StateClass::FftZ,
                                flops[(b + 1) % flops.len()],
                                b as u64 + 1000,
                            ),
                        ],
                    )
                })
                .collect();
            RankTasks { tasks, workers }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every planned compute segment and collective executes exactly once.
    #[test]
    fn conservation(
        ranks in 1usize..5,
        bands in 1usize..8,
        workers in 1usize..4,
        flops in proptest::collection::vec(1e6f64..1e8, 1..4),
    ) {
        let progs = programs(ranks, bands, workers, &flops);
        let planned_flops: f64 = progs.iter().map(|p| p.total_flops()).sum();
        let planned_colls: usize = progs.iter().map(|p| p.collective_count()).sum();
        let m = quiet();
        let r = simulate(&progs, &KnlConfig::paper(), &m, &CommModel::paper());
        let got_instr: f64 = r.trace.compute.iter().map(|c| c.instructions).sum();
        // All segments here are FftXy/FftZ with known expansion.
        let expect: f64 = progs
            .iter()
            .flat_map(|p| &p.tasks)
            .flat_map(|t| &t.segments)
            .map(|s| match s {
                Segment::Compute { class, flops, .. } => {
                    flops * m.instructions_per_flop(*class)
                }
                _ => 0.0,
            })
            .sum();
        prop_assert!((got_instr - expect).abs() < 1.0, "{got_instr} vs {expect}");
        prop_assert_eq!(r.trace.comm.len(), planned_colls);
        prop_assert!(planned_flops > 0.0);
        prop_assert!(r.runtime > 0.0);
    }

    /// Bit-identical reruns.
    #[test]
    fn determinism(ranks in 1usize..4, bands in 1usize..6, workers in 1usize..3) {
        let flops = [5e7f64, 2e7];
        let a = simulate(
            &programs(ranks, bands, workers, &flops),
            &KnlConfig::paper(),
            &ContentionModel::paper(),
            &CommModel::paper(),
        );
        let b = simulate(
            &programs(ranks, bands, workers, &flops),
            &KnlConfig::paper(),
            &ContentionModel::paper(),
            &CommModel::paper(),
        );
        prop_assert_eq!(a.runtime, b.runtime);
        prop_assert_eq!(a.trace.compute.len(), b.trace.compute.len());
    }

    /// More expensive communication can never make the simulated run
    /// faster.
    #[test]
    fn comm_cost_monotonicity(ranks in 2usize..5, bands in 1usize..6, beta_div in 1u32..8) {
        let flops = [3e7f64];
        let progs = programs(ranks, bands, 2, &flops);
        let m = quiet();
        let cheap = CommModel::paper();
        let expensive = CommModel {
            beta: cheap.beta / beta_div as f64,
            alpha: cheap.alpha * beta_div as f64,
            ..cheap
        };
        let fast = simulate(&progs, &KnlConfig::paper(), &m, &cheap);
        let slow = simulate(&progs, &KnlConfig::paper(), &m, &expensive);
        prop_assert!(
            slow.runtime >= fast.runtime - 1e-12,
            "more expensive comm made the run faster: {} < {}",
            slow.runtime,
            fast.runtime
        );
    }

    /// Adding workers never slows a rank down (work conservation with a
    /// contention-free node).
    #[test]
    fn workers_monotonicity(bands in 2usize..8) {
        let flops = [4e7f64, 1e7];
        let m = ContentionModel::uncontended();
        let one = simulate(
            &programs(1, bands, 1, &flops),
            &KnlConfig::paper(),
            &m,
            &CommModel::paper(),
        );
        let four = simulate(
            &programs(1, bands, 4, &flops),
            &KnlConfig::paper(),
            &m,
            &CommModel::paper(),
        );
        prop_assert!(four.runtime <= one.runtime + 1e-12);
    }

    /// Trace timestamps are well-formed: every record has t_end >= t_start
    /// and lies within [0, runtime].
    #[test]
    fn trace_timestamps_are_sane(ranks in 1usize..4, bands in 1usize..5) {
        let r = simulate(
            &programs(ranks, bands, 2, &[2e7]),
            &KnlConfig::paper(),
            &ContentionModel::paper(),
            &CommModel::paper(),
        );
        for c in &r.trace.compute {
            prop_assert!(c.t_end >= c.t_start);
            prop_assert!(c.t_start >= 0.0 && c.t_end <= r.runtime + 1e-9);
            prop_assert!(c.instructions > 0.0 && c.cycles > 0.0);
        }
        for c in &r.trace.comm {
            prop_assert!(c.t_end >= c.t_start);
            prop_assert!(c.t_end <= r.runtime + 1e-9);
        }
        for t in &r.trace.tasks {
            prop_assert!(t.t_end >= t.t_start);
        }
    }
}
