//! fftx-fault: deterministic, seeded fault injection.
//!
//! The substrate underneath the miniapp — `fftx-vmpi`'s shared-memory
//! transport and `fftx-taskrt`'s worker pool — is exercised by tests and
//! benches on a perfectly reliable "network". This crate supplies the
//! opposite: a chaos engine that injects message delay, reordering,
//! duplication, and bounded drop (always followed by a retransmit, so the
//! transport stays lossless) into the virtual MPI layer, plus rank-stall /
//! straggler plans for both the real engines and the KNL discrete-event
//! simulator. The [`corrupt`-module profiles](CorruptionConfig) add the
//! *silent* end of the spectrum — bit flips, stuck lanes, wire payload
//! corruption — that the integrity layer must detect rather than observe.
//!
//! Everything is **deterministic**: every decision is a pure function of
//! `(seed, site, per-site counter)` where a *site* identifies a logical
//! channel (communicator, src, dst, tag). Thread scheduling never feeds
//! back into decisions, so one seed reproduces one fault schedule exactly
//! — the property the chaos-determinism proptests pin down.

mod chaos;
mod corrupt;
mod fatal;
mod plan;

pub use chaos::{ChaosConfig, ChaosEngine, FaultEvent, FaultKind, FaultReport, MessagePlan, StallConfig};
pub use corrupt::{BitFlip, CorruptionConfig, PayloadCorrupt, Strike, StuckLane};
pub use fatal::{
    BatchAborts, NodeDeath, Partition, RankDeath, RecoveryConfig, SlowNode, TaskCrashes,
};
pub use plan::{BandSpikes, FaultPlan};

/// splitmix64 finalizer: the workspace's standard bit mixer. Public so the
/// synthetic traffic generator (`fftx-serve`) draws its arrival and
/// workload streams from the same deterministic primitive as the fault
/// schedules.
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps 64 random bits to a uniform f64 in `[0, 1)`.
pub fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}
