//! The chaos engine: seeded, per-site deterministic fault decisions.

use crate::corrupt::{PayloadCorrupt, Strike};
use crate::{mix64, unit_f64};
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Duration;

/// What to inject and how often. Probabilities are per message; the
/// default config injects nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Seed of the fault schedule. Two runs with equal config produce the
    /// identical schedule.
    pub seed: u64,
    /// Probability that a message's delivery is delayed.
    pub p_delay: f64,
    /// Upper bound of an injected delivery delay.
    pub max_delay: Duration,
    /// Probability that a message is duplicated on the wire (the transport
    /// discards the copy by sequence number).
    pub p_duplicate: f64,
    /// Probability that a transmission attempt is dropped. Drops are
    /// bounded: after at most [`ChaosConfig::max_drops`] attempts the
    /// retransmit goes through, so no payload is ever lost.
    pub p_drop: f64,
    /// Bound on consecutive drops of one message.
    pub max_drops: u32,
    /// Latency charged per dropped attempt (the retransmit timeout).
    pub retry_backoff: Duration,
    /// Probability that a message is reordered on the wire (the transport
    /// restores order by sequence number and records the event).
    pub p_reorder: f64,
    /// Probability that a message is **permanently lost** — never enqueued,
    /// never retransmitted. Unlike every other knob this one is *fatal*:
    /// the receiver's watchdog converts the missing message into a typed
    /// timeout that the recovery layer must handle. Default 0, and
    /// [`ChaosConfig::aggressive`] keeps it 0, preserving the
    /// lossless-by-construction invariant the chaos CI job relies on.
    pub p_loss: f64,
    /// Optional rank-stall / straggler injection.
    pub stall: Option<StallConfig>,
    /// Optional in-flight payload corruption. Like `p_loss` this breaks
    /// the lossless invariant on purpose — a corrupted chunk is only
    /// survivable because the checksummed exchange detects it — so the
    /// stock profiles (`light`, `aggressive`) keep it `None` and the
    /// chaos CI job stays byte-exact.
    pub corrupt: Option<PayloadCorrupt>,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0,
            p_delay: 0.0,
            max_delay: Duration::from_micros(500),
            p_duplicate: 0.0,
            p_drop: 0.0,
            max_drops: 2,
            retry_backoff: Duration::from_micros(200),
            p_reorder: 0.0,
            p_loss: 0.0,
            stall: None,
            corrupt: None,
        }
    }
}

impl ChaosConfig {
    /// A schedule injecting every fault class at moderate rates — the
    /// config the chaos test suites and the CI chaos job run under.
    pub fn aggressive(seed: u64) -> Self {
        ChaosConfig {
            seed,
            p_delay: 0.2,
            max_delay: Duration::from_micros(300),
            p_duplicate: 0.15,
            p_drop: 0.15,
            max_drops: 2,
            retry_backoff: Duration::from_micros(100),
            p_reorder: 0.25,
            p_loss: 0.0,
            stall: None,
            corrupt: None,
        }
    }

    /// The low-rate variant of [`ChaosConfig::aggressive`] — what
    /// `FFTX_CHAOS_PROFILE=light` selects, and the profile the serving
    /// path injects per batch (frequent enough to exercise the transport's
    /// fault handling, cheap enough to run on every served batch).
    pub fn light(seed: u64) -> Self {
        ChaosConfig {
            p_delay: 0.05,
            p_duplicate: 0.05,
            p_drop: 0.05,
            p_reorder: 0.1,
            ..ChaosConfig::aggressive(seed)
        }
    }

    /// Reads a config from `FFTX_CHAOS_SEED` (and optional
    /// `FFTX_CHAOS_PROFILE=off|light|aggressive`). Returns `None` when the
    /// seed variable is unset — the zero-overhead default.
    pub fn from_env() -> Option<Self> {
        let seed: u64 = std::env::var("FFTX_CHAOS_SEED").ok()?.parse().ok()?;
        match std::env::var("FFTX_CHAOS_PROFILE").as_deref() {
            Ok("off") => None,
            Ok("light") => Some(ChaosConfig::light(seed)),
            _ => Some(ChaosConfig::aggressive(seed)),
        }
    }

    /// Adds a rank-stall spec.
    pub fn with_stall(mut self, stall: StallConfig) -> Self {
        self.stall = Some(stall);
        self
    }

    /// Enables permanent message loss at probability `p` per message.
    /// This breaks the lossless invariant on purpose; only recovery-aware
    /// callers should turn it on.
    pub fn with_loss(mut self, p: f64) -> Self {
        self.p_loss = p;
        self
    }

    /// Enables in-flight payload corruption under `profile`. Only callers
    /// running the checksummed exchange (which converts each strike into a
    /// typed `Integrity` error) should turn it on.
    pub fn with_corruption(mut self, profile: PayloadCorrupt) -> Self {
        self.corrupt = Some(profile);
        self
    }
}

/// Deterministic rank-stall injection: the selected ranks pause for
/// `pause` before every `every`-th collective they enter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallConfig {
    /// Bitmask of stalled world ranks (bit r = rank r; ranks ≥ 64 are
    /// never stalled).
    pub rank_mask: u64,
    /// Stall duration.
    pub pause: Duration,
    /// Stall before every `every`-th collective entry (1 = all).
    pub every: u32,
}

impl StallConfig {
    /// Stalls `rank` before every `every`-th collective by `pause`.
    pub fn rank(rank: usize, pause: Duration, every: u32) -> Self {
        StallConfig {
            rank_mask: if rank < 64 { 1 << rank } else { 0 },
            pause,
            every: every.max(1),
        }
    }

    fn applies(&self, rank: usize) -> bool {
        rank < 64 && self.rank_mask & (1 << rank) != 0
    }
}

/// The fault classes the engine injects or the transport observes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A transmission attempt was dropped (and later retransmitted).
    Drop,
    /// Delivery of a message was delayed.
    Delay,
    /// A message was duplicated on the wire.
    Duplicate,
    /// A message was reordered on the wire.
    Reorder,
    /// A duplicate copy was discarded by the receiving transport.
    DuplicateDiscarded,
    /// A rank stalled before a collective (straggler).
    Stall,
    /// A message was permanently lost (fatal: no retransmit ever arrives;
    /// the receiver's watchdog surfaces a typed timeout).
    Loss,
    /// A collective payload chunk was corrupted in flight (silent: only
    /// the checksummed exchange can surface it, as a typed
    /// `Integrity` error at unpack).
    Corrupt,
}

/// One injected fault, in decision order per site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    /// Fault class.
    pub kind: FaultKind,
    /// Communicator id (or `u64::MAX` for non-communicator sites).
    pub comm: u64,
    /// Source rank of the affected message (sender-local index), or the
    /// stalled rank for [`FaultKind::Stall`].
    pub src: usize,
    /// Destination rank, or `usize::MAX` when not applicable.
    pub dst: usize,
    /// Message tag (or collective counter for stalls).
    pub tag: u64,
    /// Per-site sequence number of the affected message.
    pub seq: u64,
}

/// Summary of an engine's activity (cheap to compare in tests).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Injected events, in per-site decision order (globally sorted).
    pub events: Vec<FaultEvent>,
    /// Observed delivery order: `(comm, src, dst, tag, seq)` per received
    /// message, in per-site order (globally sorted).
    pub deliveries: Vec<(u64, usize, usize, u64, u64)>,
}

impl FaultReport {
    /// Number of events of `kind`.
    pub fn count(&self, kind: FaultKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }
}

/// The wire-level plan for one message: decided once at send time, purely
/// from `(seed, site, seq)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessagePlan {
    /// Per-site sequence number stamped on the message.
    pub seq: u64,
    /// How many transmission attempts are dropped before one goes through.
    pub drops: u32,
    /// Injected delivery delay.
    pub delay: Option<Duration>,
    /// Whether a duplicate copy is enqueued.
    pub duplicate: bool,
    /// Whether the message jumps the queue (transport restores order).
    pub reorder: bool,
    /// Whether the message is permanently lost (fatal — the transport must
    /// not enqueue it at all).
    pub lost: bool,
}

impl MessagePlan {
    /// A clean transmission (no faults), stamping `seq`.
    pub fn clean(seq: u64) -> Self {
        MessagePlan {
            seq,
            drops: 0,
            delay: None,
            duplicate: false,
            reorder: false,
            lost: false,
        }
    }

    /// Total injected latency for this message (drop retries + delay).
    pub fn latency(&self, cfg: &ChaosConfig) -> Duration {
        cfg.retry_backoff * self.drops + self.delay.unwrap_or(Duration::ZERO)
    }
}

/// Site key of a p2p channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Site {
    comm: u64,
    src: usize,
    dst: usize,
    tag: u64,
}

#[derive(Default)]
struct EngineState {
    /// Per-site send counters (the `seq` source).
    send_seq: HashMap<Site, u64>,
    /// Per-rank collective entry counters (stall schedule).
    coll_count: HashMap<usize, u64>,
    /// Injected + observed events.
    events: Vec<FaultEvent>,
    /// Observed delivery order.
    deliveries: Vec<(u64, usize, usize, u64, u64)>,
}

/// Seeded fault-decision engine. Shared (`Arc`) between all ranks of a
/// world; interior mutability keeps per-site counters.
pub struct ChaosEngine {
    cfg: ChaosConfig,
    state: Mutex<EngineState>,
}

impl ChaosEngine {
    /// An engine executing `cfg`'s schedule.
    pub fn new(cfg: ChaosConfig) -> Self {
        ChaosEngine {
            cfg,
            state: Mutex::new(EngineState::default()),
        }
    }

    /// The active config.
    pub fn config(&self) -> &ChaosConfig {
        &self.cfg
    }

    /// Locks the shared state, recovering from mutex poison: the engine is
    /// consulted from worker threads that fault injection deliberately
    /// panics, and a panic mid-decision must not amplify into a
    /// poisoned-lock panic on every surviving rank's next call. Every
    /// critical section completes its update before releasing the guard,
    /// so a recovered view is always internally consistent.
    fn state(&self) -> std::sync::MutexGuard<'_, EngineState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Hash of `(seed, site, seq, salt)` — the only randomness source.
    fn decision_bits(&self, site: Site, seq: u64, salt: u64) -> u64 {
        let mut h = self.cfg.seed;
        h = mix64(h ^ site.comm);
        h = mix64(h ^ (site.src as u64).wrapping_mul(0x9E37_79B9));
        h = mix64(h ^ (site.dst as u64).wrapping_mul(0x85EB_CA6B));
        h = mix64(h ^ site.tag);
        h = mix64(h ^ seq);
        mix64(h ^ salt)
    }

    /// Decides the wire plan for the next message on `(comm, src, dst,
    /// tag)`. Deterministic: the n-th call for one site always returns the
    /// same plan, regardless of thread interleaving across sites.
    pub fn plan_message(&self, comm: u64, src: usize, dst: usize, tag: u64) -> MessagePlan {
        let site = Site { comm, src, dst, tag };
        let mut st = self.state();
        let seq = {
            let c = st.send_seq.entry(site).or_insert(0);
            let s = *c;
            *c += 1;
            s
        };
        let mut plan = MessagePlan::clean(seq);
        if unit_f64(self.decision_bits(site, seq, 7)) < self.cfg.p_loss {
            // Fatal loss: no other fault class matters for this message —
            // it never reaches the wire.
            plan.lost = true;
            st.events.push(FaultEvent {
                kind: FaultKind::Loss,
                comm,
                src,
                dst,
                tag,
                seq,
            });
            return plan;
        }
        if unit_f64(self.decision_bits(site, seq, 1)) < self.cfg.p_drop {
            let extra = self.decision_bits(site, seq, 2) % u64::from(self.cfg.max_drops.max(1));
            plan.drops = 1 + extra as u32;
            for _ in 0..plan.drops {
                st.events.push(FaultEvent {
                    kind: FaultKind::Drop,
                    comm,
                    src,
                    dst,
                    tag,
                    seq,
                });
            }
        }
        if unit_f64(self.decision_bits(site, seq, 3)) < self.cfg.p_delay {
            let span = self.cfg.max_delay.as_nanos().max(1) as u64;
            let d = Duration::from_nanos(1 + self.decision_bits(site, seq, 4) % span);
            plan.delay = Some(d);
            st.events.push(FaultEvent {
                kind: FaultKind::Delay,
                comm,
                src,
                dst,
                tag,
                seq,
            });
        }
        if unit_f64(self.decision_bits(site, seq, 5)) < self.cfg.p_duplicate {
            plan.duplicate = true;
            st.events.push(FaultEvent {
                kind: FaultKind::Duplicate,
                comm,
                src,
                dst,
                tag,
                seq,
            });
        }
        if seq > 0 && unit_f64(self.decision_bits(site, seq, 6)) < self.cfg.p_reorder {
            plan.reorder = true;
            st.events.push(FaultEvent {
                kind: FaultKind::Reorder,
                comm,
                src,
                dst,
                tag,
                seq,
            });
        }
        plan
    }

    /// Corruption decision for one collective payload chunk: the chunk
    /// rank `src` staged for peer `dst` in collective `(comm, tag, seq)`.
    /// `Some(strike)` means the wire mangles one bit of the chunk after
    /// the sender's checksum was computed — pure in `(seed, site, seq)`,
    /// like every other decision here.
    pub fn plan_chunk_corruption(
        &self,
        comm: u64,
        src: usize,
        dst: usize,
        tag: u64,
        seq: u64,
    ) -> Option<Strike> {
        let profile = self.cfg.corrupt?;
        let site = Site { comm, src, dst, tag };
        let strike = profile.strike(self.decision_bits(site, seq, 8))?;
        self.state().events.push(FaultEvent {
            kind: FaultKind::Corrupt,
            comm,
            src,
            dst,
            tag,
            seq,
        });
        Some(strike)
    }

    /// Called by the transport when it discards a duplicate copy.
    pub fn note_duplicate_discarded(&self, comm: u64, src: usize, dst: usize, tag: u64, seq: u64) {
        self.state().events.push(FaultEvent {
            kind: FaultKind::DuplicateDiscarded,
            comm,
            src,
            dst,
            tag,
            seq,
        });
    }

    /// Called by the transport on every accepted delivery; builds the
    /// observable delivery-order log.
    pub fn note_delivery(&self, comm: u64, src: usize, dst: usize, tag: u64, seq: u64) {
        self.state
            .lock()
            .unwrap()
            .deliveries
            .push((comm, src, dst, tag, seq));
    }

    /// Stall decision for `rank`'s next collective entry: `Some(pause)`
    /// when the rank is configured as a straggler and this entry is due.
    pub fn stall_before_collective(&self, rank: usize) -> Option<Duration> {
        let stall = self.cfg.stall?;
        if !stall.applies(rank) {
            return None;
        }
        let mut st = self.state();
        let c = st.coll_count.entry(rank).or_insert(0);
        let n = *c;
        *c += 1;
        if n.is_multiple_of(u64::from(stall.every)) {
            st.events.push(FaultEvent {
                kind: FaultKind::Stall,
                comm: u64::MAX,
                src: rank,
                dst: usize::MAX,
                tag: n,
                seq: n,
            });
            Some(stall.pause)
        } else {
            None
        }
    }

    /// Snapshot of everything injected and observed so far. Event and
    /// delivery logs are sorted into a canonical order (they are recorded
    /// under thread interleaving, but per-site subsequences are
    /// deterministic — sorting makes the whole report comparable across
    /// runs).
    pub fn report(&self) -> FaultReport {
        let st = self.state();
        let mut events = st.events.clone();
        events.sort_by_key(|e| (e.comm, e.src, e.dst, e.tag, e.seq, e.kind as u8));
        let mut deliveries = st.deliveries.clone();
        deliveries.sort_unstable();
        FaultReport { events, deliveries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sites() -> Vec<(u64, usize, usize, u64)> {
        vec![(1, 0, 1, 7), (1, 1, 0, 7), (2, 0, 3, 0), (1, 0, 1, 8)]
    }

    #[test]
    fn same_seed_same_schedule() {
        let a = ChaosEngine::new(ChaosConfig::aggressive(42));
        let b = ChaosEngine::new(ChaosConfig::aggressive(42));
        for (c, s, d, t) in sites().into_iter().cycle().take(400) {
            assert_eq!(a.plan_message(c, s, d, t), b.plan_message(c, s, d, t));
        }
        assert_eq!(a.report(), b.report());
    }

    #[test]
    fn schedule_is_interleaving_independent() {
        // Same per-site message counts, different global arrival order:
        // per-site plans must match.
        let a = ChaosEngine::new(ChaosConfig::aggressive(7));
        let b = ChaosEngine::new(ChaosConfig::aggressive(7));
        let mut pa = Vec::new();
        for (c, s, d, t) in sites().into_iter().cycle().take(40) {
            pa.push(((c, s, d, t), a.plan_message(c, s, d, t)));
        }
        let mut pb = Vec::new();
        for (c, s, d, t) in sites().into_iter().rev().cycle().take(40) {
            pb.push(((c, s, d, t), b.plan_message(c, s, d, t)));
        }
        pa.sort_by_key(|(k, p)| (*k, p.seq));
        pb.sort_by_key(|(k, p)| (*k, p.seq));
        assert_eq!(pa, pb);
    }

    #[test]
    fn different_seeds_differ() {
        let a = ChaosEngine::new(ChaosConfig::aggressive(1));
        let b = ChaosEngine::new(ChaosConfig::aggressive(2));
        let plans_a: Vec<_> = (0..200).map(|i| a.plan_message(1, 0, 1, i % 5)).collect();
        let plans_b: Vec<_> = (0..200).map(|i| b.plan_message(1, 0, 1, i % 5)).collect();
        assert_ne!(plans_a, plans_b);
    }

    #[test]
    fn default_config_injects_nothing() {
        let e = ChaosEngine::new(ChaosConfig {
            seed: 99,
            ..ChaosConfig::default()
        });
        for i in 0..500 {
            let p = e.plan_message(1, 0, 1, i % 3);
            assert_eq!(p.drops, 0);
            assert_eq!(p.delay, None);
            assert!(!p.duplicate && !p.reorder);
        }
        assert!(e.report().events.is_empty());
    }

    #[test]
    fn drops_are_bounded() {
        let cfg = ChaosConfig {
            seed: 3,
            p_drop: 1.0,
            max_drops: 3,
            ..ChaosConfig::default()
        };
        let e = ChaosEngine::new(cfg);
        for i in 0..100 {
            let p = e.plan_message(4, 1, 2, i);
            assert!(p.drops >= 1 && p.drops <= 3, "drops {}", p.drops);
        }
    }

    #[test]
    fn stall_schedule_hits_only_configured_rank() {
        let cfg = ChaosConfig::default()
            .with_stall(StallConfig::rank(2, Duration::from_millis(1), 3));
        let e = ChaosEngine::new(ChaosConfig { seed: 1, ..cfg });
        assert!(e.stall_before_collective(0).is_none());
        // Entries 0, 3, 6, ... stall.
        let hits: Vec<bool> = (0..7).map(|_| e.stall_before_collective(2).is_some()).collect();
        assert_eq!(hits, vec![true, false, false, true, false, false, true]);
        assert_eq!(e.report().count(FaultKind::Stall), 3);
    }

    #[test]
    fn loss_is_opt_in_and_deterministic() {
        // aggressive() must stay lossless — the chaos CI job depends on it.
        assert_eq!(ChaosConfig::aggressive(5).p_loss, 0.0);
        let cfg = ChaosConfig {
            seed: 11,
            ..ChaosConfig::default()
        }
        .with_loss(0.3);
        let a = ChaosEngine::new(cfg);
        let b = ChaosEngine::new(cfg);
        let mut lost = 0;
        for i in 0..200 {
            let pa = a.plan_message(1, 0, 1, i % 4);
            assert_eq!(pa, b.plan_message(1, 0, 1, i % 4));
            if pa.lost {
                lost += 1;
                // A lost message carries no other fault decisions.
                assert_eq!(pa.drops, 0);
                assert!(!pa.duplicate && !pa.reorder && pa.delay.is_none());
            }
        }
        assert!(lost > 0, "p_loss=0.3 over 200 messages must lose some");
        assert_eq!(a.report().count(FaultKind::Loss), lost);
    }

    #[test]
    fn chunk_corruption_is_opt_in_deterministic_and_reported() {
        // Stock profiles stay corruption-free — the chaos CI job depends
        // on byte-exact results under `aggressive`.
        assert_eq!(ChaosConfig::aggressive(5).corrupt, None);
        assert_eq!(ChaosConfig::light(5).corrupt, None);
        let off = ChaosEngine::new(ChaosConfig::aggressive(5));
        assert_eq!(off.plan_chunk_corruption(1, 0, 1, 7, 0), None);

        let cfg = ChaosConfig {
            seed: 13,
            ..ChaosConfig::default()
        }
        .with_corruption(crate::PayloadCorrupt::new(13, 0.4));
        let a = ChaosEngine::new(cfg);
        let b = ChaosEngine::new(cfg);
        let mut hit = 0;
        for seq in 0..100 {
            for (src, dst) in [(0, 1), (1, 0), (0, 2)] {
                let s = a.plan_chunk_corruption(1, src, dst, 7, seq);
                assert_eq!(s, b.plan_chunk_corruption(1, src, dst, 7, seq), "pure");
                hit += usize::from(s.is_some());
            }
        }
        assert!(hit > 0, "p=0.4 over 300 chunks must strike some");
        assert_eq!(a.report().count(FaultKind::Corrupt), hit);
    }

    #[test]
    fn seq_numbers_are_per_site() {
        let e = ChaosEngine::new(ChaosConfig::default());
        assert_eq!(e.plan_message(1, 0, 1, 0).seq, 0);
        assert_eq!(e.plan_message(1, 0, 1, 0).seq, 1);
        assert_eq!(e.plan_message(1, 0, 2, 0).seq, 0);
        assert_eq!(e.plan_message(1, 0, 1, 9).seq, 0);
    }
}
