//! Silent-data-corruption profiles: seeded bit flips, stuck SIMD lanes,
//! and in-flight payload corruption.
//!
//! PR 1/2's fault spectrum is entirely *fail-stop*: crashes, timeouts,
//! deaths — faults that announce themselves. This module supplies the
//! faults that don't: a cosmic-ray bit flip in an arena buffer, a vector
//! lane stuck at zero on one degraded core, a payload word mangled on the
//! wire between pack and unpack. None of these raise an error on their
//! own; the integrity layer (vmpi exchange checksums + core's ABFT
//! verification) exists to *detect* them and convert each into the same
//! typed error path a fail-stop fault takes, so the existing recovery
//! machinery (rollback, recompute, eviction) can heal them.
//!
//! Every decision is a pure function of `(seed, logical key, attempt)`,
//! mirroring [`fatal`](crate): purity is what lets a replayed batch reach
//! the identical verdict on every rank, and what lets the bench count
//! injected strikes exactly. Transient profiles ([`BitFlip`],
//! [`PayloadCorrupt`]) bound their strikes per key, so a bounded
//! rollback/recompute budget provably clears them; [`StuckLane`] is
//! deliberately *persistent* per rank — the profile recovery cannot
//! out-replay, forcing the eviction escalation.

use crate::{mix64, unit_f64};

/// One planned corruption: which word of a buffer, which bit of the word.
///
/// `index_bits` is raw hash entropy; callers reduce it modulo the actual
/// buffer length via [`Strike::index`], so one strike plan applies to any
/// buffer size without re-hashing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Strike {
    /// Hash entropy selecting the struck word (reduce via [`Strike::index`]).
    pub index_bits: u64,
    /// The bit to flip within the struck 64-bit word (0–63).
    pub bit: u32,
}

impl Strike {
    /// The struck element index in a buffer of `len` elements.
    pub fn index(&self, len: usize) -> usize {
        if len == 0 {
            0
        } else {
            (self.index_bits % len as u64) as usize
        }
    }

    /// Flips the planned bit of one `f64` in place. Returns the struck
    /// index, or `None` on an empty buffer.
    pub fn flip_f64(&self, buf: &mut [f64]) -> Option<usize> {
        if buf.is_empty() {
            return None;
        }
        let i = self.index(buf.len());
        buf[i] = f64::from_bits(buf[i].to_bits() ^ (1u64 << (self.bit % 64)));
        Some(i)
    }
}

/// Deterministic transient bit-flip plan over arena buffers: decides how
/// many executions of the buffer keyed `key` get one bit flipped before a
/// replay is allowed to run clean — the corruption analogue of
/// [`BatchAborts`](crate::BatchAborts), and bounded the same way so the
/// rollback budget provably clears it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BitFlip {
    /// Seed of the flip schedule.
    pub seed: u64,
    /// Probability that a given buffer key is struck at all.
    pub p_flip: f64,
    /// Upper bound on consecutive struck executions of one key.
    pub max_strikes: u32,
}

impl BitFlip {
    /// A plan striking roughly `p_flip` of all keys, each at most
    /// `max_strikes` consecutive executions.
    pub fn new(seed: u64, p_flip: f64, max_strikes: u32) -> Self {
        BitFlip {
            seed,
            p_flip,
            max_strikes: max_strikes.max(1),
        }
    }

    /// How many executions of `key` are struck before one runs clean —
    /// pure in `(seed, key)`.
    pub fn strikes_for(&self, key: u64) -> u32 {
        let h = mix64(self.seed ^ mix64(key ^ 0xC3A5_9D17_4B6E_F208));
        if unit_f64(h) < self.p_flip {
            1 + (mix64(h) % u64::from(self.max_strikes)) as u32
        } else {
            0
        }
    }

    /// The strike for execution `attempt` (0-based) of `key`, or `None`
    /// when that attempt runs clean — pure in `(seed, key, attempt)`.
    pub fn strike(&self, key: u64, attempt: u32) -> Option<Strike> {
        if attempt >= self.strikes_for(key) {
            return None;
        }
        let h = mix64(self.seed ^ mix64(key ^ 0x7E19_A4C2_D58B_3F61) ^ u64::from(attempt));
        Some(Strike {
            index_bits: h,
            bit: (mix64(h) % 64) as u32,
        })
    }
}

/// Deterministic *persistent* corruption: a vector lane of one rank's FFT
/// unit is stuck at zero (a degraded AVX-512 lane). Pure in `(seed, rank)`
/// and independent of attempt — replaying a batch on the same rank strikes
/// again, every time. This is the profile the rollback budget cannot
/// clear; detection must escalate to evicting the flaky rank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StuckLane {
    /// Seed of the stuck-lane schedule.
    pub seed: u64,
    /// Probability that a given rank has a stuck lane at all.
    pub p_stuck: f64,
    /// Vector width: lane `l` strikes elements `l, l+width, l+2·width, …`.
    pub width: u32,
}

impl StuckLane {
    /// A plan sticking roughly `p_stuck` of all ranks, with vector width
    /// `width` (8 = the KNL AVX-512 f64 width).
    pub fn new(seed: u64, p_stuck: f64, width: u32) -> Self {
        StuckLane {
            seed,
            p_stuck,
            width: width.max(1),
        }
    }

    /// The stuck lane of `rank` (`0..width`), or `None` for a healthy rank
    /// — pure in `(seed, rank)`.
    pub fn lane_of(&self, rank: u64) -> Option<u32> {
        let h = mix64(self.seed ^ mix64(rank ^ 0x58D2_E7B9_F013_6CA4));
        if unit_f64(h) < self.p_stuck {
            Some((mix64(h) % u64::from(self.width)) as u32)
        } else {
            None
        }
    }

    /// Applies `rank`'s stuck lane to `buf` (elements of the lane forced
    /// to zero). Returns the number of elements struck (0 for a healthy
    /// rank or an empty buffer).
    pub fn apply(&self, rank: u64, buf: &mut [f64]) -> usize {
        let Some(lane) = self.lane_of(rank) else {
            return 0;
        };
        let mut struck = 0;
        let mut i = lane as usize;
        while i < buf.len() {
            if buf[i] != 0.0 {
                buf[i] = 0.0;
                struck += 1;
            }
            i += self.width as usize;
        }
        struck
    }
}

/// Deterministic in-flight payload corruption: a collective chunk's word
/// is mangled on the wire *after* the sender computed its checksum and
/// *before* the receiver verifies it. Memoryless per key (the transport's
/// per-site sequence counters advance on replay, so a replayed exchange
/// draws a fresh decision) and rate-bounded, so recovery converges.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PayloadCorrupt {
    /// Seed of the corruption schedule.
    pub seed: u64,
    /// Probability that a given chunk key is corrupted.
    pub p_corrupt: f64,
}

impl PayloadCorrupt {
    /// A plan corrupting roughly `p_corrupt` of all chunk keys.
    pub fn new(seed: u64, p_corrupt: f64) -> Self {
        PayloadCorrupt { seed, p_corrupt }
    }

    /// The strike for chunk `key`, or `None` when it travels clean —
    /// pure in `(seed, key)`.
    pub fn strike(&self, key: u64) -> Option<Strike> {
        let h = mix64(self.seed ^ mix64(key ^ 0x2F8C_61D5_A9E4_0B73));
        if unit_f64(h) < self.p_corrupt {
            let s = mix64(h);
            Some(Strike {
                index_bits: s,
                bit: (mix64(s) % 64) as u32,
            })
        } else {
            None
        }
    }
}

/// The bundled corruption schedule one run executes under: any subset of
/// the three profiles, composable with every existing chaos/death profile
/// (they draw from disjoint salt chains, so enabling one never perturbs
/// another's schedule).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CorruptionConfig {
    /// Transient arena-buffer bit flips.
    pub bitflip: Option<BitFlip>,
    /// Persistent per-rank stuck lanes.
    pub stuck: Option<StuckLane>,
    /// In-flight collective payload corruption.
    pub payload: Option<PayloadCorrupt>,
}

impl CorruptionConfig {
    /// No corruption (the zero-overhead default).
    pub fn off() -> Self {
        CorruptionConfig::default()
    }

    /// Transient corruption only — bit flips in arena buffers plus wire
    /// payload corruption at `rate`, both bounded, both clearable by the
    /// rollback/recompute budget.
    pub fn transient(seed: u64, rate: f64) -> Self {
        CorruptionConfig {
            bitflip: Some(BitFlip::new(seed, rate, 2)),
            stuck: None,
            payload: Some(PayloadCorrupt::new(mix64(seed ^ 0x9E37), rate)),
        }
    }

    /// Persistent corruption — roughly `p_stuck` of ranks carry a stuck
    /// AVX-512 lane that strikes on every attempt. Only rank eviction
    /// clears this profile.
    pub fn sticky(seed: u64, p_stuck: f64) -> Self {
        CorruptionConfig {
            bitflip: None,
            stuck: Some(StuckLane::new(seed, p_stuck, 8)),
            payload: None,
        }
    }

    /// Whether any profile is active.
    pub fn is_active(&self) -> bool {
        self.bitflip.is_some() || self.stuck.is_some() || self.payload.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitflip_is_pure_bounded_and_transient() {
        let p = BitFlip::new(42, 0.5, 2);
        let mut struck = 0;
        for key in 0..200 {
            let n = p.strikes_for(key);
            assert_eq!(n, p.strikes_for(key), "pure in (seed, key)");
            assert!(n <= 2);
            if n > 0 {
                struck += 1;
                assert!(p.strike(key, 0).is_some());
                assert_eq!(p.strike(key, n), None, "attempt n runs clean");
                // Consecutive attempts draw distinct strikes.
                if n == 2 {
                    assert_ne!(p.strike(key, 0), p.strike(key, 1));
                }
            } else {
                assert_eq!(p.strike(key, 0), None);
            }
        }
        assert!(struck > 50 && struck < 150, "~half the keys: {struck}");
        assert!((0..50).all(|k| BitFlip::new(42, 0.0, 2).strike(k, 0).is_none()));
    }

    #[test]
    fn strike_flips_exactly_one_bit() {
        let p = BitFlip::new(7, 1.0, 1);
        let mut buf = vec![1.0f64; 64];
        let strike = p.strike(3, 0).expect("p=1 strikes");
        let i = strike.flip_f64(&mut buf).expect("non-empty");
        assert!(i < buf.len());
        let diff: Vec<usize> = (0..buf.len()).filter(|&j| buf[j] != 1.0).collect();
        assert_eq!(diff, vec![i], "exactly one word changed");
        assert_eq!(
            (buf[i].to_bits() ^ 1.0f64.to_bits()).count_ones(),
            1,
            "exactly one bit of it"
        );
        // Flipping again restores the original.
        strike.flip_f64(&mut buf);
        assert!(buf.iter().all(|&x| x == 1.0));
        assert_eq!(strike.flip_f64(&mut []), None);
    }

    #[test]
    fn stuck_lane_is_pure_persistent_and_lane_shaped() {
        let p = StuckLane::new(11, 0.5, 8);
        let mut stuck_ranks = 0;
        for rank in 0..200 {
            let l = p.lane_of(rank);
            assert_eq!(l, p.lane_of(rank), "pure in (seed, rank)");
            if let Some(l) = l {
                stuck_ranks += 1;
                assert!(l < 8);
            }
        }
        assert!(stuck_ranks > 50 && stuck_ranks < 150, "~half: {stuck_ranks}");

        let rank = (0..200).find(|&r| p.lane_of(r).is_some()).expect("some rank sticks");
        let lane = p.lane_of(rank).expect("stuck") as usize;
        let mut buf = vec![1.0f64; 37];
        let n = p.apply(rank, &mut buf);
        assert!(n > 0, "persistent profile strikes every attempt");
        assert_eq!(n, p.apply(rank, &mut vec![1.0f64; 37]), "same strike on replay");
        for (i, &x) in buf.iter().enumerate() {
            if i % 8 == lane {
                assert_eq!(x, 0.0, "lane element {i} stuck at zero");
            } else {
                assert_eq!(x, 1.0, "off-lane element {i} untouched");
            }
        }
        let healthy = (0..200).find(|&r| p.lane_of(r).is_none()).expect("some rank healthy");
        assert_eq!(p.apply(healthy, &mut buf), 0);
    }

    #[test]
    fn payload_corruption_is_pure_and_rate_bounded() {
        let p = PayloadCorrupt::new(3, 0.5);
        let mut hit = 0;
        for key in 0..200 {
            let s = p.strike(key);
            assert_eq!(s, p.strike(key), "pure in (seed, key)");
            if let Some(s) = s {
                hit += 1;
                assert!(s.bit < 64);
            }
        }
        assert!(hit > 50 && hit < 150, "~half the keys: {hit}");
        assert!((0..50).all(|k| PayloadCorrupt::new(3, 0.0).strike(k).is_none()));
        // Different seeds give different schedules.
        let q = PayloadCorrupt::new(4, 0.5);
        assert!((0..200).any(|k| p.strike(k) != q.strike(k)));
    }

    #[test]
    fn config_presets_compose_expected_profiles() {
        assert!(!CorruptionConfig::off().is_active());
        let t = CorruptionConfig::transient(9, 0.3);
        assert!(t.is_active() && t.bitflip.is_some() && t.payload.is_some() && t.stuck.is_none());
        let s = CorruptionConfig::sticky(9, 0.5);
        assert!(s.is_active() && s.stuck.is_some() && s.bitflip.is_none());
        // Profiles draw from disjoint salt chains: the transient preset's
        // bitflip schedule is independent of whether payload is enabled.
        let t2 = CorruptionConfig {
            payload: None,
            ..CorruptionConfig::transient(9, 0.3)
        };
        assert_eq!(t.bitflip, t2.bitflip);
    }
}
