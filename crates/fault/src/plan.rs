//! Straggler plans for the KNL discrete-event simulator.
//!
//! Unlike the wall-clock chaos engine, the simulator wants *virtual-time*
//! faults: a plan that inflates selected compute segments. Two knobs:
//!
//! * **Rank slowdown** — a constant multiplier on every compute segment of
//!   a simulated rank (a chronically slow node: thermal throttling, a
//!   noisy neighbour).
//! * **Band spikes** — a fixed extra latency added to one step of every
//!   `every`-th band, *whichever rank and mode executes it*. Because the
//!   spiked work items are identified by the band/step noise key shared by
//!   all mode lowerings, the injected severity is matched across modes by
//!   construction — the property the resilience experiment's comparison
//!   rests on.

/// Spikes on band work items: step `ordinal` of every `every`-th band
/// takes `extra_seconds` longer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandSpikes {
    /// Spike bands `0, every, 2*every, ...`.
    pub every: usize,
    /// Which step of the band chain spikes (the `nkey` ordinal; the core
    /// chain uses 10..=18, `13` is the inverse xy-FFT).
    pub ordinal: u64,
    /// Extra virtual seconds per spiked segment.
    pub extra_seconds: f64,
}

/// A deterministic fault plan for one simulation. [`FaultPlan::none`] (the
/// `Default`) injects nothing and costs one branch per segment.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// `(rank, factor)` pairs: every compute segment on `rank` takes
    /// `factor`× as long (`factor > 1` = straggler).
    pub slow_ranks: Vec<(usize, f64)>,
    /// Optional band-keyed latency spikes.
    pub band_spikes: Option<BandSpikes>,
}

impl FaultPlan {
    /// The empty plan.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan slowing a single rank by `factor`.
    pub fn slow_rank(rank: usize, factor: f64) -> Self {
        FaultPlan {
            slow_ranks: vec![(rank, factor)],
            band_spikes: None,
        }
    }

    /// A plan spiking step `ordinal` of every `every`-th band by
    /// `extra_seconds`.
    pub fn spikes(every: usize, ordinal: u64, extra_seconds: f64) -> Self {
        FaultPlan {
            slow_ranks: Vec::new(),
            band_spikes: Some(BandSpikes {
                every: every.max(1),
                ordinal,
                extra_seconds,
            }),
        }
    }

    /// Whether the plan injects anything at all.
    pub fn is_active(&self) -> bool {
        !self.slow_ranks.is_empty() || self.band_spikes.is_some()
    }

    /// Duration multiplier for compute segments on `rank` (1.0 = clean).
    pub fn rank_factor(&self, rank: usize) -> f64 {
        self.slow_ranks
            .iter()
            .find(|(r, _)| *r == rank)
            .map(|(_, f)| *f)
            .unwrap_or(1.0)
    }

    /// Extra virtual seconds for the compute segment with `noise_key`
    /// (`u64::MAX` = unkeyed, never spiked). The key encodes
    /// `band * 64 + ordinal` — the convention of the model lowering.
    pub fn spike_extra(&self, noise_key: u64) -> f64 {
        let Some(s) = self.band_spikes else { return 0.0 };
        if noise_key == u64::MAX {
            return 0.0;
        }
        let (band, ordinal) = (noise_key / 64, noise_key % 64);
        if ordinal == s.ordinal && band.is_multiple_of(s.every as u64) {
            s.extra_seconds
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_clean() {
        let p = FaultPlan::none();
        assert!(!p.is_active());
        assert_eq!(p.rank_factor(0), 1.0);
        assert_eq!(p.spike_extra(13), 0.0);
        assert_eq!(p.spike_extra(u64::MAX), 0.0);
    }

    #[test]
    fn slow_rank_only_affects_that_rank() {
        let p = FaultPlan::slow_rank(3, 2.5);
        assert!(p.is_active());
        assert_eq!(p.rank_factor(3), 2.5);
        assert_eq!(p.rank_factor(2), 1.0);
    }

    #[test]
    fn spikes_hit_every_nth_band_at_one_ordinal() {
        let p = FaultPlan::spikes(4, 13, 0.25);
        // band 0, ordinal 13.
        assert_eq!(p.spike_extra(13), 0.25);
        // band 0, other ordinal.
        assert_eq!(p.spike_extra(14), 0.0);
        // band 4, ordinal 13.
        assert_eq!(p.spike_extra(4 * 64 + 13), 0.25);
        // band 5, ordinal 13.
        assert_eq!(p.spike_extra(5 * 64 + 13), 0.0);
        // unkeyed.
        assert_eq!(p.spike_extra(u64::MAX), 0.0);
    }
}
