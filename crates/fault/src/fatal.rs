//! Fatal-fault profiles and recovery knobs.
//!
//! PR 1's chaos engine is lossless by construction — it perturbs timing,
//! never outcomes. This module supplies the opposite end of the spectrum:
//! deterministic plans for *fatal* events that the recovery layer has to
//! survive — a task body crashing, a band batch aborting mid-flight, a
//! rank dying at a batch boundary.
//!
//! Every decision is a pure function of `(seed, logical key, attempt)` and
//! **never** of rank identity, thread scheduling, or wall time. That purity
//! carries the recovery layer's consistency argument: when a fault keyed by
//! band or batch fires, every rank evaluates the identical plan, reaches
//! the identical retry/rollback decision, and the per-communicator
//! collective sequence counters stay aligned across replays without any
//! agreement protocol. (A production runtime would run a watchdog-agreement
//! round here; the deterministic plan is the stand-in that keeps the
//! experiment reproducible — see DESIGN.md §11.)

use crate::{mix64, unit_f64};
use std::time::Duration;

/// Deterministic task-crash plan: decides how many times the task keyed by
/// `key` panics before its body is allowed to succeed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskCrashes {
    /// Seed of the crash schedule.
    pub seed: u64,
    /// Probability that a given task key crashes at all.
    pub p_crash: f64,
    /// Upper bound on consecutive crashes of one task. Recovery succeeds
    /// iff this stays within the retry budget.
    pub max_crashes: u32,
}

impl TaskCrashes {
    /// A plan crashing roughly `p_crash` of all task keys, each at most
    /// `max_crashes` times.
    pub fn new(seed: u64, p_crash: f64, max_crashes: u32) -> Self {
        TaskCrashes {
            seed,
            p_crash,
            max_crashes: max_crashes.max(1),
        }
    }

    /// How many attempts of the task keyed `key` crash before one succeeds
    /// — pure in `(seed, key)`.
    pub fn crashes_for(&self, key: u64) -> u32 {
        let h = mix64(self.seed ^ mix64(key ^ 0xA5F1_52C8_9D3B_7E41));
        if unit_f64(h) < self.p_crash {
            1 + (mix64(h) % u64::from(self.max_crashes)) as u32
        } else {
            0
        }
    }

    /// Whether attempt `attempt` (0-based) of task `key` should crash.
    pub fn should_crash(&self, key: u64, attempt: u32) -> bool {
        attempt < self.crashes_for(key)
    }
}

/// Deterministic batch-abort plan: decides how many executions of band
/// batch `batch` fail mid-flight before a replay is allowed to complete.
/// The recovery engine converts each planned abort into the same typed
/// error path a real collective timeout takes, then rolls the batch back
/// to its checkpoint and replays it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchAborts {
    /// Seed of the abort schedule.
    pub seed: u64,
    /// Probability that a given batch aborts at all.
    pub p_abort: f64,
    /// Upper bound on consecutive aborts of one batch. Recovery succeeds
    /// iff this stays within the rollback budget.
    pub max_aborts: u32,
}

impl BatchAborts {
    /// A plan aborting roughly `p_abort` of all batches, each at most
    /// `max_aborts` times.
    pub fn new(seed: u64, p_abort: f64, max_aborts: u32) -> Self {
        BatchAborts {
            seed,
            p_abort,
            max_aborts: max_aborts.max(1),
        }
    }

    /// How many executions of `batch` abort before one completes — pure in
    /// `(seed, batch)`.
    pub fn aborts_for(&self, batch: u64) -> u32 {
        let h = mix64(self.seed ^ mix64(batch ^ 0x1B56_C4E9_A92D_F30C));
        if unit_f64(h) < self.p_abort {
            1 + (mix64(h) % u64::from(self.max_aborts)) as u32
        } else {
            0
        }
    }

    /// Whether execution `attempt` (0-based) of `batch` should abort.
    pub fn should_abort(&self, batch: u64, attempt: u32) -> bool {
        attempt < self.aborts_for(batch)
    }
}

/// A rank declared dead by the watchdog at a batch boundary: before
/// starting `batch`, rank `rank` stops participating and the survivors
/// evict it, shrink the world, and re-plan the layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankDeath {
    /// The world rank that dies.
    pub rank: usize,
    /// The batch index at whose boundary it dies.
    pub batch: usize,
}

impl RankDeath {
    /// Rank `rank` dies at the boundary of batch `batch`.
    pub fn at(rank: usize, batch: usize) -> Self {
        RankDeath { rank, batch }
    }
}

/// Deterministic node-death plan for a serving fleet: decides, per shard,
/// whether (and when, as a fraction of the run horizon) the whole node
/// dies. A dead node stops heartbeating and executing; the supervisor
/// detects the silence and replays the victim's journaled incomplete jobs
/// onto the survivors.
///
/// Pure in `(seed, shard)`, so every observer — the shard simulation, the
/// supervisor, a journal replay — reaches the identical verdict with no
/// agreement protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeDeath {
    /// Seed of the death schedule.
    pub seed: u64,
    /// Probability that a given shard dies during the run.
    pub p_death: f64,
}

impl NodeDeath {
    /// A plan killing roughly `p_death` of all shards.
    pub fn new(seed: u64, p_death: f64) -> Self {
        NodeDeath { seed, p_death }
    }

    /// When shard `shard` dies, as a fraction of the run horizon in
    /// `[0.2, 0.8)` (deaths land mid-run so there is work to fail over),
    /// or `None` if it survives — pure in `(seed, shard)`.
    pub fn death_fraction(&self, shard: u64) -> Option<f64> {
        let h = mix64(self.seed ^ mix64(shard ^ 0x6E0D_EDEA_7511_34B7));
        if unit_f64(h) < self.p_death {
            Some(0.2 + 0.6 * unit_f64(mix64(h)))
        } else {
            None
        }
    }

    /// Absolute death time on a `horizon_s`-second run.
    pub fn death_time(&self, shard: u64, horizon_s: f64) -> Option<f64> {
        self.death_fraction(shard).map(|f| f * horizon_s)
    }
}

/// Deterministic slow-node plan: a shard may run every batch slower by a
/// bounded factor (thermal throttling, a noisy neighbour, a degraded DIMM).
/// Pure in `(seed, shard)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlowNode {
    /// Seed of the slowdown schedule.
    pub seed: u64,
    /// Probability that a given shard is slow at all.
    pub p_slow: f64,
    /// Largest slowdown factor (a slow shard draws from `(1, max_factor]`).
    pub max_factor: f64,
}

impl SlowNode {
    /// A plan slowing roughly `p_slow` of all shards by up to `max_factor`.
    pub fn new(seed: u64, p_slow: f64, max_factor: f64) -> Self {
        SlowNode {
            seed,
            p_slow,
            max_factor: max_factor.max(1.0),
        }
    }

    /// The service-time multiplier of shard `shard` (1.0 = healthy) —
    /// pure in `(seed, shard)`.
    pub fn factor(&self, shard: u64) -> f64 {
        let h = mix64(self.seed ^ mix64(shard ^ 0x51ED_BA1A_2C87_F96D));
        if unit_f64(h) < self.p_slow {
            1.0 + (self.max_factor - 1.0) * unit_f64(mix64(h)).max(0.25)
        } else {
            1.0
        }
    }
}

/// Deterministic network-partition plan: a shard may become unreachable
/// for one bounded window (heartbeats are lost, routing avoids it) while
/// staying alive — work it already holds keeps executing and completes.
/// Pure in `(seed, shard)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Partition {
    /// Seed of the partition schedule.
    pub seed: u64,
    /// Probability that a given shard is partitioned at all.
    pub p_partition: f64,
    /// Window length as a fraction of the run horizon.
    pub window_fraction: f64,
}

impl Partition {
    /// A plan partitioning roughly `p_partition` of all shards for
    /// `window_fraction` of the horizon.
    pub fn new(seed: u64, p_partition: f64, window_fraction: f64) -> Self {
        Partition {
            seed,
            p_partition,
            window_fraction: window_fraction.clamp(0.0, 1.0),
        }
    }

    /// The partition window of shard `shard` as horizon fractions
    /// `[start, end)`, or `None` — pure in `(seed, shard)`.
    pub fn window_fraction_of(&self, shard: u64) -> Option<(f64, f64)> {
        let h = mix64(self.seed ^ mix64(shard ^ 0x9A2F_70B3_C4D8_115E));
        if unit_f64(h) < self.p_partition {
            let start = 0.15 + 0.5 * unit_f64(mix64(h));
            Some((start, (start + self.window_fraction).min(1.0)))
        } else {
            None
        }
    }

    /// Whether shard `shard` is unreachable at time `t_s` of a
    /// `horizon_s`-second run.
    pub fn cut_at(&self, shard: u64, t_s: f64, horizon_s: f64) -> bool {
        match self.window_fraction_of(shard) {
            Some((a, b)) => {
                let f = t_s / horizon_s;
                f >= a && f < b
            }
            None => false,
        }
    }
}

/// Budgets and preferences of the recovery layer, settable through
/// `FFTX_RECOVERY_*` environment knobs (see README).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryConfig {
    /// Task re-execution budget: a panicking task is retried at most this
    /// many times before escalating to `TaskError`.
    pub max_retries: u32,
    /// Base of the bounded exponential retry backoff.
    pub base_backoff: Duration,
    /// Cap of the retry backoff (`min(base · 2^attempt, max)`).
    pub max_backoff: Duration,
    /// Rollback budget: a band batch is replayed from its checkpoint at
    /// most this many times before the error escalates.
    pub max_rollbacks: u32,
    /// Preferred task-group width T when re-factorising R×T over the
    /// survivors after a rank eviction (the largest divisor of the
    /// surviving rank count ≤ this is chosen).
    pub prefer_t: usize,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            max_retries: 3,
            base_backoff: Duration::from_micros(50),
            max_backoff: Duration::from_millis(2),
            max_rollbacks: 4,
            prefer_t: 2,
        }
    }
}

impl RecoveryConfig {
    /// Reads the config from the `FFTX_RECOVERY_*` environment knobs,
    /// falling back to the defaults for unset or unparsable values:
    /// `FFTX_RECOVERY_MAX_RETRIES`, `FFTX_RECOVERY_BACKOFF_US`,
    /// `FFTX_RECOVERY_MAX_BACKOFF_US`, `FFTX_RECOVERY_MAX_ROLLBACKS`,
    /// `FFTX_RECOVERY_PREFER_T`.
    pub fn from_env() -> Self {
        Self::from_lookup(|k| std::env::var(k).ok())
    }

    /// Same as [`RecoveryConfig::from_env`] with an injectable variable
    /// source (tests use this to avoid mutating the process environment).
    pub fn from_lookup(get: impl Fn(&str) -> Option<String>) -> Self {
        fn parse<T: std::str::FromStr>(v: Option<String>, default: T) -> T {
            v.and_then(|s| s.parse().ok()).unwrap_or(default)
        }
        let d = RecoveryConfig::default();
        RecoveryConfig {
            max_retries: parse(get("FFTX_RECOVERY_MAX_RETRIES"), d.max_retries),
            base_backoff: Duration::from_micros(parse(
                get("FFTX_RECOVERY_BACKOFF_US"),
                d.base_backoff.as_micros() as u64,
            )),
            max_backoff: Duration::from_micros(parse(
                get("FFTX_RECOVERY_MAX_BACKOFF_US"),
                d.max_backoff.as_micros() as u64,
            )),
            max_rollbacks: parse(get("FFTX_RECOVERY_MAX_ROLLBACKS"), d.max_rollbacks),
            prefer_t: parse(get("FFTX_RECOVERY_PREFER_T"), d.prefer_t),
        }
    }

    /// The bounded exponential backoff before retry `attempt` (0-based).
    pub fn backoff(&self, attempt: u32) -> Duration {
        let factor = 1u32.checked_shl(attempt).unwrap_or(u32::MAX);
        self.base_backoff
            .saturating_mul(factor)
            .min(self.max_backoff)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_plan_is_pure_and_bounded() {
        let p = TaskCrashes::new(42, 0.5, 3);
        let mut crashed = 0;
        for key in 0..200 {
            let n = p.crashes_for(key);
            assert_eq!(n, p.crashes_for(key), "pure in (seed, key)");
            assert!(n <= 3);
            if n > 0 {
                crashed += 1;
                assert!(p.should_crash(key, 0));
                assert!(!p.should_crash(key, n));
            } else {
                assert!(!p.should_crash(key, 0));
            }
        }
        assert!(crashed > 50 && crashed < 150, "~half the keys: {crashed}");
        // Different seeds give different schedules.
        let q = TaskCrashes::new(43, 0.5, 3);
        assert!((0..200).any(|k| p.crashes_for(k) != q.crashes_for(k)));
    }

    #[test]
    fn abort_plan_is_pure_and_bounded() {
        let p = BatchAborts::new(7, 1.0, 2);
        for batch in 0..50 {
            let n = p.aborts_for(batch);
            assert!((1..=2).contains(&n), "p=1 must abort every batch");
            assert!(p.should_abort(batch, 0));
            assert!(!p.should_abort(batch, n));
        }
        let none = BatchAborts::new(7, 0.0, 2);
        assert!((0..50).all(|b| none.aborts_for(b) == 0));
    }

    #[test]
    fn node_death_is_pure_bounded_and_mid_run() {
        let p = NodeDeath::new(11, 0.5);
        let mut died = 0;
        for shard in 0..200 {
            let f = p.death_fraction(shard);
            assert_eq!(f, p.death_fraction(shard), "pure in (seed, shard)");
            if let Some(f) = f {
                died += 1;
                assert!((0.2..0.8).contains(&f), "mid-run death: {f}");
                let t = p.death_time(shard, 10.0).unwrap();
                assert!((f * 10.0 - t).abs() < 1e-12);
            }
        }
        assert!(died > 50 && died < 150, "~half the shards: {died}");
        let none = NodeDeath::new(11, 0.0);
        assert!((0..50).all(|s| none.death_fraction(s).is_none()));
    }

    #[test]
    fn slow_node_factor_is_pure_and_bounded() {
        let p = SlowNode::new(3, 0.5, 4.0);
        let mut slowed = 0;
        for shard in 0..200 {
            let f = p.factor(shard);
            assert_eq!(f, p.factor(shard));
            assert!((1.0..=4.0).contains(&f));
            if f > 1.0 {
                slowed += 1;
            }
        }
        assert!(slowed > 50 && slowed < 150, "~half the shards: {slowed}");
        assert_eq!(SlowNode::new(3, 0.0, 4.0).factor(0), 1.0);
    }

    #[test]
    fn partition_windows_are_pure_and_bounded() {
        let p = Partition::new(9, 1.0, 0.2);
        for shard in 0..50 {
            let (a, b) = p.window_fraction_of(shard).expect("p=1 partitions all");
            assert!(a >= 0.15 && b <= 1.0 && b > a);
            assert!((b - a) <= 0.2 + 1e-12);
            // cut_at matches the window on a 10-second horizon.
            assert!(p.cut_at(shard, (a + 1e-9) * 10.0, 10.0));
            assert!(!p.cut_at(shard, (b + 1e-9) * 10.0, 10.0));
            assert!(!p.cut_at(shard, 0.0, 10.0));
        }
        let none = Partition::new(9, 0.0, 0.2);
        assert!((0..50).all(|s| none.window_fraction_of(s).is_none()));
    }

    #[test]
    fn recovery_config_parses_knobs_and_defaults() {
        let d = RecoveryConfig::from_lookup(|_| None);
        assert_eq!(d, RecoveryConfig::default());

        let c = RecoveryConfig::from_lookup(|k| match k {
            "FFTX_RECOVERY_MAX_RETRIES" => Some("5".into()),
            "FFTX_RECOVERY_BACKOFF_US" => Some("10".into()),
            "FFTX_RECOVERY_MAX_BACKOFF_US" => Some("80".into()),
            "FFTX_RECOVERY_MAX_ROLLBACKS" => Some("9".into()),
            "FFTX_RECOVERY_PREFER_T" => Some("4".into()),
            _ => None,
        });
        assert_eq!(c.max_retries, 5);
        assert_eq!(c.base_backoff, Duration::from_micros(10));
        assert_eq!(c.max_rollbacks, 9);
        assert_eq!(c.prefer_t, 4);

        // Unparsable values fall back rather than panic.
        let bad = RecoveryConfig::from_lookup(|_| Some("not a number".into()));
        assert_eq!(bad, RecoveryConfig::default());
    }

    #[test]
    fn backoff_is_bounded_exponential() {
        let c = RecoveryConfig {
            base_backoff: Duration::from_micros(50),
            max_backoff: Duration::from_micros(300),
            ..RecoveryConfig::default()
        };
        assert_eq!(c.backoff(0), Duration::from_micros(50));
        assert_eq!(c.backoff(1), Duration::from_micros(100));
        assert_eq!(c.backoff(2), Duration::from_micros(200));
        assert_eq!(c.backoff(3), Duration::from_micros(300), "capped");
        assert_eq!(c.backoff(40), Duration::from_micros(300), "no overflow");
    }
}
