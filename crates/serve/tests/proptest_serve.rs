//! Serving-layer properties (the ISSUE's satellite invariants):
//!
//! * batch coalescing is deterministic for a fixed seed,
//! * a batch never mixes geometry classes,
//! * per-tenant submission order is preserved end to end,
//! * a tuner decision replays bit-identically from its cached tables.

use fftx_core::{DecompChoice, Decomposition};
use fftx_serve::{
    generate, plan_batch, run_serve, BatchConfig, GeometryClass, LoadProfile, ServeConfig,
    TrafficConfig, Tuner, TunerConfig,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn traffic(seed: u64, profile: LoadProfile) -> TrafficConfig {
    TrafficConfig {
        seed,
        rate_hz: 120.0,
        duration_s: 1.0,
        tenants: 4,
        profile,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn coalescing_is_deterministic_for_a_fixed_seed(seed in 1u64..100_000) {
        for profile in LoadProfile::ALL {
            let queue = generate(&traffic(seed, profile));
            let cfg = BatchConfig::default();
            let a = plan_batch(&queue, &cfg);
            let b = plan_batch(&queue, &cfg);
            prop_assert_eq!(&a, &b);
            // And the full serving run replays identically.
            let ra = run_serve(&queue, &ServeConfig::default()).expect("serve");
            let rb = run_serve(&queue, &ServeConfig::default()).expect("serve");
            prop_assert_eq!(ra.jobs, rb.jobs);
            prop_assert_eq!(ra.batches, rb.batches);
            prop_assert_eq!(ra.shed, rb.shed);
        }
    }

    #[test]
    fn batches_never_mix_geometries(seed in 1u64..100_000, max_bands in 4usize..24) {
        let queue = generate(&traffic(seed, LoadProfile::Steady));
        let cfg = BatchConfig { max_bands, pad_to: 4 };
        let plan = plan_batch(&queue, &cfg);
        prop_assert!(!plan.is_empty());
        let class = queue[plan[0]].class;
        for &pos in &plan {
            prop_assert_eq!(queue[pos].class, class, "position {}", pos);
        }
        // The planner never exceeds capacity except for an oversized head.
        let bands: usize = plan.iter().map(|&p| queue[p].bands).sum();
        prop_assert!(bands <= max_bands || plan.len() == 1);
    }

    #[test]
    fn per_tenant_order_is_preserved(seed in 1u64..100_000) {
        let queue = generate(&traffic(seed, LoadProfile::Burst));
        let report = run_serve(&queue, &ServeConfig::default()).expect("serve");
        // Within a tenant, completions must happen in submission (id)
        // order: a later request never overtakes an earlier one.
        let mut last_id: BTreeMap<u32, u64> = BTreeMap::new();
        for j in &report.jobs {
            if let Some(&prev) = last_id.get(&j.request.tenant) {
                prop_assert!(
                    j.request.id > prev,
                    "tenant {}: id {} completed after id {}",
                    j.request.tenant, prev, j.request.id
                );
            }
            last_id.insert(j.request.tenant, j.request.id);
        }
        // Conservation: every request is either served or shed, never both.
        prop_assert_eq!(report.jobs.len() + report.shed.len(), queue.len());
    }

    #[test]
    fn tuner_cached_decisions_replay_bit_identically(nbnd in 1usize..6) {
        let nbnd = nbnd * 4; // padded band counts, as the server produces
        let mut t = Tuner::new(TunerConfig::default());
        let first = t.decide(GeometryClass::Small, nbnd);
        // Replay from the warm cache, many times.
        for _ in 0..3 {
            prop_assert_eq!(&t.decide(GeometryClass::Small, nbnd), &first);
        }
        // A fresh tuner re-derives the identical decision from scratch.
        let mut u = Tuner::new(TunerConfig::default());
        prop_assert_eq!(&u.decide(GeometryClass::Small, nbnd), &first);
        // The dumped table is stable too.
        prop_assert_eq!(t.table_csv(), u.table_csv());
    }

    /// The auto decomposition choice prices a superset of every fixed
    /// choice's candidates, so its modeled decision is never worse — on
    /// the Bluestein (prime-grid) class included.
    #[test]
    fn auto_decomposition_never_loses_to_fixed(nbnd in 1usize..6) {
        let nbnd = nbnd * 4;
        for class in [GeometryClass::Small, GeometryClass::Prime] {
            let mut t = Tuner::new(TunerConfig::default());
            let auto = t.decide(class, nbnd).service_s;
            for d in Decomposition::ALL {
                let fixed = t.decide_decomp(class, nbnd, d).service_s;
                prop_assert!(
                    auto <= fixed + 1e-12,
                    "{} nbnd {}: auto {} worse than fixed {} ({})",
                    class.name(), nbnd, auto, fixed, d.name()
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Real execution end to end (admission → batching → placement →
    /// stage-graph engines) delivers bit-identical results whichever
    /// decomposition the server is pinned to; the sampled traffic mixes
    /// every geometry class, the Bluestein (z = 41) one included.
    #[test]
    fn serving_is_decomposition_invariant(seed in 1u64..100_000) {
        let queue: Vec<_> = generate(&traffic(seed, LoadProfile::Steady))
            .into_iter()
            .take(8)
            .collect();
        let run = |decomp| {
            run_serve(
                &queue,
                &ServeConfig { decomp, execute_real: true, ..Default::default() },
            )
            .expect("serve")
        };
        let slab = run(DecompChoice::Slab);
        let pencil = run(DecompChoice::Pencil);
        let hashes = |r: &fftx_serve::ServeReport| {
            let mut v: Vec<(u64, Option<u64>)> =
                r.jobs.iter().map(|j| (j.request.id, j.hash)).collect();
            v.sort_unstable();
            v
        };
        prop_assert!(!slab.jobs.is_empty());
        prop_assert_eq!(hashes(&slab), hashes(&pencil), "seed {}", seed);
    }
}
