//! End-to-end golden guarantees of the durable fleet:
//!
//! * a fleet-served request's result bands hash-match a direct
//!   `run_policy` run of the identical batch configuration — including
//!   Prime-geometry (Bluestein) requests, so the z = 41 path crosses the
//!   journal, the supervisor, and the placement tuner unchanged,
//! * crash recovery reproduces those hashes from the journal without
//!   re-executing the already-completed work,
//! * node death plus seeded transport chaos loses no accepted job and
//!   corrupts no result,
//! * an autoscaled, stealing fleet under that same fault stack scales up
//!   out of its floor, loses nothing, still hash-matches the direct
//!   engine, and recovers bit-identically from a mid-run crash.

use fftx_core::{run_policy, Decomposition, SchedulerPolicy};
use fftx_serve::{
    assemble, band_hash, class_problem, generate, resume_fleet, run_fleet, AutoscaleConfig,
    FleetConfig, FleetFaults, FleetReport, GeometryClass, Journal, LoadProfile, Placement, Record,
    Request, ServeChaos, ServeConfig, TrafficConfig,
};
use std::collections::BTreeMap;

const SEED: u64 = 20170814;

fn trace(rate_hz: f64) -> Vec<Request> {
    // The generator's default mix covers the composite-grid classes; remap
    // every fifth request to Prime so the z = 41 Bluestein path flows
    // through the fleet at serve scale too.
    let mut reqs = generate(&TrafficConfig {
        seed: SEED,
        rate_hz,
        duration_s: 1.0,
        tenants: 3,
        profile: LoadProfile::Steady,
    });
    for r in reqs.iter_mut().step_by(5) {
        r.class = GeometryClass::Prime;
        r.bands = r.bands.min(4);
    }
    reqs
}

fn real_cfg(faults: FleetFaults) -> FleetConfig {
    FleetConfig {
        shards: 3,
        serve: ServeConfig {
            execute_real: true,
            seed: SEED,
            ..Default::default()
        },
        horizon_s: 1.0,
        faults,
        ..Default::default()
    }
}

/// Direct-engine hash of every `(batch, job)` a fleet run formed, batch by
/// batch, reconstructed purely from the journal — the serving layer must
/// add no numerics on top of these.
fn direct_hashes(report: &FleetReport, cfg: &FleetConfig) -> BTreeMap<(u64, u64), u64> {
    let mut reqs: BTreeMap<u64, Request> = BTreeMap::new();
    let mut batches: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    let mut placements: BTreeMap<u64, Placement> = BTreeMap::new();
    for rec in report.journal.records() {
        match rec {
            Record::Accepted { req, .. } => {
                reqs.insert(req.id, *req);
            }
            Record::Batched { batch, jobs, .. } => {
                batches.insert(*batch, jobs.clone());
            }
            Record::Started {
                batch, nr, ntg, policy, decomp, ..
            } => {
                placements.insert(
                    *batch,
                    Placement {
                        nr: *nr,
                        ntg: *ntg,
                        policy: SchedulerPolicy::ALL[*policy],
                        decomp: Decomposition::ALL[*decomp],
                    },
                );
            }
            _ => {}
        }
    }
    let mut out = BTreeMap::new();
    for (batch, ids) in &batches {
        // Batches formed but never dispatched (their shard died first)
        // have no placement; their members complete elsewhere.
        let Some(p) = placements.get(batch) else { continue };
        let members: Vec<Request> = ids.iter().map(|id| reqs[id]).collect();
        let assembled = assemble(members, &cfg.serve.batch).expect("journaled batch assembles");
        let problem = class_problem(
            assembled.class,
            p.config(assembled.class, assembled.nbnd, cfg.serve.seed),
        );
        let direct = run_policy(&problem, p.policy);
        for m in &assembled.members {
            let h = band_hash(&direct.bands[m.band_start..m.band_start + m.request.bands]);
            out.insert((*batch, m.request.id), h);
        }
    }
    out
}

/// Every completed job's hash must match its direct-engine counterpart.
fn assert_hashes_match(report: &FleetReport, cfg: &FleetConfig) {
    let expect = direct_hashes(report, cfg);
    assert!(!report.jobs.is_empty());
    for j in &report.jobs {
        let want = expect
            .get(&(j.batch, j.request.id))
            .unwrap_or_else(|| panic!("job {} of batch {} has no direct hash", j.request.id, j.batch));
        assert_eq!(
            j.hash,
            Some(*want),
            "job {} (batch {}, class {})",
            j.request.id,
            j.batch,
            j.request.class.name()
        );
    }
}

#[test]
fn fleet_results_match_direct_engine_runs_including_bluestein() {
    let requests = trace(60.0);
    let cfg = real_cfg(FleetFaults::default());
    let report = run_fleet(&requests, &cfg).expect("fleet");
    assert!(report.conservation.open.is_empty());
    assert_eq!(report.offered(), requests.len());
    // The pinned trace must exercise the Bluestein path at serve scale:
    // Prime-class requests (z = 41) flow through admission, batching,
    // placement, and real execution like any other geometry.
    let prime = report
        .jobs
        .iter()
        .filter(|j| j.request.class == GeometryClass::Prime)
        .count();
    assert!(prime >= 1, "trace produced no Prime-class completions");
    assert_hashes_match(&report, &cfg);
}

#[test]
fn fleet_replay_reproduces_real_hashes_from_the_journal() {
    let requests = trace(40.0);
    let cfg = real_cfg(FleetFaults {
        seed: 3,
        p_death: 0.6,
        ..Default::default()
    });
    let full = run_fleet(&requests, &cfg).expect("fleet");
    assert!(full.counters.get("fleet.shard_down") >= 1, "a shard must die");

    // Crash at the journal's midpoint and recover.
    let cut = full.journal.len() / 2;
    let mut prefix = Journal::new();
    for rec in &full.journal.records()[..cut] {
        prefix.append(rec.clone());
    }
    let resumed = resume_fleet(&prefix, &requests, &cfg).expect("resume");

    // Byte-identical journal, direct-matching hashes — and the prefix's
    // hashes came from the journal, not from re-execution.
    assert_eq!(resumed.journal.encode(), full.journal.encode());
    assert_hashes_match(&resumed, &cfg);
    assert!(
        resumed.counters.get("fleet.exec.batch") < full.counters.get("fleet.exec.batch"),
        "replay re-executed work the journal already recorded"
    );
}

#[test]
fn node_death_with_transport_chaos_loses_nothing() {
    let requests = trace(80.0);
    let mut cfg = real_cfg(FleetFaults {
        seed: 3,
        p_death: 0.6,
        ..Default::default()
    });
    cfg.serve.chaos = Some(ServeChaos {
        seed: SEED,
        evict_batch: None,
        corrupt_per_mille: 0,
    });
    let report = run_fleet(&requests, &cfg).expect("fleet");
    assert!(report.counters.get("fleet.shard_down") >= 1, "a shard must die");
    assert!(report.counters.get("fleet.failover.jobs") >= 1, "jobs must re-route");
    // Zero loss: the conservation audit accounts every accepted job.
    assert!(report.conservation.open.is_empty());
    assert_eq!(report.conservation.accepted, report.conservation.completed);
    assert_eq!(report.offered(), requests.len());
    // ... and chaos cost time, never answers.
    assert_hashes_match(&report, &cfg);
}

#[test]
fn autoscaled_fleet_under_chaos_and_node_death_stays_golden() {
    // The full capacity stack at once: a 4-shard pool starting at its
    // 1-shard floor, work stealing on, transport chaos, and a fatal fault
    // profile — the flash-crowd-meets-bad-day scenario.
    let requests = trace(100.0);
    let mut cfg = real_cfg(FleetFaults {
        seed: 3,
        p_death: 0.6,
        ..Default::default()
    });
    cfg.shards = 4;
    cfg.autoscale = Some(AutoscaleConfig { min: 1, max: 4, ..Default::default() });
    cfg.steal = true;
    cfg.serve.chaos = Some(ServeChaos {
        seed: SEED,
        evict_batch: None,
        corrupt_per_mille: 0,
    });
    let report = run_fleet(&requests, &cfg).expect("fleet");

    // The fleet must actually scale out of its floor and lose a shard.
    assert!(report.counters.get("fleet.scale.up") >= 1, "the fleet must scale up");
    assert!(report.counters.get("fleet.shard_down") >= 1, "a shard must die");
    // Zero loss across scale events, steals, chaos, and death.
    assert!(report.conservation.open.is_empty());
    assert_eq!(report.conservation.accepted, report.conservation.completed);
    assert_eq!(report.offered(), requests.len());
    assert_eq!(report.conservation.steals as u64, report.counters.get("fleet.steal"));
    // Results still match the direct engine batch for batch.
    assert_hashes_match(&report, &cfg);

    // Crash at the midpoint — inside the scale/steal window — and the
    // recovered journal is byte-identical without re-executing the prefix.
    let cut = report.journal.len() / 2;
    let mut prefix = Journal::new();
    for rec in &report.journal.records()[..cut] {
        prefix.append(rec.clone());
    }
    let resumed = resume_fleet(&prefix, &requests, &cfg).expect("resume");
    assert_eq!(resumed.journal.encode(), report.journal.encode());
    assert_hashes_match(&resumed, &cfg);
}
