//! End-to-end golden guarantees of the serving subsystem:
//!
//! * a served request's result bands hash-match a direct `run_policy` run
//!   of the identical configuration (the serving layer adds no numerics),
//! * a chaos-seeded serving run completes every accepted job with
//!   unchanged hashes (recovery costs time, never answers),
//! * the eviction demo re-plans a dying rank's work and still matches.

use fftx_serve::{
    band_hash, class_problem, generate, run_serve, DeadlineClass, GeometryClass, LoadProfile,
    PlacementMode, Request, ServeChaos, ServeConfig, TrafficConfig,
};
use fftx_core::{run_policy, DecompChoice, Decomposition};

fn trace(n: usize) -> Vec<fftx_serve::Request> {
    generate(&TrafficConfig {
        seed: 20170814,
        rate_hz: 60.0,
        duration_s: 1.5,
        tenants: 3,
        profile: LoadProfile::Steady,
    })
    .into_iter()
    .take(n)
    .collect()
}

/// Direct-engine hashes of every job in a report, batch by batch.
fn direct_hashes(report: &fftx_serve::ServeReport, seed: u64) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    for batch in &report.batches {
        let p = batch.placement;
        let problem = class_problem(batch.class, p.config(batch.class, batch.nbnd, seed));
        let direct = run_policy(&problem, p.policy);
        let mut start = 0;
        for j in report.jobs.iter().filter(|j| j.batch == batch.index) {
            out.push((
                j.request.id,
                band_hash(&direct.bands[start..start + j.request.bands]),
            ));
            start += j.request.bands;
        }
    }
    out.sort_unstable();
    out
}

#[test]
fn served_results_match_direct_engine_runs() {
    for mode in [
        PlacementMode::Auto,
        PlacementMode::Static(fftx_core::SchedulerPolicy::Serial),
        PlacementMode::Static(fftx_core::SchedulerPolicy::TaskPerFft),
    ] {
        let cfg = ServeConfig {
            mode,
            execute_real: true,
            ..Default::default()
        };
        let report = run_serve(&trace(10), &cfg).expect("serve");
        assert!(!report.jobs.is_empty());
        let expect = direct_hashes(&report, cfg.seed);
        let mut got: Vec<(u64, u64)> = report
            .jobs
            .iter()
            .map(|j| (j.request.id, j.hash.expect("real run hashes")))
            .collect();
        got.sort_unstable();
        assert_eq!(got, expect, "mode {}", mode.name());
    }
}

#[test]
fn chaos_serving_completes_all_accepted_jobs_bit_identically() {
    let requests = trace(12);
    let clean = run_serve(
        &requests,
        &ServeConfig {
            execute_real: true,
            ..Default::default()
        },
    )
    .expect("serve");
    let chaotic = run_serve(
        &requests,
        &ServeConfig {
            chaos: Some(ServeChaos {
                seed: 0xFF7C,
                evict_batch: None,
                corrupt_per_mille: 0,
            }),
            ..Default::default()
        },
    )
    .expect("serve");
    // Zero lost accepted jobs: both runs complete the same request set.
    let ids = |r: &fftx_serve::ServeReport| {
        let mut v: Vec<u64> = r.jobs.iter().map(|j| j.request.id).collect();
        v.sort_unstable();
        v
    };
    assert_eq!(ids(&clean), ids(&chaotic));
    // ... with bit-identical results.
    for j in &chaotic.jobs {
        let c = clean
            .jobs
            .iter()
            .find(|x| x.request.id == j.request.id)
            .expect("same job set");
        assert_eq!(j.hash, c.hash, "request {}", j.request.id);
    }
}

/// Serve-scale Bluestein coverage: a trace of pure `Prime`-class jobs
/// (z = 41 grids, beyond the direct-radix limit) runs admission → batching
/// → placement → real execution under both fixed decompositions and the
/// auto choice, and all three deliver bit-identical results that also
/// match direct engine runs.
#[test]
fn prime_grid_serving_is_decomposition_invariant() {
    let requests: Vec<Request> = (0..6)
        .map(|id| Request {
            id,
            tenant: id as u32 % 2,
            class: GeometryClass::Prime,
            bands: 2 + id as usize % 2,
            deadline: DeadlineClass::Standard,
            arrival_s: 0.05 * id as f64,
        })
        .collect();
    let run = |decomp| {
        let cfg = ServeConfig {
            decomp,
            execute_real: true,
            ..Default::default()
        };
        run_serve(&requests, &cfg).expect("serve")
    };
    let slab = run(DecompChoice::Slab);
    let pencil = run(DecompChoice::Pencil);
    let auto = run(DecompChoice::Auto);
    let hashes = |r: &fftx_serve::ServeReport| {
        let mut v: Vec<(u64, u64)> = r
            .jobs
            .iter()
            .map(|j| (j.request.id, j.hash.expect("real run hashes")))
            .collect();
        v.sort_unstable();
        v
    };
    assert_eq!(slab.jobs.len(), requests.len(), "every job completes");
    assert_eq!(hashes(&slab), hashes(&pencil), "pencil serving diverged from slab");
    assert_eq!(hashes(&slab), hashes(&auto), "auto serving diverged from slab");
    // The fixed choices really pin every placement's lowering ...
    assert!(slab.batches.iter().all(|b| b.placement.decomp == Decomposition::Slab));
    assert!(pencil.batches.iter().all(|b| b.placement.decomp == Decomposition::Pencil));
    // ... and the pencil run's delivered bands match direct engine runs of
    // the identical (prime-grid, pencil-lowered) configurations.
    let expect = direct_hashes(&pencil, 42);
    assert_eq!(hashes(&pencil), expect);
}

#[test]
fn eviction_on_the_serving_path_matches_direct_hashes() {
    let requests = trace(6);
    let report = run_serve(
        &requests,
        &ServeConfig {
            chaos: Some(ServeChaos {
                seed: 9,
                evict_batch: Some(0),
                corrupt_per_mille: 0,
            }),
            ..Default::default()
        },
    )
    .expect("serve");
    let b0 = &report.batches[0];
    assert_eq!((b0.placement.nr, b0.placement.ntg), (7, 1));
    assert_eq!(b0.recovery.2, 1, "the rank death must be absorbed by eviction");
    // The evicted batch's results still match a direct (fault-free) run of
    // the same 7×1 configuration.
    let expect = direct_hashes(&report, 42);
    let mut got: Vec<(u64, u64)> = report
        .jobs
        .iter()
        .map(|j| (j.request.id, j.hash.expect("real run hashes")))
        .collect();
    got.sort_unstable();
    assert_eq!(got, expect);
}
