//! Fleet-capacity properties (ring, autoscaler, work stealing), swept
//! over random tenant populations, membership sequences, fault seeds, and
//! crash points:
//!
//! * bounded-load ring routing keeps the max/mean load ratio under the
//!   configured factor (plus one job of quantisation) for *any* key
//!   population and member set,
//! * membership changes move keys only onto the joiner (or off the
//!   leaver) — the minimal-movement property that makes resharding cheap,
//! * an elastic, stealing fleet is deterministic: the same seeds
//!   reproduce the journal byte for byte, and the conservation audit
//!   accounts every accepted job exactly once across scale and steal
//!   events,
//! * resuming that fleet from *any* record boundary — including cuts
//!   inside scale-up/scale-down/steal windows — is bit-identical.

use fftx_serve::{
    generate, load_bound, resume_fleet, run_fleet, AutoscaleConfig, FleetConfig, FleetFaults,
    HashRing, Journal, LoadProfile, RingConfig, TrafficConfig,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn ring(seed: u64, members: &[u32]) -> HashRing {
    let mut r = HashRing::new(RingConfig { seed, ..Default::default() });
    for &m in members {
        r.insert(m);
    }
    r
}

/// An elastic, stealing fleet under slow-node faults: the configuration
/// every journal property below sweeps. The slow factor is large enough
/// for service times to span ticks, so backlogs persist and steals fire.
fn elastic_cfg(shards: usize, min: usize, fault_seed: u64) -> FleetConfig {
    FleetConfig {
        shards,
        steal: true,
        autoscale: Some(AutoscaleConfig { min, max: shards, ..Default::default() }),
        faults: FleetFaults {
            seed: fault_seed,
            p_slow: 0.6,
            slow_max: 40.0,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn trace(seed: u64, tenants: u32) -> Vec<fftx_serve::Request> {
    generate(&TrafficConfig {
        seed,
        rate_hz: 200.0,
        duration_s: 1.0,
        tenants,
        profile: LoadProfile::Burst,
    })
}

fn prefix_of(journal: &Journal, cut: usize) -> Journal {
    let mut p = Journal::new();
    for rec in &journal.records()[..cut] {
        p.append(rec.clone());
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn bounded_routing_keeps_max_over_mean_under_the_factor(
        ring_seed in 0u64..100_000,
        members in 2usize..8,
        keys in 100usize..400,
        skew in 1u64..6,
    ) {
        let shards: Vec<u32> = (0..members as u32).collect();
        let r = ring(ring_seed, &shards);
        let factor = 1.25;
        let mut loads: BTreeMap<u32, usize> = BTreeMap::new();
        for i in 0..keys as u64 {
            // A skewed population: `skew` tenants hash-hot, so an unbounded
            // ring would pile their keys onto one arc.
            let key = i % skew;
            let total: usize = loads.values().sum();
            let bound = load_bound(total, members, factor);
            let s = r
                .route_bounded(key, bound, |s| loads.get(&s).copied().unwrap_or(0), |_| true)
                .expect("total routing");
            prop_assert!(r.contains(s));
            *loads.entry(s).or_default() += 1;
        }
        let max = *loads.values().max().unwrap() as f64;
        let mean = keys as f64 / members as f64;
        prop_assert!(
            max <= factor * mean + 1.0,
            "max {} vs mean {} over {} members (skew {})",
            max, mean, members, skew
        );
    }

    #[test]
    fn membership_changes_move_only_the_affected_keys(
        ring_seed in 0u64..100_000,
        members in 2usize..7,
        joiner in 100u32..200,
    ) {
        let shards: Vec<u32> = (0..members as u32).collect();
        let mut r = ring(ring_seed, &shards);
        let keys: Vec<u64> = (0..512).collect();
        let before: BTreeMap<u64, u32> =
            keys.iter().map(|&k| (k, r.route(k, |_| true).unwrap())).collect();

        // Join: every moved key lands on the joiner, nowhere else.
        r.insert(joiner);
        let mut moved = 0usize;
        for (&k, &home) in &before {
            let now = r.route(k, |_| true).unwrap();
            if now != home {
                prop_assert_eq!(now, joiner, "key {} moved off-joiner", k);
                moved += 1;
            }
        }
        prop_assert!(
            moved <= keys.len() / 2,
            "minimal movement: {}/{} keys moved on one join",
            moved, keys.len()
        );

        // Leave (the joiner again): only its keys move, the rest restore.
        r.remove(joiner);
        for (&k, &home) in &before {
            prop_assert_eq!(r.route(k, |_| true).unwrap(), home);
        }
    }

    #[test]
    fn elastic_stealing_fleet_is_deterministic_and_lossless(
        seed in 1u64..100_000,
        fault_seed in 0u64..1_000,
        shards in 3usize..5,
    ) {
        let reqs = trace(seed, 2);
        let cfg = elastic_cfg(shards, 1, fault_seed);
        let r = run_fleet(&reqs, &cfg).expect("fleet");
        // Zero loss across scale and steal events: accepted = completed.
        prop_assert!(r.conservation.open.is_empty());
        prop_assert_eq!(r.conservation.accepted, r.conservation.completed);
        prop_assert_eq!(r.offered(), reqs.len());
        // The steal ledger matches the counter: every steal is journaled.
        prop_assert_eq!(r.conservation.steals as u64, r.counters.get("fleet.steal"));
        // Same seeds, same journal — worker physics never leaks in.
        let again = run_fleet(&reqs, &cfg).expect("rerun");
        prop_assert_eq!(again.journal.encode(), r.journal.encode());
    }

    #[test]
    fn elastic_resume_from_any_cut_is_bit_identical(
        seed in 1u64..100_000,
        fault_seed in 0u64..1_000,
        cut_frac in 0.0f64..1.0,
    ) {
        let reqs = trace(seed, 3);
        let cfg = elastic_cfg(4, 1, fault_seed);
        let full = run_fleet(&reqs, &cfg).expect("fleet");
        let cut = ((full.journal.len() as f64) * cut_frac) as usize;
        let resumed =
            resume_fleet(&prefix_of(&full.journal, cut), &reqs, &cfg).expect("resume");
        prop_assert_eq!(
            resumed.journal.encode(),
            full.journal.encode(),
            "cut {} of {} (fault seed {})",
            cut, full.journal.len(), fault_seed
        );
        prop_assert_eq!(resumed.jobs, full.jobs);
    }
}
