//! Journal-replay properties of the durable fleet (modeled service, so
//! the space of fleets × fault seeds × crash points stays cheap to sweep):
//!
//! * resuming from a journal prefix cut at *any* record boundary
//!   reproduces the uninterrupted run's journal byte for byte,
//! * the conservation audit accounts every accepted job exactly once,
//!   whatever the fault profile did to the shards,
//! * a resume from the complete journal re-emits nothing (replay is
//!   idempotent),
//! * all of the above still hold with silent-corruption injection
//!   composed on top of transport chaos and shard death — and every
//!   corrupt batch the fleet delivers from is journaled as detected.

use fftx_core::SchedulerPolicy;
use fftx_serve::{
    generate, resume_fleet, run_fleet, FleetConfig, FleetFaults, Journal, LoadProfile,
    PlacementMode, ServeChaos, ServeConfig, TrafficConfig,
};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn cfg(shards: usize, fault_seed: u64) -> FleetConfig {
    FleetConfig {
        shards,
        serve: ServeConfig::default(),
        faults: FleetFaults {
            seed: fault_seed,
            p_death: 0.6,
            p_slow: 0.5,
            slow_max: 8.0,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn trace(seed: u64) -> Vec<fftx_serve::Request> {
    generate(&TrafficConfig {
        seed,
        rate_hz: 60.0,
        duration_s: 1.0,
        tenants: 3,
        profile: LoadProfile::Burst,
    })
}

fn prefix_of(journal: &Journal, cut: usize) -> Journal {
    let mut p = Journal::new();
    for rec in &journal.records()[..cut] {
        p.append(rec.clone());
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn resume_from_a_random_crash_point_is_bit_identical(
        seed in 1u64..100_000,
        fault_seed in 0u64..1_000,
        shards in 2usize..5,
        cut_frac in 0.0f64..1.0,
    ) {
        let reqs = trace(seed);
        let cfg = cfg(shards, fault_seed);
        let full = run_fleet(&reqs, &cfg).expect("uninterrupted fleet");
        let cut = ((full.journal.len() as f64) * cut_frac) as usize;
        let resumed =
            resume_fleet(&prefix_of(&full.journal, cut), &reqs, &cfg).expect("resume");
        prop_assert_eq!(
            resumed.journal.encode(),
            full.journal.encode(),
            "cut {} of {} (shards {}, fault seed {})",
            cut, full.journal.len(), shards, fault_seed
        );
    }

    #[test]
    fn every_accepted_job_is_accounted_exactly_once(
        seed in 1u64..100_000,
        fault_seed in 0u64..1_000,
        shards in 2usize..5,
    ) {
        let reqs = trace(seed);
        let r = run_fleet(&reqs, &cfg(shards, fault_seed)).expect("fleet");
        // The machine audit: accepted = completed (exactly once), none open.
        prop_assert!(r.conservation.open.is_empty());
        prop_assert_eq!(r.conservation.accepted, r.conservation.completed);
        prop_assert_eq!(r.offered(), reqs.len());
        // No job is served twice and none invented: completed ids are
        // unique and a subset of the offered trace.
        let offered: BTreeSet<u64> = reqs.iter().map(|q| q.id).collect();
        let mut seen = BTreeSet::new();
        for j in &r.jobs {
            prop_assert!(seen.insert(j.request.id), "job {} served twice", j.request.id);
            prop_assert!(offered.contains(&j.request.id));
        }
        prop_assert_eq!(seen.len() + r.shed.len(), reqs.len());
    }

    #[test]
    fn corruption_composed_with_chaos_and_death_stays_lossless_and_replayable(
        seed in 1u64..100_000,
        fault_seed in 0u64..1_000,
        corrupt_idx in 0usize..2,
        cut_frac in 0.0f64..1.0,
    ) {
        let corrupt_per_mille = [250u32, 1000][corrupt_idx];
        // Real execution under the full fault stack: seeded bit-flip
        // corruption (ABFT-verified), light transport chaos, shard death
        // and slowdown — all at once.
        let reqs = generate(&TrafficConfig {
            seed,
            rate_hz: 25.0,
            duration_s: 1.0,
            tenants: 2,
            profile: LoadProfile::Steady,
        });
        let cfg = FleetConfig {
            shards: 3,
            serve: ServeConfig {
                mode: PlacementMode::Static(SchedulerPolicy::Serial),
                chaos: Some(ServeChaos {
                    seed: fault_seed ^ 0xC0DE,
                    evict_batch: None,
                    corrupt_per_mille,
                }),
                ..Default::default()
            },
            faults: FleetFaults {
                seed: fault_seed,
                p_death: 0.4,
                p_slow: 0.3,
                slow_max: 4.0,
                ..Default::default()
            },
            ..Default::default()
        };
        let full = run_fleet(&reqs, &cfg).expect("fleet under composed faults");
        // Determinism: the same seeds reproduce the journal byte for byte.
        let again = run_fleet(&reqs, &cfg).expect("rerun");
        prop_assert_eq!(again.journal.encode(), full.journal.encode());
        // Zero loss: every accepted job completes exactly once.
        prop_assert!(full.conservation.open.is_empty());
        prop_assert_eq!(full.conservation.accepted, full.conservation.completed);
        // The conservation audit's corruption ledger matches the counters:
        // nothing detected goes unjournaled.
        prop_assert_eq!(
            full.conservation.corruption_detected,
            full.counters.get("fleet.corruption.detected")
        );
        // Bit-identical resume from a random crash point.
        let cut = ((full.journal.len() as f64) * cut_frac) as usize;
        let resumed =
            resume_fleet(&prefix_of(&full.journal, cut), &reqs, &cfg).expect("resume");
        prop_assert_eq!(resumed.journal.encode(), full.journal.encode());
        prop_assert_eq!(resumed.jobs, full.jobs);
    }

    #[test]
    fn replay_of_a_complete_journal_is_idempotent(
        seed in 1u64..100_000,
        shards in 2usize..5,
    ) {
        let reqs = trace(seed);
        let cfg = cfg(shards, 3);
        let full = run_fleet(&reqs, &cfg).expect("fleet");
        let resumed = resume_fleet(&full.journal, &reqs, &cfg).expect("resume");
        prop_assert_eq!(resumed.journal.encode(), full.journal.encode());
        prop_assert_eq!(resumed.jobs, full.jobs);
    }
}
