//! The serving loop: a deterministic virtual-time discrete-event server
//! that admits requests, coalesces them into batches, places each batch
//! with the [`Tuner`](crate::tuner::Tuner), and optionally executes it for
//! real on the stage-graph engines — surviving injected chaos through the
//! recovery ladder (task retry → batch rollback → rank eviction) without
//! losing a single accepted job.
//!
//! Time accounting is entirely virtual: a batch's service time is its
//! modeled (DES) cost under the chosen placement, plus model-priced
//! recovery overhead derived from the *real* retry/rollback counts when
//! chaos is injected. Wall clocks never enter the loop, so a pinned seed
//! reproduces the identical report — the property the CI gates rely on.
//! Real executions feed two things back: per-member result hashes (the
//! golden suite compares them against direct engine runs) and
//! model-comparable duration observations for the tuner's online
//! refinement.

use crate::admission::{Admission, AdmissionConfig};
use crate::batch::{Batch, BatchConfig};
use crate::request::{band_hash, GeometryClass, RejectReason, Request};
use crate::tuner::{Placement, Tuner, TunerConfig};
use fftx_core::{
    run_eviction, run_policy, run_policy_chaotic, run_retry, run_rollback, Problem, RunOutput,
    SchedulerPolicy,
};
use fftx_fault::{mix64, BatchAborts, ChaosConfig, RankDeath, RecoveryConfig, TaskCrashes};
use fftx_knlsim::CommModel;
use fftx_trace::{stage_profile, CounterSet, DepthSeries, Quantiles};
use std::collections::BTreeMap;
use std::sync::Arc;

/// How the server picks a placement per batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementMode {
    /// Tuner searches every policy's candidate row (the full space).
    Auto,
    /// Tuner is restricted to one policy's row — the static baselines the
    /// auto mode is gated against.
    Static(SchedulerPolicy),
}

impl PlacementMode {
    /// Display name: `auto` or the policy name.
    pub fn name(self) -> String {
        match self {
            PlacementMode::Auto => "auto".into(),
            PlacementMode::Static(p) => p.name().into(),
        }
    }

    /// Parses `auto` or any scheduler-policy name.
    pub fn parse(s: &str) -> Option<Self> {
        if s == "auto" {
            return Some(PlacementMode::Auto);
        }
        SchedulerPolicy::parse(s).map(PlacementMode::Static)
    }
}

/// Chaos injection on the serving path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeChaos {
    /// Seed of the per-batch fault schedules.
    pub seed: u64,
    /// When set, that batch (by dispatch index) is forced onto the
    /// eviction-capable 7×1 serial layout and rank 1 dies mid-run — the
    /// end-to-end demonstration of recovery mechanism 3.
    pub evict_batch: Option<usize>,
}

/// Serving-loop configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Admission-control knobs.
    pub admission: AdmissionConfig,
    /// Batch-formation knobs.
    pub batch: BatchConfig,
    /// Placement-tuner knobs.
    pub tuner: TunerConfig,
    /// Placement selection mode.
    pub mode: PlacementMode,
    /// Execute each batch for real on the stage-graph engines (hashes and
    /// stage profiles come back); otherwise service is purely modeled.
    pub execute_real: bool,
    /// Chaos on the serving path (implies real execution).
    pub chaos: Option<ServeChaos>,
    /// Workload data seed: fixes the synthetic band/potential content of
    /// every batch problem, so served results are bit-comparable to direct
    /// engine runs of the same configuration.
    pub seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            admission: AdmissionConfig::default(),
            batch: BatchConfig::default(),
            tuner: TunerConfig::default(),
            mode: PlacementMode::Auto,
            execute_real: false,
            chaos: None,
            seed: 42,
        }
    }
}

/// One completed request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobRecord {
    /// The request.
    pub request: Request,
    /// Dispatch index of the batch that carried it.
    pub batch: usize,
    /// Completion time (virtual seconds).
    pub done_s: f64,
    /// Arrival-to-completion latency (virtual seconds).
    pub latency_s: f64,
    /// FNV hash of the request's result bands (real executions only).
    pub hash: Option<u64>,
    /// Whether the latency stayed within the deadline budget.
    pub deadline_met: bool,
}

/// One shed request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShedRecord {
    /// The request.
    pub request: Request,
    /// Why admission refused it.
    pub reason: RejectReason,
}

/// One dispatched batch.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchRecord {
    /// Dispatch index.
    pub index: usize,
    /// Geometry class of the batch.
    pub class: GeometryClass,
    /// The placement that executed it.
    pub placement: Placement,
    /// Requests coalesced into it.
    pub members: usize,
    /// Payload and padded band counts.
    pub payload_bands: usize,
    /// Band count of the batch problem.
    pub nbnd: usize,
    /// Dispatch time (virtual seconds).
    pub start_s: f64,
    /// Service time including recovery overhead (virtual seconds).
    pub service_s: f64,
    /// Recovery events absorbed: (task retries, batch rollbacks, evictions).
    pub recovery: (u64, u64, u64),
    /// The run had to be escalated to a clean re-execution after the
    /// in-place recovery budget was exhausted.
    pub escalated: bool,
}

/// The full outcome of one serving run.
#[derive(Debug)]
pub struct ServeReport {
    /// Placement mode the run used.
    pub mode: PlacementMode,
    /// Completed requests, in completion order.
    pub jobs: Vec<JobRecord>,
    /// Shed requests, in arrival order.
    pub shed: Vec<ShedRecord>,
    /// Dispatched batches, in dispatch order.
    pub batches: Vec<BatchRecord>,
    /// Counters: `served.tenant.<id>`, `shed.tenant.<id>`, `shed.<kind>`,
    /// `recovery.retries|rollbacks|evictions`, `escalations`, `batches`.
    pub counters: CounterSet,
    /// Queue depth over virtual time.
    pub depth: DepthSeries,
    /// Per-stage busy seconds summed over real executions (stage id →
    /// seconds), from the `trace::stage` spans.
    pub stage_seconds: BTreeMap<u32, f64>,
    /// The tuner's explainable dump for every workload key the run decided.
    pub why: String,
    /// End of the virtual timeline (last completion).
    pub makespan_s: f64,
}

impl ServeReport {
    /// Requests offered (admitted + shed).
    pub fn offered(&self) -> usize {
        self.jobs.len() + self.shed.len()
    }

    /// Goodput: completed requests whose deadline was met, per virtual
    /// second of makespan.
    pub fn goodput_hz(&self) -> f64 {
        if self.makespan_s <= 0.0 {
            return 0.0;
        }
        self.jobs.iter().filter(|j| j.deadline_met).count() as f64 / self.makespan_s
    }

    /// Fraction of offered requests shed.
    pub fn shed_rate(&self) -> f64 {
        if self.offered() == 0 {
            return 0.0;
        }
        self.shed.len() as f64 / self.offered() as f64
    }

    /// Latency sample set of all completed requests.
    pub fn latency(&self) -> Quantiles {
        let mut q = Quantiles::new();
        for j in &self.jobs {
            q.push(j.latency_s);
        }
        q
    }
}

/// Internal outcome of executing one batch for real.
struct RealRun {
    output: RunOutput,
    retries: u64,
    rollbacks: u64,
    evictions: u64,
    checkpoint_bytes: usize,
    escalated: bool,
}

/// The server. Owns the admission queue, the tuner, and the base-problem
/// cache; [`Server::run`] consumes a request trace and produces the report.
pub struct Server {
    cfg: ServeConfig,
    admission: Admission,
    tuner: Tuner,
    comm: CommModel,
    problems: BTreeMap<(usize, usize, usize, &'static str), Arc<Problem>>,
}

impl Server {
    /// A fresh server under `cfg`.
    pub fn new(cfg: ServeConfig) -> Self {
        Server {
            admission: Admission::new(cfg.admission),
            tuner: Tuner::new(cfg.tuner),
            comm: CommModel::paper(),
            problems: BTreeMap::new(),
            cfg,
        }
    }

    /// Read access to the tuner (its tables survive the run).
    pub fn tuner(&self) -> &Tuner {
        &self.tuner
    }

    fn decide(&mut self, class: GeometryClass, nbnd: usize) -> Placement {
        match self.cfg.mode {
            PlacementMode::Auto => self.tuner.decide(class, nbnd).placement,
            PlacementMode::Static(p) => self.tuner.decide_policy(class, nbnd, p).placement,
        }
    }

    /// Rough completion estimate of one request were it admitted now:
    /// the modeled service of a minimal batch of its class.
    fn request_estimate(&mut self, req: &Request) -> f64 {
        let pad = self.cfg.batch.pad_to.max(1);
        let nbnd = req.bands.div_ceil(pad) * pad;
        let p = self.decide(req.class, nbnd);
        self.tuner.service_s(req.class, nbnd, &p)
    }

    /// The batch problem of `(class, nbnd)` under `placement`, via a base
    /// problem per (class, layout, policy) rebanded with `with_nbnd` —
    /// grids, stick layouts, and FFT plans are built once and shared.
    fn problem_for(&mut self, class: GeometryClass, nbnd: usize, p: &Placement) -> Arc<Problem> {
        let key = (class.index(), p.nr, p.ntg, p.policy.name());
        let seed = self.cfg.seed;
        let base = self
            .problems
            .entry(key)
            .or_insert_with(|| Problem::new(p.config(class, nbnd, seed)));
        if base.config.nbnd == nbnd {
            base.clone()
        } else {
            base.with_nbnd(nbnd)
        }
    }

    /// Executes one batch for real, routing chaos through the recovery
    /// ladder. Recovery failure escalates to a clean re-run — an accepted
    /// job is never dropped.
    fn execute(&mut self, batch: &Batch, p: &Placement, index: usize, evict: bool) -> RealRun {
        let problem = self.problem_for(batch.class, batch.nbnd, p);
        let rc = RecoveryConfig::default();
        let chaos_seed = self
            .cfg
            .chaos
            .map(|c| mix64(c.seed ^ (index as u64).wrapping_mul(0x9e37)));
        let mut run = RealRun {
            output: RunOutput {
                bands: Vec::new(),
                trace: Default::default(),
                fft_phase_s: 0.0,
            },
            retries: 0,
            rollbacks: 0,
            evictions: 0,
            checkpoint_bytes: 0,
            escalated: false,
        };
        match (chaos_seed, p.policy) {
            (Some(_), SchedulerPolicy::Serial) if evict => {
                // The eviction demo: rank 1 dies at batch 2 of the 7×1
                // layout; the world re-plans onto the 3×2 survivors.
                match run_eviction(&problem, RankDeath::at(1, 2), &rc) {
                    Ok((output, stats)) => {
                        run.output = output;
                        run.evictions = stats.evictions;
                        run.rollbacks = stats.batch_rollbacks;
                        run.checkpoint_bytes = stats.checkpoint_bytes as usize;
                    }
                    Err(_) => {
                        run.output = run_policy(&problem, p.policy);
                        run.escalated = true;
                    }
                }
            }
            (Some(seed), SchedulerPolicy::Serial) => {
                let aborts = BatchAborts::new(seed, 0.4, 2);
                match run_rollback(&problem, Some(aborts), &rc) {
                    Ok((output, stats)) => {
                        run.output = output;
                        run.rollbacks = stats.batch_rollbacks;
                        run.checkpoint_bytes = stats.checkpoint_bytes as usize;
                    }
                    Err(_) => {
                        run.output = run_policy(&problem, p.policy);
                        run.escalated = true;
                    }
                }
            }
            (Some(seed), SchedulerPolicy::TaskPerFft) => {
                let crashes = TaskCrashes::new(seed, 0.3, 3);
                match run_retry(&problem, Some(crashes), &rc) {
                    Ok((output, stats)) => {
                        run.output = output;
                        run.retries = stats.task_retries;
                    }
                    Err(_) => {
                        run.output = run_policy(&problem, p.policy);
                        run.escalated = true;
                    }
                }
            }
            (Some(seed), policy) => {
                // Message-level chaos on the remaining policies: lossless
                // by construction, the fault report feeds the counters.
                let (output, report) =
                    run_policy_chaotic(&problem, policy, Some(ChaosConfig::light(seed)));
                run.output = output;
                run.retries = report.map_or(0, |r| r.events.len() as u64);
            }
            (None, policy) => {
                run.output = run_policy(&problem, policy);
            }
        }
        run
    }

    /// Model-priced overhead of the recovery events a real run absorbed.
    fn recovery_overhead_s(&self, run: &RealRun, base_service_s: f64, iterations: usize) -> f64 {
        let per_batch_s = base_service_s / iterations.max(1) as f64;
        let replays = (run.rollbacks + run.evictions) as u32;
        let mut overhead = self
            .comm
            .replay_seconds(run.checkpoint_bytes, per_batch_s, replays);
        if run.checkpoint_bytes > 0 {
            overhead += self.comm.checkpoint_seconds(run.checkpoint_bytes);
        }
        // A retried task re-executes one band-batch FFT lane.
        overhead += run.retries as f64 * per_batch_s / iterations.max(1) as f64;
        if run.escalated {
            overhead += base_service_s; // the wasted attempt
        }
        overhead
    }

    fn dispatch(&mut self, start_s: f64, report: &mut ServeReport) -> f64 {
        let batch_cfg = self.cfg.batch;
        let batch = self
            .admission
            .form_batch(&batch_cfg)
            .expect("dispatch: non-empty queue");
        let index = report.batches.len();
        let evict = self.cfg.chaos.and_then(|c| c.evict_batch) == Some(index);
        let mut placement = self.decide(batch.class, batch.nbnd);
        if evict {
            // The eviction layout: 7 virtual ranks as 7×1 so one can die.
            placement = Placement {
                nr: 7,
                ntg: 1,
                policy: SchedulerPolicy::Serial,
            };
        }
        let base_service_s = self.tuner.service_s(batch.class, batch.nbnd, &placement);
        let mut service_s = base_service_s;
        let real = self.cfg.execute_real || self.cfg.chaos.is_some();
        let mut hashes: Vec<Option<u64>> = vec![None; batch.members.len()];
        let mut recovery = (0u64, 0u64, 0u64);
        let mut escalated = false;
        if real {
            let run = self.execute(&batch, &placement, index, evict);
            let iterations = batch.nbnd / placement.config(batch.class, batch.nbnd, 0).layout_ntg();
            service_s += self.recovery_overhead_s(&run, base_service_s, iterations);
            recovery = (run.retries, run.rollbacks, run.evictions);
            escalated = run.escalated;
            for (i, m) in batch.members.iter().enumerate() {
                let range = &run.output.bands[m.band_start..m.band_start + m.request.bands];
                hashes[i] = Some(band_hash(range));
            }
            for (stage, _, seconds) in stage_profile(&run.output.trace) {
                *report.stage_seconds.entry(stage).or_insert(0.0) += seconds;
            }
            // Close the loop: the tuner learns the recovery-adjusted,
            // model-comparable duration of this placement.
            self.tuner
                .observe(batch.class, batch.nbnd, &placement, service_s);
        }
        let done_s = start_s + service_s;
        for (i, m) in batch.members.iter().enumerate() {
            let latency_s = done_s - m.request.arrival_s;
            report.jobs.push(JobRecord {
                request: m.request,
                batch: index,
                done_s,
                latency_s,
                hash: hashes[i],
                deadline_met: latency_s <= m.request.deadline.budget_s(),
            });
            report
                .counters
                .inc(&format!("served.tenant.{}", m.request.tenant));
        }
        report.counters.inc("batches");
        report.counters.add("recovery.retries", recovery.0);
        report.counters.add("recovery.rollbacks", recovery.1);
        report.counters.add("recovery.evictions", recovery.2);
        if escalated {
            report.counters.inc("escalations");
        }
        report.batches.push(BatchRecord {
            index,
            class: batch.class,
            placement,
            members: batch.members.len(),
            payload_bands: batch.payload_bands,
            nbnd: batch.nbnd,
            start_s,
            service_s,
            recovery,
            escalated,
        });
        report.makespan_s = report.makespan_s.max(done_s);
        done_s
    }

    /// Runs the server over an arrival-ordered request trace.
    pub fn run(mut self, requests: &[Request]) -> ServeReport {
        assert!(
            requests.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s),
            "serve: request trace must be arrival-ordered"
        );
        let mut report = ServeReport {
            mode: self.cfg.mode,
            jobs: Vec::new(),
            shed: Vec::new(),
            batches: Vec::new(),
            counters: CounterSet::new(),
            depth: DepthSeries::new(),
            stage_seconds: BTreeMap::new(),
            why: String::new(),
            makespan_s: 0.0,
        };
        let mut t_free = 0.0f64;
        for req in requests {
            let now = req.arrival_s;
            // The server became free before this arrival: drain the queue
            // batch by batch from that moment.
            while self.admission.depth() > 0 && t_free <= now {
                t_free = self.dispatch(t_free, &mut report);
            }
            // Completion estimate: residual busy time, the backlog ahead,
            // and the request's own service.
            let mut estimate = (t_free - now).max(0.0);
            let backlog: Vec<Request> = self.admission.queued().copied().collect();
            for q in &backlog {
                estimate += self.request_estimate(q);
            }
            estimate += self.request_estimate(req);
            match self.admission.offer(*req, estimate) {
                Ok(()) => {}
                Err(reason) => {
                    report.counters.inc(&format!("shed.{}", reason.kind()));
                    report.counters.inc(&format!("shed.tenant.{}", req.tenant));
                    report.shed.push(ShedRecord {
                        request: *req,
                        reason,
                    });
                }
            }
            report.depth.record(now, self.admission.depth());
            // Idle server dispatches immediately on arrival.
            if self.admission.depth() > 0 && t_free <= now {
                t_free = self.dispatch(now, &mut report);
            }
        }
        while self.admission.depth() > 0 {
            t_free = self.dispatch(t_free, &mut report);
        }
        report.makespan_s = report.makespan_s.max(t_free);
        // Explain every workload key the run decided (auto view).
        let keys: std::collections::BTreeSet<(usize, usize)> = report
            .batches
            .iter()
            .map(|b| (b.class.index(), b.nbnd))
            .collect();
        for (class_idx, nbnd) in keys {
            report.why.push_str(&self.tuner.why(GeometryClass::ALL[class_idx], nbnd));
            report.why.push('\n');
        }
        report
    }
}

/// Convenience: generate nothing, serve a prepared trace under `cfg`.
pub fn run_serve(requests: &[Request], cfg: &ServeConfig) -> ServeReport {
    Server::new(*cfg).run(requests)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::DeadlineClass;
    use crate::traffic::{generate, LoadProfile, TrafficConfig};

    fn small_trace() -> Vec<Request> {
        generate(&TrafficConfig {
            seed: 7,
            rate_hz: 40.0,
            duration_s: 1.0,
            tenants: 3,
            profile: LoadProfile::Steady,
        })
    }

    #[test]
    fn modeled_run_conserves_requests() {
        let trace = small_trace();
        let report = run_serve(&trace, &ServeConfig::default());
        assert_eq!(report.offered(), trace.len());
        assert!(!report.jobs.is_empty());
        assert!(!report.batches.is_empty());
        // Every admitted request completes exactly once.
        let mut ids: Vec<u64> = report.jobs.iter().map(|j| j.request.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), report.jobs.len());
        assert!(report.makespan_s > 0.0);
    }

    #[test]
    fn runs_replay_bit_identically() {
        let trace = small_trace();
        let a = run_serve(&trace, &ServeConfig::default());
        let b = run_serve(&trace, &ServeConfig::default());
        assert_eq!(a.jobs, b.jobs);
        assert_eq!(a.batches, b.batches);
        assert_eq!(a.why, b.why);
    }

    #[test]
    fn tenant_ordering_is_preserved() {
        let trace = small_trace();
        let report = run_serve(&trace, &ServeConfig::default());
        let mut last_done: BTreeMap<u32, (f64, u64)> = BTreeMap::new();
        for j in &report.jobs {
            if let Some(&(done, id)) = last_done.get(&j.request.tenant) {
                assert!(
                    j.done_s > done || (j.done_s == done && j.request.id > id),
                    "tenant {} completed out of order",
                    j.request.tenant
                );
            }
            last_done.insert(j.request.tenant, (j.done_s, j.request.id));
        }
    }

    #[test]
    fn overload_sheds_with_typed_reasons() {
        // A tiny queue under a hot burst must shed.
        let trace = generate(&TrafficConfig {
            seed: 11,
            rate_hz: 400.0,
            duration_s: 1.0,
            tenants: 2,
            profile: LoadProfile::Burst,
        });
        let cfg = ServeConfig {
            admission: AdmissionConfig {
                queue_cap: 4,
                tenant_share: 0.5,
                shed_late: true,
            },
            ..Default::default()
        };
        let report = run_serve(&trace, &cfg);
        assert!(!report.shed.is_empty());
        assert!(report.shed_rate() > 0.0);
        assert_eq!(
            report.counters.sum_prefix("shed.tenant."),
            report.shed.len() as u64
        );
        assert!(report.depth.max() <= 4);
    }

    #[test]
    fn real_execution_hashes_match_a_direct_engine_run() {
        let trace: Vec<Request> = small_trace().into_iter().take(6).collect();
        let cfg = ServeConfig {
            execute_real: true,
            ..Default::default()
        };
        let report = run_serve(&trace, &cfg);
        for batch in &report.batches {
            let jobs: Vec<&JobRecord> =
                report.jobs.iter().filter(|j| j.batch == batch.index).collect();
            let p = batch.placement;
            let problem = Problem::new(p.config(batch.class, batch.nbnd, 42));
            let direct = run_policy(&problem, p.policy);
            // Jobs of one batch are recorded in member (band) order, so the
            // band offsets reconstruct by accumulation.
            let mut start = 0;
            for j in jobs {
                let m = j.request;
                let expect = band_hash(&direct.bands[start..start + m.bands]);
                assert_eq!(j.hash, Some(expect), "request {}", m.id);
                start += m.bands;
            }
        }
    }

    #[test]
    fn chaos_run_loses_no_accepted_jobs() {
        let trace: Vec<Request> = small_trace().into_iter().take(8).collect();
        let cfg = ServeConfig {
            chaos: Some(ServeChaos {
                seed: 0xC0FFEE,
                evict_batch: None,
            }),
            ..Default::default()
        };
        let report = run_serve(&trace, &cfg);
        assert_eq!(report.offered(), trace.len());
        assert_eq!(report.jobs.len() + report.shed.len(), trace.len());
        // Chaos must not change any result: hashes match the clean run.
        let clean = run_serve(
            &trace,
            &ServeConfig {
                execute_real: true,
                ..Default::default()
            },
        );
        let hash_of = |r: &ServeReport, id: u64| {
            r.jobs.iter().find(|j| j.request.id == id).and_then(|j| j.hash)
        };
        for j in &report.jobs {
            assert_eq!(
                j.hash,
                hash_of(&clean, j.request.id),
                "request {} result corrupted by chaos",
                j.request.id
            );
        }
    }

    #[test]
    fn eviction_batch_survives_a_rank_death() {
        let trace: Vec<Request> = small_trace().into_iter().take(4).collect();
        let cfg = ServeConfig {
            chaos: Some(ServeChaos {
                seed: 5,
                evict_batch: Some(0),
            }),
            ..Default::default()
        };
        let report = run_serve(&trace, &cfg);
        let b0 = &report.batches[0];
        assert_eq!(b0.placement.nr, 7);
        assert_eq!(b0.recovery.2, 1, "one eviction expected");
        assert!(!b0.escalated);
        assert!(report.jobs.iter().filter(|j| j.batch == 0).all(|j| j.hash.is_some()));
    }

    #[test]
    fn deadlines_partition_completions() {
        let trace = small_trace();
        let report = run_serve(&trace, &ServeConfig::default());
        for j in &report.jobs {
            assert_eq!(
                j.deadline_met,
                j.latency_s <= j.request.deadline.budget_s()
            );
            assert!(matches!(
                j.request.deadline,
                DeadlineClass::Interactive | DeadlineClass::Standard | DeadlineClass::Batch
            ));
        }
        let mut q = report.latency();
        if q.len() >= 2 {
            assert!(q.p50() <= q.p99());
        }
    }
}
