//! The serving loop: a deterministic virtual-time discrete-event server
//! that admits requests, coalesces them into batches, places each batch
//! with the [`Tuner`](crate::tuner::Tuner), and optionally executes it for
//! real on the stage-graph engines — surviving injected chaos through the
//! recovery ladder (task retry → batch rollback → rank eviction) without
//! losing a single accepted job.
//!
//! Time accounting is entirely virtual: a batch's service time is its
//! modeled (DES) cost under the chosen placement, plus model-priced
//! recovery overhead derived from the *real* retry/rollback counts when
//! chaos is injected. Wall clocks never enter the loop, so a pinned seed
//! reproduces the identical report — the property the CI gates rely on.
//! Real executions feed two things back: per-member result hashes (the
//! golden suite compares them against direct engine runs) and
//! model-comparable duration observations for the tuner's online
//! refinement.

use crate::admission::{Admission, AdmissionConfig};
use crate::batch::BatchConfig;
use crate::error::ServeError;
use crate::exec::{Backend, ServeChaos};
use crate::request::{band_hash, GeometryClass, RejectReason, Request};
use crate::tuner::{Placement, Tuner, TunerConfig};
use fftx_core::{DecompChoice, Decomposition, SchedulerPolicy};
use fftx_trace::{stage_profile, CounterSet, DepthSeries, EventLog, Quantiles};
use std::collections::BTreeMap;

/// How the server picks a placement per batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementMode {
    /// Tuner searches every policy's candidate row (the full space).
    Auto,
    /// Tuner is restricted to one policy's row — the static baselines the
    /// auto mode is gated against.
    Static(SchedulerPolicy),
}

impl PlacementMode {
    /// Display name: `auto` or the policy name.
    pub fn name(self) -> String {
        match self {
            PlacementMode::Auto => "auto".into(),
            PlacementMode::Static(p) => p.name().into(),
        }
    }

    /// Parses `auto` or any scheduler-policy name.
    pub fn parse(s: &str) -> Option<Self> {
        if s == "auto" {
            return Some(PlacementMode::Auto);
        }
        SchedulerPolicy::parse(s).map(PlacementMode::Static)
    }
}

/// Serving-loop configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Admission-control knobs.
    pub admission: AdmissionConfig,
    /// Batch-formation knobs.
    pub batch: BatchConfig,
    /// Placement-tuner knobs.
    pub tuner: TunerConfig,
    /// Placement selection mode.
    pub mode: PlacementMode,
    /// Decomposition selection: `Auto` lets the tuner search both
    /// lowerings; a fixed choice restricts its candidate space — the
    /// fixed-decomposition baselines the `decomp` bench gates against.
    pub decomp: DecompChoice,
    /// Execute each batch for real on the stage-graph engines (hashes and
    /// stage profiles come back); otherwise service is purely modeled.
    pub execute_real: bool,
    /// Chaos on the serving path (implies real execution).
    pub chaos: Option<ServeChaos>,
    /// Workload data seed: fixes the synthetic band/potential content of
    /// every batch problem, so served results are bit-comparable to direct
    /// engine runs of the same configuration.
    pub seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            admission: AdmissionConfig::default(),
            batch: BatchConfig::default(),
            tuner: TunerConfig::default(),
            mode: PlacementMode::Auto,
            decomp: DecompChoice::Auto,
            execute_real: false,
            chaos: None,
            seed: 42,
        }
    }
}

/// One completed request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobRecord {
    /// The request.
    pub request: Request,
    /// Dispatch index of the batch that carried it.
    pub batch: usize,
    /// Completion time (virtual seconds).
    pub done_s: f64,
    /// Arrival-to-completion latency (virtual seconds).
    pub latency_s: f64,
    /// FNV hash of the request's result bands (real executions only).
    pub hash: Option<u64>,
    /// Whether the latency stayed within the deadline budget.
    pub deadline_met: bool,
}

/// One shed request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShedRecord {
    /// The request.
    pub request: Request,
    /// Why admission refused it.
    pub reason: RejectReason,
}

/// One dispatched batch.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchRecord {
    /// Dispatch index.
    pub index: usize,
    /// Geometry class of the batch.
    pub class: GeometryClass,
    /// The placement that executed it.
    pub placement: Placement,
    /// Requests coalesced into it.
    pub members: usize,
    /// Payload and padded band counts.
    pub payload_bands: usize,
    /// Band count of the batch problem.
    pub nbnd: usize,
    /// Dispatch time (virtual seconds).
    pub start_s: f64,
    /// Service time including recovery overhead (virtual seconds).
    pub service_s: f64,
    /// Recovery events absorbed: (task retries, batch rollbacks, evictions).
    pub recovery: (u64, u64, u64),
    /// The run had to be escalated to a clean re-execution after the
    /// in-place recovery budget was exhausted.
    pub escalated: bool,
}

/// The full outcome of one serving run.
#[derive(Debug)]
pub struct ServeReport {
    /// Placement mode the run used.
    pub mode: PlacementMode,
    /// Decomposition choice the run used.
    pub decomp: DecompChoice,
    /// Completed requests, in completion order.
    pub jobs: Vec<JobRecord>,
    /// Shed requests, in arrival order.
    pub shed: Vec<ShedRecord>,
    /// Dispatched batches, in dispatch order.
    pub batches: Vec<BatchRecord>,
    /// Counters: `served.tenant.<id>`, `shed.tenant.<id>`, `shed.<kind>`,
    /// `recovery.retries|rollbacks|evictions`, `escalations`, `batches`.
    pub counters: CounterSet,
    /// Queue depth over virtual time.
    pub depth: DepthSeries,
    /// Per-stage busy seconds summed over real executions (stage id →
    /// seconds), from the `trace::stage` spans.
    pub stage_seconds: BTreeMap<u32, f64>,
    /// The tuner's explainable dump for every workload key the run decided.
    pub why: String,
    /// End of the virtual timeline (last completion).
    pub makespan_s: f64,
}

impl ServeReport {
    /// Requests offered (admitted + shed).
    pub fn offered(&self) -> usize {
        self.jobs.len() + self.shed.len()
    }

    /// Goodput: completed requests whose deadline was met, per virtual
    /// second of makespan.
    pub fn goodput_hz(&self) -> f64 {
        if self.makespan_s <= 0.0 {
            return 0.0;
        }
        self.jobs.iter().filter(|j| j.deadline_met).count() as f64 / self.makespan_s
    }

    /// Fraction of offered requests shed.
    pub fn shed_rate(&self) -> f64 {
        if self.offered() == 0 {
            return 0.0;
        }
        self.shed.len() as f64 / self.offered() as f64
    }

    /// Latency sample set of all completed requests.
    pub fn latency(&self) -> Quantiles {
        let mut q = Quantiles::new();
        for j in &self.jobs {
            q.push(j.latency_s);
        }
        q
    }
}

/// The server. Owns the admission queue, the tuner, and the execution
/// backend; [`Server::run`] consumes a request trace and produces the
/// report.
pub struct Server {
    cfg: ServeConfig,
    admission: Admission,
    tuner: Tuner,
    backend: Backend,
    /// The run's telemetry store; the report's counter and depth views are
    /// materialized from it when the run finishes.
    log: EventLog,
}

impl Server {
    /// A fresh server under `cfg`.
    pub fn new(cfg: ServeConfig) -> Self {
        Server {
            admission: Admission::new(cfg.admission),
            tuner: Tuner::new(cfg.tuner),
            backend: Backend::new(cfg.seed, cfg.chaos),
            log: EventLog::new(),
            cfg,
        }
    }

    /// Read access to the tuner (its tables survive the run).
    pub fn tuner(&self) -> &Tuner {
        &self.tuner
    }

    fn decide(&mut self, class: GeometryClass, nbnd: usize) -> Placement {
        match (self.cfg.mode, self.cfg.decomp.fixed()) {
            (PlacementMode::Auto, None) => self.tuner.decide(class, nbnd).placement,
            (PlacementMode::Auto, Some(d)) => self.tuner.decide_decomp(class, nbnd, d).placement,
            (PlacementMode::Static(p), None) => self.tuner.decide_policy(class, nbnd, p).placement,
            (PlacementMode::Static(p), Some(d)) => {
                self.tuner.decide_fixed(class, nbnd, p, d).placement
            }
        }
    }

    /// Rough completion estimate of one request were it admitted now:
    /// the modeled service of a minimal batch of its class.
    fn request_estimate(&mut self, req: &Request) -> f64 {
        let pad = self.cfg.batch.pad_to.max(1);
        let nbnd = req.bands.div_ceil(pad) * pad;
        let p = self.decide(req.class, nbnd);
        self.tuner.service_s(req.class, nbnd, &p)
    }

    fn dispatch(&mut self, start_s: f64, report: &mut ServeReport) -> Result<f64, ServeError> {
        let batch_cfg = self.cfg.batch;
        let batch = self
            .admission
            .form_batch(&batch_cfg)?
            .ok_or(ServeError::EmptyQueue)?;
        let index = report.batches.len();
        let evict = self.cfg.chaos.and_then(|c| c.evict_batch) == Some(index);
        let mut placement = self.decide(batch.class, batch.nbnd);
        if evict {
            // The eviction layout: 7 virtual ranks as 7×1 so one can die.
            placement = Placement {
                nr: 7,
                ntg: 1,
                policy: SchedulerPolicy::Serial,
                // 7 ranks is prime, so the pencil grid would be degenerate
                // anyway; pin the eviction layout to the slab lowering.
                decomp: Decomposition::Slab,
            };
        }
        let base_service_s = self.tuner.service_s(batch.class, batch.nbnd, &placement);
        let mut service_s = base_service_s;
        let real = self.cfg.execute_real || self.cfg.chaos.is_some();
        let mut hashes: Vec<Option<u64>> = vec![None; batch.members.len()];
        let mut recovery = (0u64, 0u64, 0u64);
        let mut escalated = false;
        if real {
            let run = self.backend.execute(&batch, &placement, index, evict);
            let iterations = batch.nbnd / placement.config(batch.class, batch.nbnd, 0).layout_ntg();
            service_s += self.backend.recovery_overhead_s(&run, base_service_s, iterations);
            recovery = (run.retries, run.rollbacks, run.evictions);
            escalated = run.escalated;
            for (i, m) in batch.members.iter().enumerate() {
                let range = &run.output.bands[m.band_start..m.band_start + m.request.bands];
                hashes[i] = Some(band_hash(range));
            }
            for (stage, _, seconds) in stage_profile(&run.output.trace) {
                *report.stage_seconds.entry(stage).or_insert(0.0) += seconds;
            }
            // Close the loop: the tuner learns the recovery-adjusted,
            // model-comparable duration of this placement.
            self.tuner
                .observe(batch.class, batch.nbnd, &placement, service_s);
        }
        let done_s = start_s + service_s;
        for (i, m) in batch.members.iter().enumerate() {
            let latency_s = done_s - m.request.arrival_s;
            report.jobs.push(JobRecord {
                request: m.request,
                batch: index,
                done_s,
                latency_s,
                hash: hashes[i],
                deadline_met: latency_s <= m.request.deadline.budget_s(),
            });
            self.log
                .push_counter(&format!("served.tenant.{}", m.request.tenant), 1);
        }
        self.log.push_counter("batches", 1);
        self.log.push_counter("recovery.retries", recovery.0);
        self.log.push_counter("recovery.rollbacks", recovery.1);
        self.log.push_counter("recovery.evictions", recovery.2);
        if escalated {
            self.log.push_counter("escalations", 1);
        }
        report.batches.push(BatchRecord {
            index,
            class: batch.class,
            placement,
            members: batch.members.len(),
            payload_bands: batch.payload_bands,
            nbnd: batch.nbnd,
            start_s,
            service_s,
            recovery,
            escalated,
        });
        report.makespan_s = report.makespan_s.max(done_s);
        Ok(done_s)
    }

    /// Runs the server over an arrival-ordered request trace.
    ///
    /// # Errors
    /// [`ServeError::UnorderedTrace`] when the trace is not
    /// arrival-ordered; any internal queue/plan inconsistency the loop
    /// detects is propagated instead of panicking.
    pub fn run(mut self, requests: &[Request]) -> Result<ServeReport, ServeError> {
        if let Some(i) = requests
            .windows(2)
            .position(|w| w[0].arrival_s > w[1].arrival_s)
        {
            return Err(ServeError::UnorderedTrace { index: i + 1 });
        }
        let mut report = ServeReport {
            mode: self.cfg.mode,
            decomp: self.cfg.decomp,
            jobs: Vec::new(),
            shed: Vec::new(),
            batches: Vec::new(),
            counters: CounterSet::new(),
            depth: DepthSeries::new(),
            stage_seconds: BTreeMap::new(),
            why: String::new(),
            makespan_s: 0.0,
        };
        let mut t_free = 0.0f64;
        for req in requests {
            let now = req.arrival_s;
            // The server became free before this arrival: drain the queue
            // batch by batch from that moment.
            while self.admission.depth() > 0 && t_free <= now {
                t_free = self.dispatch(t_free, &mut report)?;
            }
            // Completion estimate: residual busy time, the backlog ahead,
            // and the request's own service.
            let mut estimate = (t_free - now).max(0.0);
            let backlog: Vec<Request> = self.admission.queued().copied().collect();
            for q in &backlog {
                estimate += self.request_estimate(q);
            }
            estimate += self.request_estimate(req);
            match self.admission.offer(*req, estimate) {
                Ok(()) => {}
                Err(reason) => {
                    self.log.push_counter(&format!("shed.{}", reason.kind()), 1);
                    self.log.push_counter(&format!("shed.tenant.{}", req.tenant), 1);
                    report.shed.push(ShedRecord {
                        request: *req,
                        reason,
                    });
                }
            }
            self.log.push_gauge("queue.depth", now, self.admission.depth() as u64);
            // Idle server dispatches immediately on arrival.
            if self.admission.depth() > 0 && t_free <= now {
                t_free = self.dispatch(now, &mut report)?;
            }
        }
        while self.admission.depth() > 0 {
            t_free = self.dispatch(t_free, &mut report)?;
        }
        report.makespan_s = report.makespan_s.max(t_free);
        // Explain every workload key the run decided (auto view).
        let keys: std::collections::BTreeSet<(usize, usize)> = report
            .batches
            .iter()
            .map(|b| (b.class.index(), b.nbnd))
            .collect();
        for (class_idx, nbnd) in keys {
            report.why.push_str(&self.tuner.why(GeometryClass::ALL[class_idx], nbnd));
            report.why.push('\n');
        }
        report.counters = self
            .log
            .counters()
            .map_err(|e| ServeError::Journal(format!("telemetry log: {e}")))?;
        report.depth = self
            .log
            .gauge("queue.depth")
            .map_err(|e| ServeError::Journal(format!("telemetry log: {e}")))?;
        Ok(report)
    }
}

/// Convenience: generate nothing, serve a prepared trace under `cfg`.
///
/// # Errors
/// See [`Server::run`].
pub fn run_serve(requests: &[Request], cfg: &ServeConfig) -> Result<ServeReport, ServeError> {
    Server::new(*cfg).run(requests)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{class_problem, DeadlineClass};
    use crate::traffic::{generate, LoadProfile, TrafficConfig};
    use fftx_core::run_policy;

    fn small_trace() -> Vec<Request> {
        generate(&TrafficConfig {
            seed: 7,
            rate_hz: 40.0,
            duration_s: 1.0,
            tenants: 3,
            profile: LoadProfile::Steady,
        })
    }

    #[test]
    fn modeled_run_conserves_requests() {
        let trace = small_trace();
        let report = run_serve(&trace, &ServeConfig::default()).expect("serve");
        assert_eq!(report.offered(), trace.len());
        assert!(!report.jobs.is_empty());
        assert!(!report.batches.is_empty());
        // Every admitted request completes exactly once.
        let mut ids: Vec<u64> = report.jobs.iter().map(|j| j.request.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), report.jobs.len());
        assert!(report.makespan_s > 0.0);
    }

    #[test]
    fn runs_replay_bit_identically() {
        let trace = small_trace();
        let a = run_serve(&trace, &ServeConfig::default()).expect("serve");
        let b = run_serve(&trace, &ServeConfig::default()).expect("serve");
        assert_eq!(a.jobs, b.jobs);
        assert_eq!(a.batches, b.batches);
        assert_eq!(a.why, b.why);
    }

    #[test]
    fn tenant_ordering_is_preserved() {
        let trace = small_trace();
        let report = run_serve(&trace, &ServeConfig::default()).expect("serve");
        let mut last_done: BTreeMap<u32, (f64, u64)> = BTreeMap::new();
        for j in &report.jobs {
            if let Some(&(done, id)) = last_done.get(&j.request.tenant) {
                assert!(
                    j.done_s > done || (j.done_s == done && j.request.id > id),
                    "tenant {} completed out of order",
                    j.request.tenant
                );
            }
            last_done.insert(j.request.tenant, (j.done_s, j.request.id));
        }
    }

    #[test]
    fn overload_sheds_with_typed_reasons() {
        // A tiny queue under a hot burst must shed.
        let trace = generate(&TrafficConfig {
            seed: 11,
            rate_hz: 400.0,
            duration_s: 1.0,
            tenants: 2,
            profile: LoadProfile::Burst,
        });
        let cfg = ServeConfig {
            admission: AdmissionConfig {
                queue_cap: 4,
                tenant_share: 0.5,
                shed_late: true,
            },
            ..Default::default()
        };
        let report = run_serve(&trace, &cfg).expect("serve");
        assert!(!report.shed.is_empty());
        assert!(report.shed_rate() > 0.0);
        assert_eq!(
            report.counters.sum_prefix("shed.tenant."),
            report.shed.len() as u64
        );
        assert!(report.depth.max() <= 4);
    }

    #[test]
    fn real_execution_hashes_match_a_direct_engine_run() {
        let trace: Vec<Request> = small_trace().into_iter().take(6).collect();
        let cfg = ServeConfig {
            execute_real: true,
            ..Default::default()
        };
        let report = run_serve(&trace, &cfg).expect("serve");
        for batch in &report.batches {
            let jobs: Vec<&JobRecord> =
                report.jobs.iter().filter(|j| j.batch == batch.index).collect();
            let p = batch.placement;
            let problem = class_problem(batch.class, p.config(batch.class, batch.nbnd, 42));
            let direct = run_policy(&problem, p.policy);
            // Jobs of one batch are recorded in member (band) order, so the
            // band offsets reconstruct by accumulation.
            let mut start = 0;
            for j in jobs {
                let m = j.request;
                let expect = band_hash(&direct.bands[start..start + m.bands]);
                assert_eq!(j.hash, Some(expect), "request {}", m.id);
                start += m.bands;
            }
        }
    }

    #[test]
    fn chaos_run_loses_no_accepted_jobs() {
        let trace: Vec<Request> = small_trace().into_iter().take(8).collect();
        let cfg = ServeConfig {
            chaos: Some(ServeChaos {
                seed: 0xC0FFEE,
                evict_batch: None,
                corrupt_per_mille: 0,
            }),
            ..Default::default()
        };
        let report = run_serve(&trace, &cfg).expect("serve");
        assert_eq!(report.offered(), trace.len());
        assert_eq!(report.jobs.len() + report.shed.len(), trace.len());
        // Chaos must not change any result: hashes match the clean run.
        let clean = run_serve(
            &trace,
            &ServeConfig {
                execute_real: true,
                ..Default::default()
            },
        )
        .expect("serve");
        let hash_of = |r: &ServeReport, id: u64| {
            r.jobs.iter().find(|j| j.request.id == id).and_then(|j| j.hash)
        };
        for j in &report.jobs {
            assert_eq!(
                j.hash,
                hash_of(&clean, j.request.id),
                "request {} result corrupted by chaos",
                j.request.id
            );
        }
    }

    #[test]
    fn eviction_batch_survives_a_rank_death() {
        let trace: Vec<Request> = small_trace().into_iter().take(4).collect();
        let cfg = ServeConfig {
            chaos: Some(ServeChaos {
                seed: 5,
                evict_batch: Some(0),
                corrupt_per_mille: 0,
            }),
            ..Default::default()
        };
        let report = run_serve(&trace, &cfg).expect("serve");
        let b0 = &report.batches[0];
        assert_eq!(b0.placement.nr, 7);
        assert_eq!(b0.recovery.2, 1, "one eviction expected");
        assert!(!b0.escalated);
        assert!(report.jobs.iter().filter(|j| j.batch == 0).all(|j| j.hash.is_some()));
    }

    #[test]
    fn unordered_trace_is_a_typed_error() {
        let mut trace = small_trace();
        trace.swap(0, 1);
        // Guard against two identical arrival times making the swap a no-op.
        if trace[0].arrival_s == trace[1].arrival_s {
            trace[0].arrival_s += 1.0;
        }
        let err = run_serve(&trace, &ServeConfig::default()).expect_err("unordered");
        assert!(matches!(err, ServeError::UnorderedTrace { .. }));
    }

    #[test]
    fn deadlines_partition_completions() {
        let trace = small_trace();
        let report = run_serve(&trace, &ServeConfig::default()).expect("serve");
        for j in &report.jobs {
            assert_eq!(
                j.deadline_met,
                j.latency_s <= j.request.deadline.budget_s()
            );
            assert!(matches!(
                j.request.deadline,
                DeadlineClass::Interactive | DeadlineClass::Standard | DeadlineClass::Batch
            ));
        }
        let mut q = report.latency();
        if q.len() >= 2 {
            assert!(q.p50() <= q.p99());
        }
    }
}
