//! Request vocabulary of the serving subsystem: workload classes, deadline
//! classes, the request record itself, and the typed rejection reasons the
//! admission controller returns.

use fftx_core::{Cell, Decomposition, FftGrid, FftxConfig, Mode, Problem, DUAL};
use fftx_fft::Complex64;
use std::sync::Arc;

/// Problem-geometry class of a request. The serving layer batches only
/// requests of one class together, because a batch shares one `Problem`
/// (grid, stick layout, execution plans).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum GeometryClass {
    /// ~18³ dense grid (cutoff 6 Ry, 8 bohr cell) — the workspace's
    /// laptop-scale test geometry.
    Small,
    /// ~24³ dense grid (cutoff 8 Ry, 9 bohr cell).
    Medium,
    /// ~28³ dense grid (cutoff 10 Ry, 10 bohr cell).
    Large,
    /// The Small geometry with the z dimension forced to [`PRIME_NR3`]
    /// (a prime above the 1-D engine's direct-size limit), so every z-axis
    /// transform takes the Bluestein chirp-z path. Carries zero weight in
    /// the synthetic traffic generator — it exists for explicit coverage of
    /// the non-power-friendly serving path, not for the steady-state mix.
    Prime,
}

/// The z dimension of the `prime` geometry class: the smallest prime above
/// `MAX_DIRECT_PRIME` (37), so the dimension cannot be handled by direct
/// mixed-radix kernels and must go through Bluestein. Cutoff-derived grids
/// can never produce it — `good_fft_order` rounds every dimension to
/// `2^a·3^b·5^c·7^d·11^e` form — which is exactly why the class exists.
pub const PRIME_NR3: usize = 41;

impl GeometryClass {
    /// Every class, smallest first; `Prime` last so the first three rows
    /// keep their historical traffic-weight indices.
    pub const ALL: [GeometryClass; 4] = [
        GeometryClass::Small,
        GeometryClass::Medium,
        GeometryClass::Large,
        GeometryClass::Prime,
    ];

    /// Short name used in reports and CSVs.
    pub fn name(self) -> &'static str {
        match self {
            GeometryClass::Small => "small",
            GeometryClass::Medium => "medium",
            GeometryClass::Large => "large",
            GeometryClass::Prime => "prime",
        }
    }

    /// Plane-wave cutoff of the class (Ry).
    pub fn ecutwfc(self) -> f64 {
        match self {
            GeometryClass::Small | GeometryClass::Prime => 6.0,
            GeometryClass::Medium => 8.0,
            GeometryClass::Large => 10.0,
        }
    }

    /// Cubic lattice parameter of the class (bohr).
    pub fn alat(self) -> f64 {
        match self {
            GeometryClass::Small | GeometryClass::Prime => 8.0,
            GeometryClass::Medium => 9.0,
            GeometryClass::Large => 10.0,
        }
    }

    /// Stable index (row order of [`GeometryClass::ALL`]).
    pub fn index(self) -> usize {
        match self {
            GeometryClass::Small => 0,
            GeometryClass::Medium => 1,
            GeometryClass::Large => 2,
            GeometryClass::Prime => 3,
        }
    }

    /// The explicit dense grid this class forces, when it does not use the
    /// cutoff-derived one. Only `Prime` overrides: its z dimension becomes
    /// [`PRIME_NR3`] while x and y keep the cutoff-derived order.
    pub fn grid_override(self, config: &FftxConfig) -> Option<FftGrid> {
        match self {
            GeometryClass::Prime => {
                let cell = Cell::cubic(config.alat);
                let base = FftGrid::from_cutoff(&cell, DUAL * config.ecutwfc);
                Some(FftGrid::raw(base.nr1, base.nr2, PRIME_NR3))
            }
            _ => None,
        }
    }

    /// The miniapp configuration of a batch of this class: `nbnd` coalesced
    /// bands on an `nr`×`ntg` layout under `mode`, with the serving
    /// workload seed (the seed fixes the synthetic band/potential data, so
    /// a served batch and a direct engine run on the same configuration are
    /// bit-comparable).
    pub fn config(self, nbnd: usize, nr: usize, ntg: usize, mode: Mode, seed: u64) -> FftxConfig {
        FftxConfig {
            ecutwfc: self.ecutwfc(),
            alat: self.alat(),
            nbnd,
            nr,
            ntg,
            mode,
            decomp: Decomposition::Slab,
            seed,
        }
    }
}

/// Builds the batch [`Problem`] of a class the class-aware way: classes on
/// cutoff-derived grids go through [`Problem::new`]; a class with a grid
/// override (today only [`GeometryClass::Prime`]) goes through
/// [`Problem::with_grid`] on its explicit grid. Every site that turns a
/// batch into a `Problem` — the serving executor, the tuner's DES pricing,
/// and the golden tests' direct re-runs — must route through this function
/// so served and direct executions of one class build identical problems.
pub fn class_problem(class: GeometryClass, config: FftxConfig) -> Arc<Problem> {
    match class.grid_override(&config) {
        Some(grid) => Problem::with_grid(config, grid),
        None => Problem::new(config),
    }
}

/// Latency expectation of a request, in virtual seconds from arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DeadlineClass {
    /// Interactive traffic: tight budget, shed early under overload.
    Interactive,
    /// Default traffic.
    Standard,
    /// Throughput traffic: generous budget, sheds last.
    Batch,
}

impl DeadlineClass {
    /// Every class, tightest first.
    pub const ALL: [DeadlineClass; 3] = [
        DeadlineClass::Interactive,
        DeadlineClass::Standard,
        DeadlineClass::Batch,
    ];

    /// Short name used in reports and CSVs.
    pub fn name(self) -> &'static str {
        match self {
            DeadlineClass::Interactive => "interactive",
            DeadlineClass::Standard => "standard",
            DeadlineClass::Batch => "batch",
        }
    }

    /// Latency budget in virtual seconds: a request whose estimated wait
    /// already exceeds this at arrival is shed instead of queued.
    pub fn budget_s(self) -> f64 {
        match self {
            DeadlineClass::Interactive => 0.05,
            DeadlineClass::Standard => 0.25,
            DeadlineClass::Batch => 2.0,
        }
    }
}

/// One wavefunction-transform request: apply the real-space-diagonal
/// operator to `bands` fresh bands of the class geometry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// Unique, monotonically-assigned request id.
    pub id: u64,
    /// Tenant (client) the request belongs to.
    pub tenant: u32,
    /// Problem geometry class.
    pub class: GeometryClass,
    /// Number of bands to transform (the unit of batch coalescing).
    pub bands: usize,
    /// Latency expectation.
    pub deadline: DeadlineClass,
    /// Arrival time in virtual seconds.
    pub arrival_s: f64,
}

/// Typed rejection returned by admission control — the caller can tell a
/// capacity problem from a fairness cap from a hopeless deadline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RejectReason {
    /// The bounded queue is full.
    QueueFull {
        /// Requests currently queued.
        depth: usize,
        /// Queue capacity.
        cap: usize,
    },
    /// The tenant already holds its fair share of the queue.
    TenantOverShare {
        /// The tenant.
        tenant: u32,
        /// Requests the tenant holds in the queue.
        held: usize,
        /// Per-tenant slot cap.
        cap: usize,
    },
    /// The estimated completion time already exceeds the deadline budget;
    /// queueing the request would only waste capacity on a late answer.
    DeadlineUnmeetable {
        /// Estimated wait + service at arrival (virtual seconds).
        estimate_s: f64,
        /// The request's budget (virtual seconds).
        budget_s: f64,
    },
    /// The fleet's brown-out ladder refused the request: under sustained
    /// pressure the fleet sheds whole deadline classes (then rejects all
    /// new work) instead of queueing requests it cannot serve in time.
    FleetDegraded {
        /// Degradation-level name at rejection (see `degrade`), or
        /// `no_shard` when no shard was admitting at all.
        level: &'static str,
    },
}

impl RejectReason {
    /// Stable short label of the rejection class (counter key, CSV column).
    pub fn kind(&self) -> &'static str {
        match self {
            RejectReason::QueueFull { .. } => "queue_full",
            RejectReason::TenantOverShare { .. } => "tenant_share",
            RejectReason::DeadlineUnmeetable { .. } => "deadline",
            RejectReason::FleetDegraded { .. } => "degraded",
        }
    }
}

/// FNV-1a over the exact bit patterns of band coefficients — the same
/// construction as the golden bitwise suite, so serving-layer hashes and
/// direct-engine hashes are comparable.
pub fn band_hash(bands: &[Vec<Complex64>]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bits: u64| {
        for byte in bits.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(bands.len() as u64);
    for band in bands {
        eat(band.len() as u64);
        for c in band {
            eat(c.re.to_bits());
            eat(c.im.to_bits());
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_configs_validate() {
        for class in GeometryClass::ALL {
            let c = class.config(4, 2, 2, Mode::Original, 1);
            c.validate();
            assert_eq!(c.ecutwfc, class.ecutwfc());
            assert!(!class.name().is_empty());
        }
        assert_eq!(GeometryClass::Small.index(), 0);
        assert_eq!(GeometryClass::Large.index(), 2);
        assert_eq!(GeometryClass::Prime.index(), 3);
        for (i, class) in GeometryClass::ALL.iter().enumerate() {
            assert_eq!(class.index(), i);
        }
    }

    #[test]
    fn prime_class_forces_a_bluestein_dimension() {
        let cfg = GeometryClass::Prime.config(4, 2, 2, Mode::Original, 1);
        let grid = GeometryClass::Prime
            .grid_override(&cfg)
            .expect("prime class overrides its grid");
        assert_eq!(grid.nr3, PRIME_NR3);
        // No good FFT order equals a prime above the direct-size limit.
        assert_ne!(fftx_fft::good_fft_order(PRIME_NR3 - 1), PRIME_NR3);
        for class in [GeometryClass::Small, GeometryClass::Medium, GeometryClass::Large] {
            assert!(class.grid_override(&class.config(4, 2, 2, Mode::Original, 1)).is_none());
        }
    }

    #[test]
    fn class_problem_builds_the_override_grid() {
        let cfg = GeometryClass::Prime.config(4, 2, 2, Mode::Original, 1);
        let p = class_problem(GeometryClass::Prime, cfg);
        assert_eq!(p.grid().nr3, PRIME_NR3);
        let small = class_problem(
            GeometryClass::Small,
            GeometryClass::Small.config(4, 2, 2, Mode::Original, 1),
        );
        assert_ne!(small.grid().nr3, PRIME_NR3);
    }

    #[test]
    fn deadline_budgets_are_ordered() {
        assert!(DeadlineClass::Interactive.budget_s() < DeadlineClass::Standard.budget_s());
        assert!(DeadlineClass::Standard.budget_s() < DeadlineClass::Batch.budget_s());
    }

    #[test]
    fn reject_kinds_are_distinct() {
        let kinds = [
            RejectReason::QueueFull { depth: 1, cap: 1 }.kind(),
            RejectReason::TenantOverShare { tenant: 0, held: 1, cap: 1 }.kind(),
            RejectReason::DeadlineUnmeetable { estimate_s: 1.0, budget_s: 0.5 }.kind(),
            RejectReason::FleetDegraded { level: "reject_new" }.kind(),
        ];
        assert_eq!(kinds.len(), 4);
        assert!(kinds.windows(2).all(|w| w[0] != w[1]));
    }

    #[test]
    fn band_hash_discriminates_shape_and_value() {
        let a = vec![vec![Complex64 { re: 1.0, im: 2.0 }]];
        let b = vec![vec![Complex64 { re: 1.0, im: 2.0 }, Complex64 { re: 0.0, im: 0.0 }]];
        let c = vec![vec![Complex64 { re: 1.0, im: 2.5 }]];
        assert_eq!(band_hash(&a), band_hash(&a));
        assert_ne!(band_hash(&a), band_hash(&b));
        assert_ne!(band_hash(&a), band_hash(&c));
    }
}
