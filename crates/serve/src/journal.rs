//! The durable job journal: an append-only write-ahead log of every fleet
//! state transition, with a lossless text encoding and a machine-checked
//! conservation audit.
//!
//! Every mutation of fleet state — acceptance, shedding, batch formation,
//! dispatch, completion, heartbeats, shard death, failover, degradation —
//! is journaled *before* it is applied, and the supervisor's `apply` path
//! is the only way state changes. Recovery is therefore exact: replaying a
//! journal prefix through `apply` reconstructs the queues, in-flight
//! batches, breakers, and the degradation ladder at the crash point, and
//! continuing the (deterministic, virtual-time) serving loop from there
//! produces a journal byte-identical to the uninterrupted run's.
//!
//! Floats are encoded as the hex of their IEEE-754 bit patterns, so
//! encode → decode is the identity on every record and two journals can be
//! compared byte-for-byte.

use crate::error::ServeError;
use crate::request::{DeadlineClass, GeometryClass, Request};
use fftx_fault::mix64;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// The per-job idempotency key: pure in `(seed, id)`, carried in the
/// `Accepted` record and used by the completion guard to recognise a job
/// it has already completed — a batch re-run after failover, or a report
/// from a shard that was spuriously declared dead, completes each job at
/// most once.
pub fn idempotency_key(seed: u64, id: u64) -> u64 {
    mix64(seed ^ mix64(id.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

/// One journaled fleet state transition.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A request was admitted and routed to `shard`.
    Accepted {
        /// The request.
        req: Request,
        /// Idempotency key ([`idempotency_key`]).
        key: u64,
        /// Shard the request was routed to.
        shard: u32,
    },
    /// A request was refused (admission or the degradation ladder).
    Shed {
        /// The request.
        req: Request,
        /// Rejection kind ([`crate::request::RejectReason::kind`]).
        kind: String,
    },
    /// `shard` coalesced the queued requests `jobs` (in batch-member
    /// order) into batch `batch`.
    Batched {
        /// The shard.
        shard: u32,
        /// Fleet-unique batch id.
        batch: u64,
        /// Member request ids, band order.
        jobs: Vec<u64>,
    },
    /// Batch `batch` started executing on `shard`.
    Started {
        /// The shard.
        shard: u32,
        /// The batch.
        batch: u64,
        /// Dispatch time (virtual seconds).
        start_s: f64,
        /// Service time under the chosen placement, slow-node factor
        /// included (virtual seconds).
        service_s: f64,
        /// Placement: first parallel dimension R.
        nr: usize,
        /// Placement: task groups / workers per rank.
        ntg: usize,
        /// Placement: index into `SchedulerPolicy::ALL`.
        policy: usize,
        /// Placement: index into `Decomposition::ALL`.
        decomp: usize,
        /// Hash-ring membership epoch at dispatch: the number of
        /// joins/leaves folded into the tenant→shard ring so far. Replay
        /// validates it against the ring it reconstructed from the
        /// membership records, so a resumed fleet that would route
        /// differently after a resharding event fails loudly instead of
        /// silently diverging.
        epoch: u64,
    },
    /// Job `job` of batch `batch` completed on `shard`.
    Completed {
        /// The shard.
        shard: u32,
        /// The batch.
        batch: u64,
        /// The request id.
        job: u64,
        /// Completion time (virtual seconds).
        done_s: f64,
        /// FNV hash of the job's result bands (real executions only).
        hash: Option<u64>,
    },
    /// A completion report for a job already completed elsewhere — the
    /// idempotency guard swallowed it (failover re-run racing a shard that
    /// was declared dead while actually alive).
    Suppressed {
        /// Shard whose report was suppressed.
        shard: u32,
        /// The batch it came from.
        batch: u64,
        /// The request id.
        job: u64,
        /// Virtual time of the suppressed report.
        t_s: f64,
        /// FNV hash of the zombie report's result bands (real executions
        /// only). Hashes are positional within a batch, so the audit
        /// compares them per `(batch, job)`: a second record for the same
        /// pair with a different hash is silent-corruption evidence.
        hash: Option<u64>,
    },
    /// The ABFT verification layer caught corrupted FFT results in
    /// `batch` on `shard` before any member completed. Always precedes
    /// the batch's completions; [`Record::Recomputed`] journals the
    /// recovery.
    CorruptionDetected {
        /// Shard whose execution failed verification.
        shard: u32,
        /// The batch.
        batch: u64,
        /// Verification failures the run absorbed.
        detections: u64,
        /// Virtual time of the report.
        t_s: f64,
    },
    /// Batch `batch` recovered from detected corruption: `rollbacks`
    /// checkpoint restores re-ran the work until it verified clean.
    Recomputed {
        /// The shard.
        shard: u32,
        /// The batch.
        batch: u64,
        /// Checkpoint rollbacks the recovery took.
        rollbacks: u64,
        /// Virtual time of the report.
        t_s: f64,
    },
    /// One health-check probe of `shard`.
    Heartbeat {
        /// The shard.
        shard: u32,
        /// Supervisor tick index.
        tick: u64,
        /// Probe time (virtual seconds).
        t_s: f64,
        /// Whether the probe was answered.
        ok: bool,
    },
    /// The supervisor declared `shard` dead after `death_threshold`
    /// consecutive missed heartbeats.
    ShardDown {
        /// The shard.
        shard: u32,
        /// Declaration time (virtual seconds).
        t_s: f64,
    },
    /// Job `job` was drained from dead shard `from` and re-queued at the
    /// front of `to`'s admission queue.
    Failover {
        /// The dead shard.
        from: u32,
        /// The surviving shard that inherits the job.
        to: u32,
        /// The request id.
        job: u64,
        /// Failover time (virtual seconds).
        t_s: f64,
    },
    /// The degradation ladder moved to level `level`.
    Degraded {
        /// Index into [`crate::degrade::DegradeLevel::ALL`].
        level: usize,
        /// Transition time (virtual seconds).
        t_s: f64,
    },
    /// The autoscaler activated `shard` from the provisioned pool: it
    /// joins the hash ring immediately and starts taking dispatches after
    /// its warm-up ticks.
    ScaleUp {
        /// The activated shard.
        shard: u32,
        /// Decision time (virtual seconds).
        t_s: f64,
    },
    /// The autoscaler retired `shard`: it leaves the hash ring and stops
    /// taking traffic. Only a fully idle shard (empty queue, nothing
    /// pending or in flight) is ever retired, so nothing needs draining.
    ScaleDown {
        /// The retired shard.
        shard: u32,
        /// Decision time (virtual seconds).
        t_s: f64,
    },
    /// Idle shard `to` stole the journaled-but-not-yet-started batch
    /// `batch` from busy shard `from`. The batch's members, placement, and
    /// id are unchanged, so the thief's execution is bit-identical to what
    /// the origin's would have been; the conservation audit holds every
    /// stolen batch to exactly-once across origin and thief.
    Stolen {
        /// The busy origin shard the batch was formed on.
        from: u32,
        /// The idle thief that will start it.
        to: u32,
        /// The batch.
        batch: u64,
        /// Steal time (virtual seconds).
        t_s: f64,
    },
}

fn f64_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn parse_u64(tok: Option<&str>, line: usize) -> Result<u64, ServeError> {
    tok.and_then(|t| t.parse().ok())
        .ok_or_else(|| ServeError::Journal(format!("line {line}: bad integer field")))
}

fn parse_usize(tok: Option<&str>, line: usize) -> Result<usize, ServeError> {
    tok.and_then(|t| t.parse().ok())
        .ok_or_else(|| ServeError::Journal(format!("line {line}: bad integer field")))
}

fn parse_f64_bits(tok: Option<&str>, line: usize) -> Result<f64, ServeError> {
    tok.and_then(|t| u64::from_str_radix(t, 16).ok())
        .map(f64::from_bits)
        .ok_or_else(|| ServeError::Journal(format!("line {line}: bad float bit pattern")))
}

/// The optional result-hash field shared by `C` and `Z` records: 16 hex
/// digits or the literal `-`.
fn parse_hash(tok: Option<&str>, line: usize) -> Result<Option<u64>, ServeError> {
    match tok {
        Some("-") => Ok(None),
        Some(t) => u64::from_str_radix(t, 16)
            .map(Some)
            .map_err(|_| ServeError::Journal(format!("line {line}: bad hash"))),
        None => Err(ServeError::Journal(format!("line {line}: missing hash"))),
    }
}

fn encode_req(out: &mut String, req: &Request) {
    let _ = write!(
        out,
        "{} {} {} {} {} {}",
        req.id,
        req.tenant,
        req.class.index(),
        req.bands,
        req.deadline as usize,
        f64_hex(req.arrival_s),
    );
}

fn decode_req<'a>(
    toks: &mut impl Iterator<Item = &'a str>,
    line: usize,
) -> Result<Request, ServeError> {
    let id = parse_u64(toks.next(), line)?;
    let tenant = parse_u64(toks.next(), line)? as u32;
    let class_idx = parse_usize(toks.next(), line)?;
    let class = *GeometryClass::ALL
        .get(class_idx)
        .ok_or_else(|| ServeError::Journal(format!("line {line}: class index {class_idx}")))?;
    let bands = parse_usize(toks.next(), line)?;
    let deadline_idx = parse_usize(toks.next(), line)?;
    let deadline = *DeadlineClass::ALL
        .get(deadline_idx)
        .ok_or_else(|| ServeError::Journal(format!("line {line}: deadline index {deadline_idx}")))?;
    let arrival_s = parse_f64_bits(toks.next(), line)?;
    Ok(Request { id, tenant, class, bands, deadline, arrival_s })
}

impl Record {
    /// One-line lossless text encoding (no trailing newline).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        match self {
            Record::Accepted { req, key, shard } => {
                out.push_str("A ");
                encode_req(&mut out, req);
                let _ = write!(out, " {key:016x} {shard}");
            }
            Record::Shed { req, kind } => {
                out.push_str("S ");
                encode_req(&mut out, req);
                let _ = write!(out, " {kind}");
            }
            Record::Batched { shard, batch, jobs } => {
                let _ = write!(out, "B {shard} {batch} {}", jobs.len());
                for j in jobs {
                    let _ = write!(out, " {j}");
                }
            }
            Record::Started { shard, batch, start_s, service_s, nr, ntg, policy, decomp, epoch } => {
                let _ = write!(
                    out,
                    "T {shard} {batch} {} {} {nr} {ntg} {policy} {decomp} {epoch}",
                    f64_hex(*start_s),
                    f64_hex(*service_s),
                );
            }
            Record::Completed { shard, batch, job, done_s, hash } => {
                let _ = write!(out, "C {shard} {batch} {job} {}", f64_hex(*done_s));
                match hash {
                    Some(h) => {
                        let _ = write!(out, " {h:016x}");
                    }
                    None => out.push_str(" -"),
                }
            }
            Record::Suppressed { shard, batch, job, t_s, hash } => {
                let _ = write!(out, "Z {shard} {batch} {job} {}", f64_hex(*t_s));
                match hash {
                    Some(h) => {
                        let _ = write!(out, " {h:016x}");
                    }
                    None => out.push_str(" -"),
                }
            }
            Record::CorruptionDetected { shard, batch, detections, t_s } => {
                let _ = write!(out, "X {shard} {batch} {detections} {}", f64_hex(*t_s));
            }
            Record::Recomputed { shard, batch, rollbacks, t_s } => {
                let _ = write!(out, "R {shard} {batch} {rollbacks} {}", f64_hex(*t_s));
            }
            Record::Heartbeat { shard, tick, t_s, ok } => {
                let _ = write!(
                    out,
                    "H {shard} {tick} {} {}",
                    f64_hex(*t_s),
                    u8::from(*ok)
                );
            }
            Record::ShardDown { shard, t_s } => {
                let _ = write!(out, "D {shard} {}", f64_hex(*t_s));
            }
            Record::Failover { from, to, job, t_s } => {
                let _ = write!(out, "F {from} {to} {job} {}", f64_hex(*t_s));
            }
            Record::Degraded { level, t_s } => {
                let _ = write!(out, "G {level} {}", f64_hex(*t_s));
            }
            Record::ScaleUp { shard, t_s } => {
                let _ = write!(out, "U {shard} {}", f64_hex(*t_s));
            }
            Record::ScaleDown { shard, t_s } => {
                let _ = write!(out, "V {shard} {}", f64_hex(*t_s));
            }
            Record::Stolen { from, to, batch, t_s } => {
                let _ = write!(out, "W {from} {to} {batch} {}", f64_hex(*t_s));
            }
        }
        out
    }

    /// Decodes one encoded line (`line` is the 1-based line number used in
    /// error messages).
    ///
    /// # Errors
    /// [`ServeError::Journal`] on any malformed field.
    pub fn decode(s: &str, line: usize) -> Result<Record, ServeError> {
        let mut toks = s.split_ascii_whitespace();
        let tag = toks
            .next()
            .ok_or_else(|| ServeError::Journal(format!("line {line}: empty record")))?;
        let rec = match tag {
            "A" => {
                let req = decode_req(&mut toks, line)?;
                let key = toks
                    .next()
                    .and_then(|t| u64::from_str_radix(t, 16).ok())
                    .ok_or_else(|| ServeError::Journal(format!("line {line}: bad key")))?;
                let shard = parse_u64(toks.next(), line)? as u32;
                Record::Accepted { req, key, shard }
            }
            "S" => {
                let req = decode_req(&mut toks, line)?;
                let kind = toks
                    .next()
                    .ok_or_else(|| ServeError::Journal(format!("line {line}: missing shed kind")))?
                    .to_string();
                Record::Shed { req, kind }
            }
            "B" => {
                let shard = parse_u64(toks.next(), line)? as u32;
                let batch = parse_u64(toks.next(), line)?;
                let n = parse_usize(toks.next(), line)?;
                let mut jobs = Vec::with_capacity(n);
                for _ in 0..n {
                    jobs.push(parse_u64(toks.next(), line)?);
                }
                Record::Batched { shard, batch, jobs }
            }
            "T" => Record::Started {
                shard: parse_u64(toks.next(), line)? as u32,
                batch: parse_u64(toks.next(), line)?,
                start_s: parse_f64_bits(toks.next(), line)?,
                service_s: parse_f64_bits(toks.next(), line)?,
                nr: parse_usize(toks.next(), line)?,
                ntg: parse_usize(toks.next(), line)?,
                policy: parse_usize(toks.next(), line)?,
                decomp: parse_usize(toks.next(), line)?,
                epoch: parse_u64(toks.next(), line)?,
            },
            "C" => {
                let shard = parse_u64(toks.next(), line)? as u32;
                let batch = parse_u64(toks.next(), line)?;
                let job = parse_u64(toks.next(), line)?;
                let done_s = parse_f64_bits(toks.next(), line)?;
                let hash = parse_hash(toks.next(), line)?;
                Record::Completed { shard, batch, job, done_s, hash }
            }
            "Z" => Record::Suppressed {
                shard: parse_u64(toks.next(), line)? as u32,
                batch: parse_u64(toks.next(), line)?,
                job: parse_u64(toks.next(), line)?,
                t_s: parse_f64_bits(toks.next(), line)?,
                hash: parse_hash(toks.next(), line)?,
            },
            "X" => Record::CorruptionDetected {
                shard: parse_u64(toks.next(), line)? as u32,
                batch: parse_u64(toks.next(), line)?,
                detections: parse_u64(toks.next(), line)?,
                t_s: parse_f64_bits(toks.next(), line)?,
            },
            "R" => Record::Recomputed {
                shard: parse_u64(toks.next(), line)? as u32,
                batch: parse_u64(toks.next(), line)?,
                rollbacks: parse_u64(toks.next(), line)?,
                t_s: parse_f64_bits(toks.next(), line)?,
            },
            "H" => Record::Heartbeat {
                shard: parse_u64(toks.next(), line)? as u32,
                tick: parse_u64(toks.next(), line)?,
                t_s: parse_f64_bits(toks.next(), line)?,
                ok: parse_u64(toks.next(), line)? != 0,
            },
            "D" => Record::ShardDown {
                shard: parse_u64(toks.next(), line)? as u32,
                t_s: parse_f64_bits(toks.next(), line)?,
            },
            "F" => Record::Failover {
                from: parse_u64(toks.next(), line)? as u32,
                to: parse_u64(toks.next(), line)? as u32,
                job: parse_u64(toks.next(), line)?,
                t_s: parse_f64_bits(toks.next(), line)?,
            },
            "G" => Record::Degraded {
                level: parse_usize(toks.next(), line)?,
                t_s: parse_f64_bits(toks.next(), line)?,
            },
            "U" => Record::ScaleUp {
                shard: parse_u64(toks.next(), line)? as u32,
                t_s: parse_f64_bits(toks.next(), line)?,
            },
            "V" => Record::ScaleDown {
                shard: parse_u64(toks.next(), line)? as u32,
                t_s: parse_f64_bits(toks.next(), line)?,
            },
            "W" => Record::Stolen {
                from: parse_u64(toks.next(), line)? as u32,
                to: parse_u64(toks.next(), line)? as u32,
                batch: parse_u64(toks.next(), line)?,
                t_s: parse_f64_bits(toks.next(), line)?,
            },
            other => {
                return Err(ServeError::Journal(format!(
                    "line {line}: unknown record tag '{other}'"
                )))
            }
        };
        if toks.next().is_some() {
            return Err(ServeError::Journal(format!("line {line}: trailing fields")));
        }
        Ok(rec)
    }
}

/// What the conservation audit found: the accounting of every accepted
/// job across the journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Conservation {
    /// Requests accepted.
    pub accepted: usize,
    /// Requests shed.
    pub shed: usize,
    /// Accepted requests completed (exactly once each).
    pub completed: usize,
    /// Duplicate completion reports the idempotency guard suppressed.
    pub suppressed: usize,
    /// Completions carrying a result hash. Either every completion is
    /// hashed (real-execution journal) or none is (modeled journal) —
    /// the audit rejects a mix.
    pub hashed: usize,
    /// ABFT verification failures journaled (`CorruptionDetected` sums).
    pub corruption_detected: u64,
    /// Checkpoint rollbacks corruption recovery took (`Recomputed` sums).
    pub recomputed: u64,
    /// Batches an idle shard stole from a busy origin (`Stolen` records).
    /// Each is audited to exactly-once across origin and thief: only a
    /// formed-but-not-started batch may move, only its current owner may
    /// give it up, and every completion or zombie report of a stolen batch
    /// must come from the shard that owned it when the report landed.
    pub steals: usize,
    /// Accepted-but-not-completed request ids (empty on a finished run).
    pub open: Vec<u64>,
}

/// The append-only journal.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Journal {
    records: Vec<Record>,
}

impl Journal {
    /// An empty journal.
    pub fn new() -> Self {
        Journal { records: Vec::new() }
    }

    /// Appends one record.
    pub fn append(&mut self, rec: Record) {
        self.records.push(rec);
    }

    /// The records, append order.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the journal is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Lossless text encoding: one line per record.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        for rec in &self.records {
            out.push_str(&rec.encode());
            out.push('\n');
        }
        out
    }

    /// Decodes an [`encode`](Journal::encode)d journal.
    ///
    /// # Errors
    /// [`ServeError::Journal`] on any malformed line.
    pub fn decode(s: &str) -> Result<Journal, ServeError> {
        let mut j = Journal::new();
        for (i, line) in s.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            j.append(Record::decode(line, i + 1)?);
        }
        Ok(j)
    }

    /// The machine-checked conservation audit: every accepted job id is
    /// unique, is never also shed, and completes at most once; every
    /// completion (and suppressed duplicate) refers to an accepted job.
    ///
    /// The audit also checks result-hash integrity. Hash presence must be
    /// uniform — either every completion and suppressed report carries a
    /// hash (real executions) or none does (modeled service) — and any
    /// two records naming the same `(batch, job)` must agree on the hash:
    /// a zombie report that re-executed the same batch and got different
    /// bits is silent-corruption evidence, not a benign duplicate.
    ///
    /// Stolen batches are audited to exactly-once across origin and
    /// thief: a `Stolen` record must name a formed-but-not-started batch
    /// and its current owner, and every later report of that batch —
    /// completion or suppressed zombie — must come from the owner at that
    /// point. An origin that executed a batch it had already given up
    /// would trip the audit, not silently double-serve.
    ///
    /// # Errors
    /// [`ServeError::Journal`] naming the first violated invariant.
    pub fn conservation(&self) -> Result<Conservation, ServeError> {
        let mut accepted: BTreeMap<u64, u64> = BTreeMap::new(); // id -> key
        let mut shed: BTreeSet<u64> = BTreeSet::new();
        let mut completed: BTreeSet<u64> = BTreeSet::new();
        let mut suppressed = 0usize;
        let mut hashed = 0usize;
        let mut corruption_detected = 0u64;
        let mut recomputed = 0u64;
        let mut steals = 0usize;
        // Batch ownership: formed on a shard (`Batched`), possibly moved
        // by `Stolen` records, frozen once `Started`.
        let mut batch_owner: BTreeMap<u64, u32> = BTreeMap::new();
        let mut batch_started: BTreeSet<u64> = BTreeSet::new();
        let mut batch_stolen: BTreeSet<u64> = BTreeSet::new();
        // Whether this journal's completions carry hashes (set by the
        // first completion, then enforced), and the per-(batch, job)
        // hash agreement map.
        let mut hash_presence: Option<bool> = None;
        let mut batch_hashes: BTreeMap<(u64, u64), u64> = BTreeMap::new();
        let mut check_hash = |batch: u64,
                              job: u64,
                              hash: &Option<u64>,
                              presence: &mut Option<bool>,
                              what: &str|
         -> Result<(), ServeError> {
            match *presence {
                None => *presence = Some(hash.is_some()),
                Some(p) if p != hash.is_some() => {
                    return Err(ServeError::Journal(format!(
                        "{what} of job {job} {} a result hash in a journal whose completions {}",
                        if hash.is_some() { "carries" } else { "is missing" },
                        if p { "are hashed" } else { "are hashless" },
                    )))
                }
                Some(_) => {}
            }
            if let Some(h) = hash {
                match batch_hashes.get(&(batch, job)) {
                    Some(&prev) if prev != *h => {
                        return Err(ServeError::Journal(format!(
                            "{what} of job {job} in batch {batch} diverges from the recorded \
                             result hash ({prev:016x} vs {h:016x}) — silent corruption evidence"
                        )))
                    }
                    _ => {
                        batch_hashes.insert((batch, job), *h);
                    }
                }
            }
            Ok(())
        };
        for rec in &self.records {
            match rec {
                Record::Accepted { req, key, .. } => {
                    if shed.contains(&req.id) {
                        return Err(ServeError::Journal(format!(
                            "job {} both shed and accepted",
                            req.id
                        )));
                    }
                    if accepted.insert(req.id, *key).is_some() {
                        return Err(ServeError::Journal(format!(
                            "job {} accepted twice",
                            req.id
                        )));
                    }
                }
                Record::Shed { req, .. } => {
                    if accepted.contains_key(&req.id) {
                        return Err(ServeError::Journal(format!(
                            "job {} both accepted and shed",
                            req.id
                        )));
                    }
                    shed.insert(req.id);
                }
                Record::Batched { shard, batch, .. } => {
                    let prev = batch_owner.insert(*batch, *shard);
                    if prev.is_some() {
                        return Err(ServeError::Journal(format!(
                            "batch {batch} formed twice"
                        )));
                    }
                }
                Record::Started { shard, batch, .. } => {
                    match batch_owner.get(batch) {
                        Some(owner) if owner == shard => {}
                        Some(owner) => {
                            return Err(ServeError::Journal(format!(
                                "batch {batch} started on shard {shard} but owned by {owner}"
                            )))
                        }
                        // Batches formed before the journal prefix began
                        // are unknown to the audit; tolerate them the way
                        // the completion checks tolerate unknown batches.
                        None => {}
                    }
                    batch_started.insert(*batch);
                }
                Record::Stolen { from, to, batch, .. } => {
                    if batch_started.contains(batch) {
                        return Err(ServeError::Journal(format!(
                            "batch {batch} stolen after it started"
                        )));
                    }
                    if from == to {
                        return Err(ServeError::Journal(format!(
                            "batch {batch} stolen from shard {from} by itself"
                        )));
                    }
                    match batch_owner.get(batch) {
                        Some(owner) if owner == from => {}
                        other => {
                            return Err(ServeError::Journal(format!(
                                "batch {batch} stolen from shard {from} but owned by {other:?}"
                            )))
                        }
                    }
                    batch_owner.insert(*batch, *to);
                    batch_stolen.insert(*batch);
                    steals += 1;
                }
                Record::Completed { shard, batch, job, hash, .. } => {
                    if !accepted.contains_key(job) {
                        return Err(ServeError::Journal(format!(
                            "job {job} completed but never accepted"
                        )));
                    }
                    if !completed.insert(*job) {
                        return Err(ServeError::Journal(format!(
                            "job {job} completed twice"
                        )));
                    }
                    if batch_stolen.contains(batch) && batch_owner.get(batch) != Some(shard) {
                        return Err(ServeError::Journal(format!(
                            "stolen batch {batch} completed job {job} on shard {shard}, \
                             which does not own it — double service across origin and thief"
                        )));
                    }
                    check_hash(*batch, *job, hash, &mut hash_presence, "completion")?;
                    if hash.is_some() {
                        hashed += 1;
                    }
                }
                Record::Suppressed { shard, batch, job, hash, .. } => {
                    if !completed.contains(job) {
                        return Err(ServeError::Journal(format!(
                            "job {job} suppressed before any completion"
                        )));
                    }
                    if batch_stolen.contains(batch) && batch_owner.get(batch) != Some(shard) {
                        return Err(ServeError::Journal(format!(
                            "stolen batch {batch} produced a zombie report from shard {shard}, \
                             which does not own it — the origin executed a batch it gave up"
                        )));
                    }
                    check_hash(*batch, *job, hash, &mut hash_presence, "zombie report")?;
                    suppressed += 1;
                }
                Record::CorruptionDetected { detections, .. } => {
                    corruption_detected += detections;
                }
                Record::Recomputed { rollbacks, .. } => {
                    recomputed += rollbacks;
                }
                _ => {}
            }
        }
        let open: Vec<u64> = accepted
            .keys()
            .filter(|id| !completed.contains(id))
            .copied()
            .collect();
        Ok(Conservation {
            accepted: accepted.len(),
            shed: shed.len(),
            completed: completed.len(),
            suppressed,
            hashed,
            corruption_detected,
            recomputed,
            steals,
            open,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64) -> Request {
        Request {
            id,
            tenant: id as u32 % 3,
            class: GeometryClass::ALL[id as usize % 4],
            bands: 2 + id as usize % 3,
            deadline: DeadlineClass::ALL[id as usize % 3],
            arrival_s: 0.125 * id as f64 + 1e-3,
        }
    }

    fn sample_records() -> Vec<Record> {
        vec![
            Record::Accepted { req: req(0), key: idempotency_key(7, 0), shard: 1 },
            Record::Shed { req: req(1), kind: "queue_full".into() },
            Record::Batched { shard: 1, batch: 0, jobs: vec![0] },
            Record::Started {
                shard: 1,
                batch: 0,
                start_s: 0.05,
                service_s: 0.021_375,
                nr: 2,
                ntg: 2,
                policy: 3,
                decomp: 1,
                epoch: 3,
            },
            Record::Heartbeat { shard: 0, tick: 3, t_s: 0.15, ok: true },
            Record::Heartbeat { shard: 1, tick: 3, t_s: 0.15, ok: false },
            Record::CorruptionDetected { shard: 1, batch: 0, detections: 2, t_s: 0.07 },
            Record::Recomputed { shard: 1, batch: 0, rollbacks: 2, t_s: 0.07 },
            Record::Completed { shard: 1, batch: 0, job: 0, done_s: 0.071_375, hash: Some(42) },
            Record::Suppressed { shard: 2, batch: 5, job: 0, t_s: 0.08, hash: Some(0x5a5a) },
            Record::ShardDown { shard: 2, t_s: 0.2 },
            Record::Failover { from: 2, to: 1, job: 9, t_s: 0.2 },
            Record::Degraded { level: 1, t_s: 0.25 },
            Record::ScaleUp { shard: 3, t_s: 0.25 },
            Record::Batched { shard: 3, batch: 2, jobs: vec![] },
            Record::Stolen { from: 3, to: 1, batch: 2, t_s: 0.3 },
            Record::ScaleDown { shard: 3, t_s: 0.35 },
            Record::Completed { shard: 1, batch: 1, job: 9, done_s: 0.3, hash: Some(0x2b) },
        ]
    }

    #[test]
    fn encode_decode_is_the_identity() {
        let mut j = Journal::new();
        // The round trip must survive awkward floats bit-exactly.
        let mut records = sample_records();
        records.push(Record::Started {
            shard: 0,
            batch: 7,
            start_s: 0.1 + 0.2, // 0.30000000000000004
            service_s: f64::MIN_POSITIVE,
            nr: 1,
            ntg: 4,
            policy: 0,
            decomp: 0,
            epoch: 0,
        });
        // Hashless completion and zombie report (modeled-service journal).
        records.push(Record::Completed { shard: 0, batch: 7, job: 3, done_s: 0.4, hash: None });
        records.push(Record::Suppressed { shard: 1, batch: 8, job: 3, t_s: 0.5, hash: None });
        for r in records {
            j.append(r);
        }
        let text = j.encode();
        let back = Journal::decode(&text).expect("decodes");
        assert_eq!(back, j);
        assert_eq!(back.encode(), text, "re-encode is byte-identical");
    }

    #[test]
    fn decode_rejects_malformed_lines() {
        assert!(Journal::decode("Q 1 2\n").is_err(), "unknown tag");
        assert!(Journal::decode("A 0 0 9 2 0 0000000000000000 aa 1\n").is_err(), "bad class");
        assert!(Journal::decode("H 0 1 zzzz 1\n").is_err(), "bad float bits");
        assert!(
            Journal::decode("Z 1 2 3 0000000000000000\n").is_err(),
            "zombie report without its hash field"
        );
        assert!(Journal::decode("X 1 2 zz 0000000000000000\n").is_err(), "bad detections");
        assert!(
            Journal::decode("T 0 1 0000000000000000 0000000000000000 1 1 0 0\n").is_err(),
            "dispatch without its ring epoch"
        );
        assert!(Journal::decode("U 0\n").is_err(), "scale-up without its time");
        assert!(Journal::decode("W 0 1 zz 0000000000000000\n").is_err(), "bad stolen batch");
        assert!(
            Journal::decode("D 0 0000000000000000 junk\n").is_err(),
            "trailing fields"
        );
        assert!(Journal::decode("").expect("empty ok").is_empty());
    }

    #[test]
    fn conservation_accounts_every_job_exactly_once() {
        let mut j = Journal::new();
        // Accepted jobs 0 and 9 (9 via the failover path), shed job 1,
        // one suppressed duplicate report.
        for r in sample_records() {
            match r {
                Record::Failover { .. } => {
                    j.append(Record::Accepted {
                        req: req(9),
                        key: idempotency_key(7, 9),
                        shard: 2,
                    });
                    j.append(r);
                }
                r => j.append(r),
            }
        }
        let c = j.conservation().expect("conserved");
        assert_eq!(c.accepted, 2);
        assert_eq!(c.shed, 1);
        assert_eq!(c.completed, 2);
        assert_eq!(c.suppressed, 1);
        assert_eq!(c.hashed, 2, "every completion in a real journal is hashed");
        assert_eq!(c.corruption_detected, 2);
        assert_eq!(c.recomputed, 2);
        assert_eq!(c.steals, 1);
        assert!(c.open.is_empty());
    }

    #[test]
    fn conservation_holds_stolen_batches_to_exactly_once() {
        let a = |id| Record::Accepted { req: req(id), key: idempotency_key(7, id), shard: 0 };
        let formed = Record::Batched { shard: 0, batch: 4, jobs: vec![0] };
        let steal = Record::Stolen { from: 0, to: 2, batch: 4, t_s: 0.1 };

        // The legitimate shape: formed on the origin, stolen, completed
        // by the thief.
        let mut j = Journal::new();
        j.append(a(0));
        j.append(formed.clone());
        j.append(steal.clone());
        j.append(Record::Completed { shard: 2, batch: 4, job: 0, done_s: 0.2, hash: None });
        let c = j.conservation().expect("thief completion is the owner's");
        assert_eq!(c.steals, 1);

        // The origin completing a batch it gave up is double service.
        let mut j = Journal::new();
        j.append(a(0));
        j.append(formed.clone());
        j.append(steal.clone());
        j.append(Record::Completed { shard: 0, batch: 4, job: 0, done_s: 0.2, hash: None });
        let err = j.conservation().expect_err("origin kept serving");
        assert!(err.to_string().contains("does not own it"), "{err}");

        // Stealing from a shard that does not own the batch.
        let mut j = Journal::new();
        j.append(a(0));
        j.append(formed.clone());
        j.append(Record::Stolen { from: 1, to: 2, batch: 4, t_s: 0.1 });
        assert!(j.conservation().is_err(), "steal from a non-owner");

        // Stealing a batch that already started.
        let mut j = Journal::new();
        j.append(a(0));
        j.append(formed.clone());
        j.append(Record::Started {
            shard: 0,
            batch: 4,
            start_s: 0.05,
            service_s: 0.01,
            nr: 1,
            ntg: 1,
            policy: 0,
            decomp: 0,
            epoch: 1,
        });
        j.append(steal.clone());
        let err = j.conservation().expect_err("steal after start");
        assert!(err.to_string().contains("after it started"), "{err}");

        // A self-steal is always inconsistent.
        let mut j = Journal::new();
        j.append(a(0));
        j.append(formed);
        j.append(Record::Stolen { from: 0, to: 0, batch: 4, t_s: 0.1 });
        assert!(j.conservation().is_err(), "self-steal");
    }

    #[test]
    fn conservation_rejects_mixed_hash_presence() {
        let a = |id| Record::Accepted { req: req(id), key: idempotency_key(7, id), shard: 0 };
        let mut j = Journal::new();
        j.append(a(0));
        j.append(a(3));
        j.append(Record::Completed { shard: 0, batch: 0, job: 0, done_s: 0.1, hash: Some(1) });
        j.append(Record::Completed { shard: 0, batch: 0, job: 3, done_s: 0.2, hash: None });
        let err = j.conservation().expect_err("mixed hash presence");
        assert!(err.to_string().contains("hash"), "{err}");

        // A zombie report must follow the journal's hash discipline too.
        let mut j = Journal::new();
        j.append(a(0));
        j.append(Record::Completed { shard: 0, batch: 0, job: 0, done_s: 0.1, hash: Some(1) });
        j.append(Record::Suppressed { shard: 1, batch: 2, job: 0, t_s: 0.2, hash: None });
        assert!(j.conservation().is_err(), "hashless zombie in a hashed journal");
    }

    #[test]
    fn conservation_catches_a_divergent_zombie_hash() {
        let a = Record::Accepted { req: req(0), key: idempotency_key(7, 0), shard: 0 };
        let c = Record::Completed { shard: 0, batch: 4, job: 0, done_s: 0.1, hash: Some(0xAB) };

        // A zombie report of the SAME batch with the same hash is a benign
        // duplicate; a different hash is silent-corruption evidence.
        let mut j = Journal::new();
        j.append(a.clone());
        j.append(c.clone());
        j.append(Record::Suppressed { shard: 1, batch: 4, job: 0, t_s: 0.2, hash: Some(0xAB) });
        let cons = j.conservation().expect("agreeing duplicate is benign");
        assert_eq!(cons.suppressed, 1);

        let mut j = Journal::new();
        j.append(a);
        j.append(c);
        j.append(Record::Suppressed { shard: 1, batch: 4, job: 0, t_s: 0.2, hash: Some(0xCD) });
        let err = j.conservation().expect_err("divergent zombie hash");
        assert!(err.to_string().contains("silent corruption"), "{err}");
    }

    #[test]
    fn conservation_catches_loss_and_duplication() {
        let a = Record::Accepted { req: req(0), key: 1, shard: 0 };
        let c = Record::Completed { shard: 0, batch: 0, job: 0, done_s: 1.0, hash: None };

        // Duplicate completion.
        let mut j = Journal::new();
        j.append(a.clone());
        j.append(c.clone());
        j.append(c.clone());
        assert!(j.conservation().is_err());

        // Completion of a never-accepted job.
        let mut j = Journal::new();
        j.append(c.clone());
        assert!(j.conservation().is_err());

        // Accepted and shed.
        let mut j = Journal::new();
        j.append(a.clone());
        j.append(Record::Shed { req: req(0), kind: "deadline".into() });
        assert!(j.conservation().is_err());

        // An open (lost) job is visible, not an error: a crash-point
        // prefix legitimately holds open jobs.
        let mut j = Journal::new();
        j.append(a);
        let cons = j.conservation().expect("prefix ok");
        assert_eq!(cons.open, vec![0]);
    }

    #[test]
    fn idempotency_keys_are_stable_and_distinct() {
        let k = idempotency_key(20170814, 5);
        assert_eq!(k, idempotency_key(20170814, 5));
        assert_ne!(k, idempotency_key(20170814, 6));
        assert_ne!(k, idempotency_key(20170815, 5));
    }
}
