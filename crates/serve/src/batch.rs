//! Batch formation: coalescing compatible queued requests onto one
//! `Problem` so the plan/arena/FFT-plan machinery is amortised across
//! requests — the serving-layer analogue of the paper's band grouping
//! (`ntg` bands per pipeline pass).
//!
//! Invariants the planner maintains (pinned by the proptests):
//!
//! * **Compatibility** — a batch contains one geometry class only; the
//!   class of the queue head decides (strict FIFO at the head, so no class
//!   can be starved).
//! * **Per-tenant ordering** — once one of a tenant's requests is passed
//!   over (wrong class, or the batch is full), no later request of that
//!   tenant joins the batch: a tenant's requests complete in submission
//!   order.
//! * **Determinism** — the plan is a pure function of the queue contents
//!   and the configuration.

use crate::error::ServeError;
use crate::request::{GeometryClass, Request};
use std::collections::BTreeSet;

/// Batch-formation knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Maximum coalesced (payload) bands per batch.
    pub max_bands: usize,
    /// The batch's band count is padded up to a multiple of this, so every
    /// candidate placement's task-group count divides it (filler bands are
    /// computed and discarded).
    pub pad_to: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_bands: 16,
            pad_to: 4,
        }
    }
}

/// One request inside a batch and the contiguous band range assigned to it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchMember {
    /// The coalesced request.
    pub request: Request,
    /// First band index of the request inside the batch problem.
    pub band_start: usize,
}

/// A formed batch: compatible requests mapped onto contiguous band ranges
/// of one problem.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    /// Geometry class of every member.
    pub class: GeometryClass,
    /// Members in queue order, with band ranges assigned front to back.
    pub members: Vec<BatchMember>,
    /// Bands carrying request payload (sum of member band counts).
    pub payload_bands: usize,
    /// Band count of the batch problem (`payload_bands` padded up to a
    /// multiple of [`BatchConfig::pad_to`]).
    pub nbnd: usize,
}

/// Plans the next batch over `queue` (front first) without mutating it:
/// returns the queue positions that would be coalesced. Empty queue plans
/// nothing; a non-empty queue always plans at least the head request.
pub fn plan_batch<'a>(
    queue: impl IntoIterator<Item = &'a Request>,
    cfg: &BatchConfig,
) -> Vec<usize> {
    let mut taken = Vec::new();
    let mut blocked: BTreeSet<u32> = BTreeSet::new();
    let mut class: Option<GeometryClass> = None;
    let mut bands = 0usize;
    for (pos, req) in queue.into_iter().enumerate() {
        let class = *class.get_or_insert(req.class);
        let compatible = req.class == class && !blocked.contains(&req.tenant);
        // The head request always joins (bands == 0), even when larger than
        // max_bands — otherwise an oversized request would wedge the queue.
        if compatible && (bands == 0 || bands + req.bands <= cfg.max_bands) {
            taken.push(pos);
            bands += req.bands;
        } else {
            blocked.insert(req.tenant);
        }
    }
    taken
}

/// Materialises the planned batch: assigns contiguous band ranges in queue
/// order and pads the band count. `members` must be the requests at the
/// positions [`plan_batch`] returned, in that order.
///
/// # Errors
/// [`ServeError::EmptyBatch`] on an empty member set,
/// [`ServeError::MixedClasses`] when the members span geometry classes —
/// both indicate a planner/queue desync, reported instead of panicking so
/// a long-running server can surface the inconsistency.
pub fn assemble(members: Vec<Request>, cfg: &BatchConfig) -> Result<Batch, ServeError> {
    let Some(head) = members.first() else {
        return Err(ServeError::EmptyBatch);
    };
    let class = head.class;
    if let Some(odd) = members.iter().find(|r| r.class != class) {
        return Err(ServeError::MixedClasses {
            expected: class.name(),
            found: odd.class.name(),
        });
    }
    let mut placed = Vec::with_capacity(members.len());
    let mut next = 0usize;
    for request in members {
        placed.push(BatchMember {
            request,
            band_start: next,
        });
        next += request.bands;
    }
    let pad = cfg.pad_to.max(1);
    Ok(Batch {
        class,
        members: placed,
        payload_bands: next,
        nbnd: next.div_ceil(pad) * pad,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::DeadlineClass;

    fn req(id: u64, tenant: u32, class: GeometryClass, bands: usize) -> Request {
        Request {
            id,
            tenant,
            class,
            bands,
            deadline: DeadlineClass::Standard,
            arrival_s: id as f64,
        }
    }

    #[test]
    fn empty_queue_plans_nothing() {
        assert!(plan_batch([], &BatchConfig::default()).is_empty());
    }

    #[test]
    fn head_class_decides_and_incompatible_are_skipped() {
        let queue = vec![
            req(0, 0, GeometryClass::Small, 2),
            req(1, 1, GeometryClass::Large, 2),
            req(2, 2, GeometryClass::Small, 2),
        ];
        let plan = plan_batch(&queue, &BatchConfig::default());
        assert_eq!(plan, vec![0, 2]);
    }

    #[test]
    fn skipped_tenant_blocks_its_later_requests() {
        // Tenant 1's Large request is skipped; its later Small request must
        // not overtake it into the batch.
        let queue = vec![
            req(0, 0, GeometryClass::Small, 2),
            req(1, 1, GeometryClass::Large, 2),
            req(2, 1, GeometryClass::Small, 2),
            req(3, 2, GeometryClass::Small, 2),
        ];
        let plan = plan_batch(&queue, &BatchConfig::default());
        assert_eq!(plan, vec![0, 3]);
    }

    #[test]
    fn band_capacity_bounds_the_batch() {
        let queue = vec![
            req(0, 0, GeometryClass::Small, 3),
            req(1, 1, GeometryClass::Small, 3),
            req(2, 2, GeometryClass::Small, 3),
        ];
        let cfg = BatchConfig { max_bands: 6, pad_to: 4 };
        let plan = plan_batch(&queue, &cfg);
        assert_eq!(plan, vec![0, 1]);
    }

    #[test]
    fn oversized_head_still_forms_a_batch() {
        let queue = vec![req(0, 0, GeometryClass::Small, 9)];
        let cfg = BatchConfig { max_bands: 4, pad_to: 4 };
        assert_eq!(plan_batch(&queue, &cfg), vec![0]);
    }

    #[test]
    fn full_batch_blocks_the_skipped_tenants() {
        // Tenant 1 is passed over for capacity; its second request cannot
        // join even though capacity remains for it.
        let queue = vec![
            req(0, 0, GeometryClass::Small, 4),
            req(1, 1, GeometryClass::Small, 4),
            req(2, 1, GeometryClass::Small, 1),
            req(3, 2, GeometryClass::Small, 1),
        ];
        let cfg = BatchConfig { max_bands: 5, pad_to: 4 };
        let plan = plan_batch(&queue, &cfg);
        assert_eq!(plan, vec![0, 3]);
    }

    #[test]
    fn assemble_assigns_contiguous_ranges_and_pads() {
        let members = vec![
            req(0, 0, GeometryClass::Small, 2),
            req(1, 1, GeometryClass::Small, 3),
        ];
        let batch = assemble(members, &BatchConfig { max_bands: 16, pad_to: 4 })
            .expect("compatible members");
        assert_eq!(batch.payload_bands, 5);
        assert_eq!(batch.nbnd, 8);
        assert_eq!(batch.members[0].band_start, 0);
        assert_eq!(batch.members[1].band_start, 2);
    }

    #[test]
    fn assemble_rejects_mixed_classes_and_empty_sets() {
        let members = vec![
            req(0, 0, GeometryClass::Small, 2),
            req(1, 1, GeometryClass::Large, 3),
        ];
        let err = assemble(members, &BatchConfig::default()).expect_err("mixed classes");
        assert_eq!(
            err,
            ServeError::MixedClasses { expected: "small", found: "large" }
        );
        let err = assemble(Vec::new(), &BatchConfig::default()).expect_err("empty");
        assert_eq!(err, ServeError::EmptyBatch);
    }
}
