//! Shard health checking: the supervisor's heartbeat schedule and the
//! per-shard circuit breaker.
//!
//! Each supervisor tick probes every monitored shard once. The breaker
//! trips open after `fail_threshold` consecutive misses (routing stops
//! sending the shard new work), waits out a bounded exponential backoff
//! (reusing [`fftx_fault::RecoveryConfig::backoff`], the same schedule the
//! task-retry layer uses), then half-opens for a single probe: an answered
//! probe closes it, a missed one re-opens it with a doubled backoff. A
//! shard that misses `death_threshold` consecutive probes is declared dead
//! and failed over — see the supervisor.
//!
//! Everything is driven by the virtual tick counter, so breaker evolution
//! is a pure fold over the journaled heartbeat outcomes and replays
//! bit-identically.

use fftx_fault::RecoveryConfig;

/// Health-check knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthConfig {
    /// Virtual seconds between supervisor ticks (one probe per shard per
    /// tick).
    pub tick_s: f64,
    /// Consecutive missed probes that trip the breaker open.
    pub fail_threshold: u32,
    /// Consecutive missed probes that declare the shard dead. Must exceed
    /// `fail_threshold`: a shard stops receiving new work before the
    /// (expensive) failover is committed.
    pub death_threshold: u32,
    /// Corrupt batches (ABFT verification failures) that trip the breaker
    /// open: a shard whose results keep failing verification stops
    /// receiving new work even though its heartbeats answer. Unlike
    /// heartbeat misses, corruption strikes are not cleared by healthy
    /// probes — only a successful half-open probe (a full backoff served)
    /// resets them.
    pub corrupt_threshold: u32,
    /// Backoff schedule of the half-open probe delay: re-probe attempt `n`
    /// waits `min(base · 2^n, max)` before half-opening.
    pub backoff: RecoveryConfig,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            tick_s: 0.05,
            fail_threshold: 2,
            death_threshold: 4,
            corrupt_threshold: 3,
            backoff: RecoveryConfig::default(),
        }
    }
}

impl HealthConfig {
    /// Ticks the breaker stays open before half-opening, for re-probe
    /// attempt `attempt` (0-based): the backoff duration rounded up to
    /// whole ticks, at least one.
    pub fn open_ticks(&self, attempt: u32) -> u64 {
        let ticks = self.backoff.backoff(attempt).as_secs_f64() / self.tick_s;
        (ticks.ceil() as u64).max(1)
    }
}

/// Breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: the shard receives new work.
    Closed,
    /// Tripped: no new work until the backoff elapses.
    Open,
    /// Probing: one answered heartbeat closes it, one miss re-opens it.
    HalfOpen,
}

impl BreakerState {
    /// Stable short name (timeline state, counter key).
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

/// The per-shard circuit breaker. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Breaker {
    state: BreakerState,
    /// Consecutive misses in Closed (trip counter).
    misses: u32,
    /// Consecutive misses across all states (death counter).
    run: u32,
    /// Corrupt batches since the breaker last closed (quarantine counter).
    corruptions: u32,
    opened_tick: u64,
    attempt: u32,
}

impl Default for Breaker {
    fn default() -> Self {
        Self::new()
    }
}

impl Breaker {
    /// A closed breaker.
    pub fn new() -> Breaker {
        Breaker {
            state: BreakerState::Closed,
            misses: 0,
            run: 0,
            corruptions: 0,
            opened_tick: 0,
            attempt: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Whether routing may send the shard new work.
    pub fn admits(&self) -> bool {
        matches!(self.state, BreakerState::Closed | BreakerState::HalfOpen)
    }

    /// Consecutive missed probes, across open/half-open cycles — the
    /// supervisor's death counter.
    pub fn consecutive_misses(&self) -> u32 {
        self.run
    }

    /// Corrupt batches since the breaker last closed — the supervisor's
    /// quarantine counter.
    pub fn corruption_strikes(&self) -> u32 {
        self.corruptions
    }

    /// Folds one detected-corruption event (a batch that failed ABFT
    /// verification) into the breaker at `tick`. At
    /// [`HealthConfig::corrupt_threshold`] strikes a closed breaker trips
    /// open — the shard is quarantined from new work for a full backoff,
    /// exactly like a heartbeat trip, but healthy heartbeats do *not*
    /// clear the strike count: only the successful half-open probe that
    /// re-closes the breaker does. Returns the new state's name on a
    /// transition.
    pub fn on_corruption(&mut self, tick: u64, cfg: &HealthConfig) -> Option<&'static str> {
        self.corruptions += 1;
        if self.state == BreakerState::Closed && self.corruptions >= cfg.corrupt_threshold {
            self.state = BreakerState::Open;
            self.opened_tick = tick;
            return Some(self.state.name());
        }
        None
    }

    /// Folds one probe outcome at `tick` into the breaker. Returns the new
    /// state's name when the probe changed the state (an open breaker
    /// half-opening on backoff expiry counts, even though the transition
    /// is then immediately resolved by the probe itself).
    pub fn on_heartbeat(&mut self, ok: bool, tick: u64, cfg: &HealthConfig) -> Option<&'static str> {
        let before = self.state;
        let mut half_opened = false;
        self.run = if ok { 0 } else { self.run + 1 };
        // An open breaker whose backoff elapsed half-opens first; the probe
        // below then resolves the half-open state.
        if self.state == BreakerState::Open
            && tick >= self.opened_tick + cfg.open_ticks(self.attempt)
        {
            self.state = BreakerState::HalfOpen;
            half_opened = true;
        }
        match self.state {
            BreakerState::Closed => {
                if ok {
                    self.misses = 0;
                } else {
                    self.misses += 1;
                    if self.misses >= cfg.fail_threshold {
                        self.state = BreakerState::Open;
                        self.opened_tick = tick;
                    }
                }
            }
            BreakerState::HalfOpen => {
                if ok {
                    self.state = BreakerState::Closed;
                    self.misses = 0;
                    self.corruptions = 0;
                    self.attempt = 0;
                } else {
                    self.state = BreakerState::Open;
                    self.opened_tick = tick;
                    self.attempt += 1;
                }
            }
            BreakerState::Open => {}
        }
        (self.state != before || half_opened).then(|| self.state.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> HealthConfig {
        HealthConfig::default()
    }

    #[test]
    fn breaker_trips_after_consecutive_misses() {
        let c = cfg();
        let mut b = Breaker::new();
        assert!(b.admits());
        assert_eq!(b.on_heartbeat(false, 0, &c), None);
        assert!(b.admits(), "one miss is below the threshold");
        assert_eq!(b.on_heartbeat(false, 1, &c), Some("open"));
        assert!(!b.admits());
        assert_eq!(b.consecutive_misses(), 2);
    }

    #[test]
    fn ok_probe_resets_the_trip_counter() {
        let c = cfg();
        let mut b = Breaker::new();
        b.on_heartbeat(false, 0, &c);
        b.on_heartbeat(true, 1, &c);
        b.on_heartbeat(false, 2, &c);
        assert_eq!(b.state(), BreakerState::Closed, "non-consecutive misses never trip");
        assert_eq!(b.consecutive_misses(), 1);
    }

    #[test]
    fn half_open_probe_closes_or_reopens_with_backoff() {
        let c = cfg();
        let mut b = Breaker::new();
        b.on_heartbeat(false, 0, &c);
        b.on_heartbeat(false, 1, &c);
        assert_eq!(b.state(), BreakerState::Open);
        // Before the backoff elapses the breaker ignores probes.
        assert_eq!(b.on_heartbeat(true, 1 + c.open_ticks(0) - 1, &c), None);
        assert_eq!(b.state(), BreakerState::Open);
        // At expiry it half-opens; a good probe closes it in the same tick.
        assert_eq!(b.on_heartbeat(true, 1 + c.open_ticks(0), &c), Some("closed"));
        assert!(b.admits());

        // A failed half-open probe re-opens with a doubled backoff.
        let mut b = Breaker::new();
        b.on_heartbeat(false, 0, &c);
        b.on_heartbeat(false, 1, &c);
        let t = 1 + c.open_ticks(0);
        assert_eq!(b.on_heartbeat(false, t, &c), Some("open"));
        assert!(c.open_ticks(1) >= c.open_ticks(0), "backoff never shrinks");
        assert_eq!(b.on_heartbeat(true, t + c.open_ticks(1), &c), Some("closed"));
    }

    #[test]
    fn death_counter_spans_breaker_cycles() {
        let c = cfg();
        let mut b = Breaker::new();
        for tick in 0..c.death_threshold as u64 {
            b.on_heartbeat(false, tick, &c);
        }
        assert!(b.consecutive_misses() >= c.death_threshold);
        b.on_heartbeat(true, 100, &c);
        assert_eq!(b.consecutive_misses(), 0);
    }

    #[test]
    fn corruption_strikes_trip_the_breaker_despite_healthy_heartbeats() {
        let c = cfg();
        let mut b = Breaker::new();
        // Strikes interleaved with answered probes: heartbeats never clear
        // corruption, so the third corrupt batch trips the breaker.
        for tick in 0..(c.corrupt_threshold - 1) as u64 {
            assert_eq!(b.on_corruption(tick, &c), None);
            assert_eq!(b.on_heartbeat(true, tick, &c), None);
            assert!(b.admits());
        }
        assert_eq!(b.on_corruption(10, &c), Some("open"));
        assert!(!b.admits(), "a corrupting shard is quarantined");
        assert_eq!(b.consecutive_misses(), 0, "corruption never declares death");
        assert_eq!(b.corruption_strikes(), c.corrupt_threshold);

        // The backoff serves out; the successful half-open probe re-closes
        // the breaker and resets the strike count.
        let t = 10 + c.open_ticks(0);
        assert_eq!(b.on_heartbeat(true, t, &c), Some("closed"));
        assert_eq!(b.corruption_strikes(), 0);
    }

    #[test]
    fn open_ticks_follow_the_bounded_exponential() {
        let c = cfg();
        assert!(c.open_ticks(0) >= 1);
        let mut last = 0;
        for attempt in 0..8 {
            let t = c.open_ticks(attempt);
            assert!(t >= last, "monotone non-decreasing");
            last = t;
        }
        // The cap binds eventually.
        assert_eq!(c.open_ticks(20), c.open_ticks(30));
    }
}
