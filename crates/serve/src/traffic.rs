//! Synthetic open-loop traffic generation: Poisson arrivals over virtual
//! time with mixed geometry classes, band counts, tenants, and deadline
//! classes, under steady / burst / diurnal load profiles.
//!
//! Everything is a pure function of the seed (counter-mode splitmix64, the
//! workspace's standard mixer), so a pinned seed reproduces the identical
//! request trace — the property the CI serving experiment and the batching
//! proptests rely on. Time-varying profiles use Lewis–Shedler thinning: the
//! stream is drawn at the profile's peak rate and arrivals are accepted
//! with probability `rate(t) / rate_peak`, which keeps one arrival stream
//! comparable across profiles.

use crate::request::{DeadlineClass, GeometryClass, Request};
use fftx_fault::{mix64, unit_f64};

/// Shape of the offered load over the trace duration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadProfile {
    /// Constant arrival rate.
    Steady,
    /// Constant base rate with a 4× spike over the window
    /// `[0.25, 0.35) × duration` — the flash-crowd case backpressure and
    /// shedding exist for.
    Burst,
    /// Sinusoidal day/night modulation: `rate × (1 + 0.9 sin(2πt/T))`.
    Diurnal,
}

impl LoadProfile {
    /// Every profile.
    pub const ALL: [LoadProfile; 3] =
        [LoadProfile::Steady, LoadProfile::Burst, LoadProfile::Diurnal];

    /// Short name used in reports and the CLI.
    pub fn name(self) -> &'static str {
        match self {
            LoadProfile::Steady => "steady",
            LoadProfile::Burst => "burst",
            LoadProfile::Diurnal => "diurnal",
        }
    }

    /// Parses a profile name.
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|p| p.name() == s)
    }

    /// Instantaneous rate multiplier at `t` of `duration`.
    fn modulation(self, t: f64, duration: f64) -> f64 {
        match self {
            LoadProfile::Steady => 1.0,
            LoadProfile::Burst => {
                if (0.25..0.35).contains(&(t / duration)) {
                    4.0
                } else {
                    1.0
                }
            }
            LoadProfile::Diurnal => {
                1.0 + 0.9 * (2.0 * std::f64::consts::PI * t / duration).sin()
            }
        }
    }

    /// Peak of [`LoadProfile::modulation`] over the duration.
    fn peak(self) -> f64 {
        match self {
            LoadProfile::Steady => 1.0,
            LoadProfile::Burst => 4.0,
            LoadProfile::Diurnal => 1.9,
        }
    }
}

/// Parameters of one synthetic trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficConfig {
    /// Seed of the whole trace.
    pub seed: u64,
    /// Mean arrival rate (requests per virtual second) at modulation 1.
    pub rate_hz: f64,
    /// Trace duration (virtual seconds).
    pub duration_s: f64,
    /// Number of tenants (ids `0..tenants`).
    pub tenants: u32,
    /// Load shape over the duration.
    pub profile: LoadProfile,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            seed: 0,
            rate_hz: 40.0,
            duration_s: 1.0,
            tenants: 3,
            profile: LoadProfile::Steady,
        }
    }
}

/// Deterministic counter-mode splitmix64 stream.
struct Stream {
    seed: u64,
    ctr: u64,
}

impl Stream {
    fn new(seed: u64, domain: u64) -> Self {
        Stream {
            seed: mix64(seed ^ mix64(domain)),
            ctr: 0,
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.ctr += 1;
        mix64(self.seed ^ mix64(self.ctr))
    }

    fn next_f64(&mut self) -> f64 {
        unit_f64(self.next_u64())
    }

    /// Exponential inter-arrival at `rate` (rejects u = 0 exactly).
    fn next_exp(&mut self, rate: f64) -> f64 {
        let u = self.next_f64().max(1e-18);
        -u.ln() / rate
    }

    /// Weighted choice over `weights`, returning the index.
    fn choose(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        let mut x = self.next_f64() * total;
        for (i, w) in weights.iter().enumerate() {
            x -= w;
            if x < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }
}

/// Generates the request trace of `cfg`: arrivals ascending in time, ids
/// dense from 0. Pure in the seed.
pub fn generate(cfg: &TrafficConfig) -> Vec<Request> {
    assert!(cfg.rate_hz > 0.0 && cfg.duration_s > 0.0, "traffic: rate/duration must be positive");
    assert!(cfg.tenants > 0, "traffic: need at least one tenant");
    let mut arrivals = Stream::new(cfg.seed, 1);
    let mut marks = Stream::new(cfg.seed, 2);
    let peak_rate = cfg.rate_hz * cfg.profile.peak();

    let mut out = Vec::new();
    let mut t = 0.0;
    loop {
        t += arrivals.next_exp(peak_rate);
        if t >= cfg.duration_s {
            break;
        }
        // Thinning: accept at the instantaneous fraction of the peak rate.
        let accept = cfg.profile.modulation(t, cfg.duration_s) / cfg.profile.peak();
        if arrivals.next_f64() >= accept {
            continue;
        }
        let tenant = (marks.next_u64() % u64::from(cfg.tenants)) as u32;
        let class = GeometryClass::ALL[marks.choose(&[0.5, 0.35, 0.15])];
        let bands = 1 + (marks.next_u64() % 4) as usize;
        let deadline = DeadlineClass::ALL[marks.choose(&[0.3, 0.5, 0.2])];
        out.push(Request {
            id: out.len() as u64,
            tenant,
            class,
            bands,
            deadline,
            arrival_s: t,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(profile: LoadProfile) -> TrafficConfig {
        TrafficConfig {
            seed: 2017,
            rate_hz: 200.0,
            duration_s: 2.0,
            tenants: 4,
            profile,
        }
    }

    #[test]
    fn traces_are_deterministic_and_ordered() {
        for profile in LoadProfile::ALL {
            let a = generate(&cfg(profile));
            let b = generate(&cfg(profile));
            assert_eq!(a, b, "{}", profile.name());
            assert!(!a.is_empty());
            assert!(a.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s));
            assert!(a.iter().enumerate().all(|(i, r)| r.id == i as u64));
            assert!(a.iter().all(|r| r.bands >= 1 && r.bands <= 4 && r.tenant < 4));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&cfg(LoadProfile::Steady));
        let b = generate(&TrafficConfig { seed: 2018, ..cfg(LoadProfile::Steady) });
        assert_ne!(a, b);
    }

    #[test]
    fn steady_volume_tracks_the_rate() {
        let c = cfg(LoadProfile::Steady);
        let n = generate(&c).len() as f64;
        let expect = c.rate_hz * c.duration_s;
        assert!((n - expect).abs() < 0.25 * expect, "{n} vs {expect}");
    }

    #[test]
    fn burst_concentrates_arrivals_in_the_window() {
        let c = TrafficConfig { rate_hz: 400.0, ..cfg(LoadProfile::Burst) };
        let trace = generate(&c);
        let window = trace
            .iter()
            .filter(|r| (0.25..0.35).contains(&(r.arrival_s / c.duration_s)))
            .count() as f64;
        let frac = window / trace.len() as f64;
        // 10% of the time at 4x rate carries ~31% of the arrivals.
        assert!(frac > 0.2, "burst window fraction {frac}");
    }

    #[test]
    fn diurnal_front_loads_the_half_period() {
        let trace = generate(&cfg(LoadProfile::Diurnal));
        let first_half = trace.iter().filter(|r| r.arrival_s < 1.0).count() as f64;
        let frac = first_half / trace.len() as f64;
        // sin > 0 over the first half period -> well above half the volume.
        assert!(frac > 0.6, "first-half fraction {frac}");
    }

    #[test]
    fn class_mix_follows_the_weights() {
        let c = TrafficConfig { rate_hz: 1000.0, duration_s: 4.0, ..cfg(LoadProfile::Steady) };
        let trace = generate(&c);
        let small = trace.iter().filter(|r| r.class == GeometryClass::Small).count() as f64;
        let frac = small / trace.len() as f64;
        assert!((frac - 0.5).abs() < 0.1, "small fraction {frac}");
    }
}
