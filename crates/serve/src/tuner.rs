//! The auto-tuned placement engine: picks (R×T layout, ntg, scheduler
//! policy, hyper-threading degree, decomposition) per workload class.
//!
//! Decisions are **seeded from the cost models**: every candidate placement
//! is screened with the closed-form `knlsim` estimate
//! ([`fftx_knlsim::quick_estimate`]), the top candidates per policy are
//! priced exactly on the discrete-event simulator
//! ([`fftx_knlsim::simulate`] over the class-aware problem), and the
//! cheapest wins. All model
//! queries are memoised in a deterministic tuning table (`BTreeMap`s keyed
//! by the candidate configuration), so a decision is a pure function of
//! the table state and replays bit-identically.
//!
//! Decisions are **refined online**: the serving loop feeds measured batch
//! durations (derived from `trace::stage` histograms of real executions)
//! back through [`Tuner::observe`]; once a placement has enough
//! observations, the observed mean replaces the modeled cost in the
//! ranking. Every decision is **explainable**: [`Tuner::why`] dumps the
//! full candidate table with quick/DES/observed costs and the winner.

use crate::request::{class_problem, GeometryClass};
use fftx_core::{build_programs, Decomposition, SchedulerPolicy};
use fftx_knlsim::{quick_estimate, simulate, CommModel, ContentionModel, KnlConfig};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One candidate execution configuration for a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// First parallel dimension R.
    pub nr: usize,
    /// Task groups (serial policy) or worker threads per rank (task
    /// policies).
    pub ntg: usize,
    /// Scheduler policy over the unified stage graph.
    pub policy: SchedulerPolicy,
    /// Scatter decomposition (slab or pencil lowering).
    pub decomp: Decomposition,
}

impl Placement {
    /// Execution lanes (hardware threads) the placement occupies.
    pub fn lanes(&self) -> usize {
        self.nr * self.ntg
    }

    /// Hyper-threading degree on `node`: lanes stacked per core once the
    /// placement occupies more lanes than the node has cores.
    pub fn ht_degree(&self, node: &KnlConfig) -> usize {
        self.lanes().div_ceil(node.cores_used(self.lanes()))
    }

    /// Stable display label, e.g. `2x4/fft/slab`.
    pub fn label(&self) -> String {
        format!("{}x{}/{}/{}", self.nr, self.ntg, self.policy.name(), self.decomp.name())
    }

    /// The batch configuration this placement executes: `nbnd` bands of
    /// `class` geometry with the serving workload seed, under this
    /// placement's decomposition.
    pub fn config(&self, class: GeometryClass, nbnd: usize, seed: u64) -> fftx_core::FftxConfig {
        class
            .config(nbnd, self.nr, self.ntg, self.policy.mode(), seed)
            .with_decomp(self.decomp)
    }
}

/// The candidate (R, T) layouts of one scheduler policy under one
/// decomposition. Layouts are sized for the serving node slice
/// ([`serve_node`]): up to 16 lanes on 4 cores, so candidates span
/// hyper-threading degrees 1–4 (the paper's Fig. 6 axis).
pub fn candidates_for(policy: SchedulerPolicy, decomp: Decomposition) -> Vec<Placement> {
    let pairs: &[(usize, usize)] = match policy {
        // Original static code: R×T virtual ranks, T task groups.
        SchedulerPolicy::Serial => &[(1, 2), (2, 2), (1, 4), (2, 4)],
        // Task runtimes: R ranks × T workers, layout ntg = 1.
        _ => &[(2, 2), (4, 2), (2, 4), (4, 4)],
    };
    pairs
        .iter()
        .map(|&(nr, ntg)| Placement { nr, ntg, policy, decomp })
        .collect()
}

/// The candidate placements of one scheduler policy across every
/// decomposition. The union over all policies is the auto tuner's search
/// space; a static baseline searches one policy's rows only.
pub fn candidates(policy: SchedulerPolicy) -> Vec<Placement> {
    Decomposition::ALL
        .iter()
        .flat_map(|&d| candidates_for(policy, d))
        .collect()
}

/// The node slice one serving instance schedules onto: a 4-core cut of the
/// paper's KNL (same frequency, same 4-way SMT), so the candidate layouts
/// exercise real hyper-threading degrees while staying laptop-executable.
pub fn serve_node() -> KnlConfig {
    KnlConfig {
        cores: 4,
        ..KnlConfig::paper()
    }
}

/// Tuner knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TunerConfig {
    /// Candidates per policy priced exactly on the DES after the
    /// closed-form screen.
    pub des_top_k: usize,
    /// Observations of one (workload, placement) pair before the measured
    /// mean overrides the modeled cost.
    pub min_observations: u32,
}

impl Default for TunerConfig {
    fn default() -> Self {
        TunerConfig {
            des_top_k: 2,
            min_observations: 3,
        }
    }
}

/// A scored candidate inside a [`Decision`].
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateScore {
    /// The candidate.
    pub placement: Placement,
    /// Closed-form screening estimate (seconds).
    pub quick_s: f64,
    /// Exact DES cost (seconds); `None` when screened out.
    pub des_s: Option<f64>,
    /// Observed mean batch duration (seconds) with the observation count,
    /// once past the refinement threshold.
    pub observed_s: Option<(f64, u32)>,
}

impl CandidateScore {
    /// The cost the ranking uses: observed mean when refined, else the DES
    /// price, else infinity (screened out).
    pub fn effective_s(&self) -> f64 {
        self.observed_s
            .map(|(s, _)| s)
            .or(self.des_s)
            .unwrap_or(f64::INFINITY)
    }
}

/// A placement decision for one workload key.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// The chosen placement.
    pub placement: Placement,
    /// Modeled (or observed) batch service seconds of the choice.
    pub service_s: f64,
    /// Every candidate considered, with its scores.
    pub scored: Vec<CandidateScore>,
    /// True when a measured observation influenced the ranking.
    pub refined: bool,
}

/// Tuning-table key: one candidate configuration of one workload class.
type CKey = (usize, usize, usize, usize, usize, usize); // (class, nbnd, nr, ntg, policy, decomp)

fn ckey(class: GeometryClass, nbnd: usize, p: &Placement) -> CKey {
    let policy_idx = SchedulerPolicy::ALL
        .iter()
        .position(|q| *q == p.policy)
        .expect("policy in ALL");
    (class.index(), nbnd, p.nr, p.ntg, policy_idx, p.decomp.index())
}

#[derive(Debug, Clone, Copy, Default)]
struct Observation {
    n: u32,
    sum_s: f64,
}

/// The placement tuner. See the module docs.
pub struct Tuner {
    node: KnlConfig,
    contention: ContentionModel,
    comm: CommModel,
    cfg: TunerConfig,
    quick_table: BTreeMap<CKey, f64>,
    des_table: BTreeMap<CKey, f64>,
    observations: BTreeMap<CKey, Observation>,
}

impl Tuner {
    /// A tuner for the serving node slice with the paper-calibrated
    /// contention and communication models.
    pub fn new(cfg: TunerConfig) -> Self {
        Tuner {
            node: serve_node(),
            contention: ContentionModel::paper(),
            comm: CommModel::paper(),
            cfg,
            quick_table: BTreeMap::new(),
            des_table: BTreeMap::new(),
            observations: BTreeMap::new(),
        }
    }

    /// The node slice the tuner prices placements for.
    pub fn node(&self) -> &KnlConfig {
        &self.node
    }

    /// Closed-form screening cost of one candidate (memoised).
    fn quick_s(&mut self, class: GeometryClass, nbnd: usize, p: &Placement) -> f64 {
        let key = ckey(class, nbnd, p);
        if let Some(&s) = self.quick_table.get(&key) {
            return s;
        }
        // Cost configs pin seed 0: the data seed feeds the synthetic band
        // values, never the work volume, so pricing is seed-independent.
        let problem = class_problem(class, p.config(class, nbnd, 0));
        let programs = build_programs(&problem);
        let s = quick_estimate(&programs, &self.node, &self.contention, &self.comm).total();
        self.quick_table.insert(key, s);
        s
    }

    /// Exact DES cost of one candidate (memoised). Built from the
    /// class-aware problem so a grid-override class (`prime`) is priced on
    /// the grid it actually executes, not the cutoff-derived one.
    fn des_s(&mut self, class: GeometryClass, nbnd: usize, p: &Placement) -> f64 {
        let key = ckey(class, nbnd, p);
        if let Some(&s) = self.des_table.get(&key) {
            return s;
        }
        let problem = class_problem(class, p.config(class, nbnd, 0));
        let programs = build_programs(&problem);
        let s = simulate(&programs, &self.node, &self.contention, &self.comm).runtime;
        self.des_table.insert(key, s);
        s
    }

    fn observed(&self, class: GeometryClass, nbnd: usize, p: &Placement) -> Option<(f64, u32)> {
        let o = self.observations.get(&ckey(class, nbnd, p))?;
        (o.n >= self.cfg.min_observations).then(|| (o.sum_s / o.n as f64, o.n))
    }

    /// Modeled (or observed, once refined) batch service seconds of a
    /// specific placement for a workload key.
    pub fn service_s(&mut self, class: GeometryClass, nbnd: usize, p: &Placement) -> f64 {
        self.observed(class, nbnd, p)
            .map(|(s, _)| s)
            .unwrap_or_else(|| self.des_s(class, nbnd, p))
    }

    /// Scores one candidate row: closed-form screen on every member, the
    /// top-k priced exactly on the DES (with any observed refinement).
    /// (Stable sort + label tie-break keeps the order deterministic.)
    fn score_row(
        &mut self,
        class: GeometryClass,
        nbnd: usize,
        row: Vec<Placement>,
    ) -> Vec<CandidateScore> {
        let mut scored: Vec<CandidateScore> = row
            .into_iter()
            .map(|p| {
                let quick_s = self.quick_s(class, nbnd, &p);
                CandidateScore {
                    placement: p,
                    quick_s,
                    des_s: None,
                    observed_s: None,
                }
            })
            .collect();
        let mut order: Vec<usize> = (0..scored.len()).collect();
        order.sort_by(|&a, &b| {
            scored[a]
                .quick_s
                .total_cmp(&scored[b].quick_s)
                .then_with(|| scored[a].placement.label().cmp(&scored[b].placement.label()))
        });
        for &i in order.iter().take(self.cfg.des_top_k.max(1)) {
            let p = scored[i].placement;
            scored[i].des_s = Some(self.des_s(class, nbnd, &p));
            scored[i].observed_s = self.observed(class, nbnd, &p);
        }
        scored
    }

    /// Decides the placement for `(class, nbnd)` restricted to one
    /// policy's candidate rows (both decompositions) — the static-policy
    /// baseline path. Each (policy, decomposition) row is screened
    /// independently, so every decomposition always gets DES-priced
    /// representation.
    pub fn decide_policy(
        &mut self,
        class: GeometryClass,
        nbnd: usize,
        policy: SchedulerPolicy,
    ) -> Decision {
        let mut scored = Vec::new();
        for decomp in Decomposition::ALL {
            scored.extend(self.score_row(class, nbnd, candidates_for(policy, decomp)));
        }
        Self::pick(scored)
    }

    /// Decides the placement for `(class, nbnd)` restricted to one
    /// decomposition across every policy row — the fixed-decomposition
    /// baseline the `decomp` bench gates the auto path against.
    pub fn decide_decomp(
        &mut self,
        class: GeometryClass,
        nbnd: usize,
        decomp: Decomposition,
    ) -> Decision {
        let mut scored = Vec::new();
        for policy in SchedulerPolicy::ALL {
            scored.extend(self.score_row(class, nbnd, candidates_for(policy, decomp)));
        }
        Self::pick(scored)
    }

    /// Decides the placement for `(class, nbnd)` restricted to a single
    /// (policy, decomposition) candidate row — the fully pinned baseline
    /// (`--mode` and `--decomp` both fixed on the serving CLI).
    pub fn decide_fixed(
        &mut self,
        class: GeometryClass,
        nbnd: usize,
        policy: SchedulerPolicy,
        decomp: Decomposition,
    ) -> Decision {
        let scored = self.score_row(class, nbnd, candidates_for(policy, decomp));
        Self::pick(scored)
    }

    /// Decides the placement for `(class, nbnd)` over the full candidate
    /// space (every policy × decomposition row) — the auto path. By
    /// construction its scored set is a superset of every static
    /// baseline's (fixed policy or fixed decomposition), so the decision's
    /// modeled service time is never worse than any of theirs.
    pub fn decide(&mut self, class: GeometryClass, nbnd: usize) -> Decision {
        let mut scored = Vec::new();
        for policy in SchedulerPolicy::ALL {
            scored.extend(self.decide_policy(class, nbnd, policy).scored);
        }
        Self::pick(scored)
    }

    fn pick(scored: Vec<CandidateScore>) -> Decision {
        let best = scored
            .iter()
            .min_by(|a, b| {
                a.effective_s()
                    .total_cmp(&b.effective_s())
                    .then_with(|| a.placement.label().cmp(&b.placement.label()))
            })
            .expect("non-empty candidate set");
        Decision {
            placement: best.placement,
            service_s: best.effective_s(),
            refined: scored.iter().any(|c| c.observed_s.is_some()),
            scored,
        }
    }

    /// Feeds one measured batch duration (virtual-comparable seconds,
    /// derived from the stage-span histogram of a real execution) back
    /// into the table. Non-finite or non-positive samples are ignored.
    pub fn observe(
        &mut self,
        class: GeometryClass,
        nbnd: usize,
        placement: &Placement,
        measured_s: f64,
    ) {
        if !measured_s.is_finite() || measured_s <= 0.0 {
            return;
        }
        let o = self
            .observations
            .entry(ckey(class, nbnd, placement))
            .or_default();
        o.n += 1;
        o.sum_s += measured_s;
    }

    /// The explainable dump: the full candidate table of one decision,
    /// with the screen estimate, the exact DES price, any observed
    /// refinement, the HT degree, and the winner.
    pub fn why(&mut self, class: GeometryClass, nbnd: usize) -> String {
        let decision = self.decide(class, nbnd);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "placement decision for class={} nbnd={} (node: {} cores x {}-way SMT)",
            class.name(),
            nbnd,
            self.node.cores,
            self.node.max_smt,
        );
        let _ = writeln!(
            out,
            "  {:<14} {:>5} {:>3} {:>12} {:>12} {:>16}",
            "candidate", "lanes", "ht", "quick_s", "des_s", "observed_s(n)"
        );
        for c in &decision.scored {
            let des = c
                .des_s
                .map_or_else(|| "screened".into(), |s| format!("{s:.6}"));
            let obs = c
                .observed_s
                .map_or_else(|| "-".into(), |(s, n)| format!("{s:.6}({n})"));
            let _ = writeln!(
                out,
                "  {:<14} {:>5} {:>3} {:>12.6} {:>12} {:>16}{}",
                c.placement.label(),
                c.placement.lanes(),
                c.placement.ht_degree(&self.node),
                c.quick_s,
                des,
                obs,
                if c.placement == decision.placement { "  <- chosen" } else { "" },
            );
        }
        let _ = writeln!(
            out,
            "  chosen {} at {:.6}s per batch{}",
            decision.placement.label(),
            decision.service_s,
            if decision.refined { " (observation-refined)" } else { " (model-seeded)" },
        );
        out
    }

    /// CSV dump of the deterministic tuning table (every priced candidate).
    pub fn table_csv(&self) -> String {
        let mut out =
            String::from("class,nbnd,nr,ntg,policy,decomp,quick_s,des_s,observed_n,observed_mean_s\n");
        for (&(class, nbnd, nr, ntg, policy, decomp), &quick) in &self.quick_table {
            let key = (class, nbnd, nr, ntg, policy, decomp);
            let des = self.des_table.get(&key);
            let obs = self.observations.get(&key);
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{:.6e},{},{},{}",
                GeometryClass::ALL[class].name(),
                nbnd,
                nr,
                ntg,
                SchedulerPolicy::ALL[policy].name(),
                Decomposition::ALL[decomp].name(),
                quick,
                des.map_or_else(|| "-".into(), |s| format!("{s:.6e}")),
                obs.map_or(0, |o| o.n),
                obs.map_or_else(|| "-".into(), |o| format!("{:.6e}", o.sum_s / o.n.max(1) as f64)),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidate_rows_cover_ht_degrees() {
        let node = serve_node();
        for policy in SchedulerPolicy::ALL {
            let row = candidates(policy);
            assert!(!row.is_empty());
            for p in &row {
                assert!(p.lanes() <= node.cores * node.max_smt);
                assert!(p.ht_degree(&node) >= 1);
            }
        }
        // The task rows reach into hyper-threading on the 4-core slice.
        assert!(candidates(SchedulerPolicy::TaskPerFft)
            .iter()
            .any(|p| p.ht_degree(&node) > 1));
    }

    #[test]
    fn decisions_replay_bit_identically() {
        let mut t = Tuner::new(TunerConfig::default());
        let a = t.decide(GeometryClass::Small, 4);
        let b = t.decide(GeometryClass::Small, 4);
        assert_eq!(a, b);
        // A fresh tuner reaches the identical decision (pure in the
        // models, not in accumulated state).
        let mut u = Tuner::new(TunerConfig::default());
        assert_eq!(u.decide(GeometryClass::Small, 4), a);
    }

    #[test]
    fn auto_is_never_worse_than_any_static_policy() {
        let mut t = Tuner::new(TunerConfig::default());
        let auto = t.decide(GeometryClass::Small, 8);
        for policy in SchedulerPolicy::ALL {
            let fixed = t.decide_policy(GeometryClass::Small, 8, policy);
            assert!(
                auto.service_s <= fixed.service_s + 1e-15,
                "auto {} vs {} {}",
                auto.service_s,
                policy.name(),
                fixed.service_s
            );
        }
    }

    #[test]
    fn observations_refine_after_the_threshold() {
        let mut t = Tuner::new(TunerConfig { des_top_k: 2, min_observations: 2 });
        let before = t.decide(GeometryClass::Small, 4);
        assert!(!before.refined);
        // Report the chosen placement as catastrophically slow, twice.
        let slow = before.placement;
        t.observe(GeometryClass::Small, 4, &slow, 1e3);
        let mid = t.decide(GeometryClass::Small, 4);
        assert!(!mid.refined, "one observation is below the threshold");
        t.observe(GeometryClass::Small, 4, &slow, 1e3);
        let after = t.decide(GeometryClass::Small, 4);
        assert!(after.refined);
        assert_ne!(after.placement, slow, "tuner must route around the slow placement");
        // Bogus samples are ignored.
        t.observe(GeometryClass::Small, 4, &slow, f64::NAN);
        t.observe(GeometryClass::Small, 4, &slow, -1.0);
        assert_eq!(t.decide(GeometryClass::Small, 4), after);
    }

    #[test]
    fn why_dump_names_candidates_and_winner() {
        let mut t = Tuner::new(TunerConfig::default());
        let why = t.why(GeometryClass::Small, 4);
        assert!(why.contains("<- chosen"));
        assert!(why.contains("quick_s"));
        assert!(why.contains("class=small"));
        let decision = t.decide(GeometryClass::Small, 4);
        assert!(why.contains(&decision.placement.label()));
        let csv = t.table_csv();
        assert!(csv.lines().count() > 1);
        assert!(csv.starts_with("class,nbnd"));
    }
}
