//! The fleet supervisor: durable, failure-tolerant serving over N
//! simulated shard nodes.
//!
//! Every fleet state transition — acceptance, shedding, batch formation,
//! dispatch, completion, heartbeats, shard death, failover, degradation —
//! is journaled as a [`Record`] *before* it is applied, and
//! [`Fleet::apply`] is the only path that mutates fleet state. The live
//! loop therefore factors into `emit = append ∘ apply`, and recovery is
//! exact by construction: [`resume_fleet`] replays a journal prefix
//! through the same `apply`, then continues the loop — producing a journal
//! byte-identical to the uninterrupted run's from *any* record-boundary
//! crash point (pinned by the proptests).
//!
//! Time is virtual and tick-driven. Each tick runs a fixed phase order —
//! completions, heartbeats, death declarations, failover, autoscaling,
//! arrivals, work stealing, dispatch, degradation — and every phase is
//! idempotent given applied state (cursor fields such as the arrival
//! index, the per-tick heartbeat position, and per-shard pending-batch
//! markers are all maintained inside `apply`), so re-running the crash
//! tick emits nothing twice.
//!
//! Routing is a consistent-hash ring ([`crate::fleet::ring`]): tenants
//! map to the first ring member clockwise from their seeded point, with
//! bounded-load overflow past saturated shards, so membership changes —
//! node death, autoscaling — move the minimum set of tenants. Every
//! `Started` record carries the ring's membership epoch and replay
//! validates it, so a resumed fleet that would route differently after a
//! resharding event fails loudly. With [`FleetConfig::autoscale`] set,
//! the fleet is elastic: journaled `ScaleUp`/`ScaleDown` records grow and
//! shrink the active set under the hysteresis controller in
//! [`crate::fleet::autoscale`]. With [`FleetConfig::steal`], idle shards
//! pull whole formed-but-unstarted batches from busy ones (`Stolen`
//! records); execution is pure in (batch contents, placement, batch id),
//! so a stolen batch's results are bit-identical to what the origin would
//! have produced.
//!
//! Failure model (all pure functions of the fault seed, shared with the
//! task-level chaos layer in `fftx_fault`): [`NodeDeath`] kills shards at
//! seeded fractions of the horizon, [`SlowNode`] stretches their service
//! times, and [`Partition`] hides heartbeats from truly-alive shards. The
//! supervisor sees ground truth only through heartbeat outcomes: a
//! partitioned shard is (wrongly) declared dead, its in-flight work kept
//! as an *orphan* that may still complete — whichever completion report
//! lands second is swallowed by the per-job idempotency guard and
//! journaled as `Suppressed`, so accepted jobs complete exactly once even
//! under split-brain races. The machine-checked conservation audit
//! ([`Journal::conservation`]) gates this in CI.

use crate::admission::Admission;
use crate::batch::plan_batch;
use crate::degrade::{DegradeConfig, DegradeLevel, Ladder};
use crate::error::ServeError;
use crate::exec::Backend;
use crate::fleet::autoscale::{self, AutoscaleConfig, ScaleDecision};
use crate::fleet::ring::{load_bound, HashRing, RingConfig};
use crate::health::{Breaker, HealthConfig};
use crate::journal::{idempotency_key, Conservation, Journal, Record};
use crate::request::{band_hash, GeometryClass, RejectReason, Request};
use crate::server::{PlacementMode, ServeConfig};
use crate::tuner::{Placement, Tuner};
use fftx_core::{Decomposition, SchedulerPolicy};
use fftx_fault::{mix64, NodeDeath, Partition, SlowNode};
use fftx_trace::{CounterSet, EventLog, Quantiles, StateTimeline};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Serve-level fault profiles, all pure in `(seed, shard)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetFaults {
    /// Seed of every fault schedule.
    pub seed: u64,
    /// Probability a shard dies during the run ([`NodeDeath`]). At least
    /// one shard always survives: when the schedule would kill every
    /// shard, the latest-dying one is spared deterministically.
    pub p_death: f64,
    /// Probability a shard runs slow ([`SlowNode`]).
    pub p_slow: f64,
    /// Worst-case service-time stretch of a slow shard.
    pub slow_max: f64,
    /// Probability a shard's heartbeats are partitioned away for a window
    /// while its work keeps executing ([`Partition`]).
    pub p_partition: f64,
    /// Partition window length as a fraction of the horizon.
    pub partition_window: f64,
}

impl Default for FleetFaults {
    fn default() -> Self {
        FleetFaults {
            seed: 0,
            p_death: 0.0,
            p_slow: 0.0,
            slow_max: 1.0,
            p_partition: 0.0,
            partition_window: 0.25,
        }
    }
}

/// Fleet configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetConfig {
    /// Number of shard nodes.
    pub shards: usize,
    /// Per-shard serving knobs (admission, batching, tuner, execution).
    pub serve: ServeConfig,
    /// Heartbeat / circuit-breaker knobs.
    pub health: HealthConfig,
    /// Brown-out ladder knobs.
    pub degrade: DegradeConfig,
    /// Fault profiles.
    pub faults: FleetFaults,
    /// Virtual horizon the fault schedules are scaled to (seconds).
    pub horizon_s: f64,
    /// Safety bound on supervisor ticks before the loop reports
    /// [`ServeError::Stalled`].
    pub max_ticks: u64,
    /// Tenant→shard consistent-hash ring knobs (vnodes, bounded-load
    /// factor; the ring seed is folded with the serve seed).
    pub ring: RingConfig,
    /// Elastic fleet: `Some` runs the reactive autoscaler between `min`
    /// and `max` active shards over the provisioned pool of
    /// [`FleetConfig::shards`]; `None` keeps every shard active (static).
    pub autoscale: Option<AutoscaleConfig>,
    /// Cross-shard work stealing: idle shards pull whole
    /// formed-but-unstarted batches from busy ones.
    pub steal: bool,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            shards: 3,
            serve: ServeConfig::default(),
            health: HealthConfig::default(),
            degrade: DegradeConfig::default(),
            faults: FleetFaults::default(),
            horizon_s: 2.0,
            max_ticks: 100_000,
            ring: RingConfig::default(),
            autoscale: None,
            steal: false,
        }
    }
}

/// One completed request, fleet view.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetJob {
    /// The request.
    pub request: Request,
    /// Shard that reported the completion.
    pub shard: u32,
    /// Fleet-unique id of the batch that carried it.
    pub batch: u64,
    /// Completion time (virtual seconds).
    pub done_s: f64,
    /// Arrival-to-completion latency (virtual seconds).
    pub latency_s: f64,
    /// FNV hash of the request's result bands (real executions only).
    pub hash: Option<u64>,
    /// Whether the latency stayed within the deadline budget.
    pub deadline_met: bool,
}

/// The full outcome of one fleet run.
#[derive(Debug)]
pub struct FleetReport {
    /// Shard count the run used.
    pub shards: usize,
    /// Completed requests, completion order.
    pub jobs: Vec<FleetJob>,
    /// Shed requests with the rejection kind, arrival order.
    pub shed: Vec<(Request, String)>,
    /// Counters: `fleet.accepted|batches|shard_down|suppressed`,
    /// `fleet.heartbeat.ok|miss`, `fleet.breaker.<state>`,
    /// `fleet.failover.jobs`, `fleet.degrade.<level>`,
    /// `fleet.corruption.detected|recomputed`, `served.tenant.<id>`,
    /// `shed.<kind>`, `shed.tenant.<id>`.
    pub counters: CounterSet,
    /// Breaker / down / degradation transitions over virtual time (lane =
    /// shard index; the ladder uses lane `shards`).
    pub timeline: StateTimeline,
    /// The full journal of the run.
    pub journal: Journal,
    /// The conservation audit of the journal.
    pub conservation: Conservation,
    /// End of the virtual timeline (last completion).
    pub makespan_s: f64,
}

impl FleetReport {
    /// Requests offered (accepted + shed).
    pub fn offered(&self) -> usize {
        self.conservation.accepted + self.conservation.shed
    }

    /// Goodput: completed requests whose deadline was met, per virtual
    /// second of makespan.
    pub fn goodput_hz(&self) -> f64 {
        if self.makespan_s <= 0.0 {
            return 0.0;
        }
        self.jobs.iter().filter(|j| j.deadline_met).count() as f64 / self.makespan_s
    }

    /// Fraction of offered requests shed.
    pub fn shed_rate(&self) -> f64 {
        if self.offered() == 0 {
            return 0.0;
        }
        self.shed.len() as f64 / self.offered() as f64
    }

    /// Latency sample set of all completed requests.
    pub fn latency(&self) -> Quantiles {
        let mut q = Quantiles::new();
        for j in &self.jobs {
            q.push(j.latency_s);
        }
        q
    }

    /// Failover-to-completion latency of every re-routed job that
    /// finished: time from its (first) `Failover` record to its
    /// completion.
    pub fn failover_latencies(&self) -> Quantiles {
        let mut moved: BTreeMap<u64, f64> = BTreeMap::new();
        for rec in self.journal.records() {
            if let Record::Failover { job, t_s, .. } = rec {
                moved.entry(*job).or_insert(*t_s);
            }
        }
        let mut q = Quantiles::new();
        for j in &self.jobs {
            if let Some(&t) = moved.get(&j.request.id) {
                q.push(j.done_s - t);
            }
        }
        q
    }
}

/// A dispatched batch a shard is executing: the members still awaiting
/// their completion record, and the virtual completion time.
#[derive(Debug, Clone)]
struct Inflight {
    batch: u64,
    remaining: Vec<u64>,
    done_s: f64,
}

/// Per-shard state, entirely reconstructed by journal replay.
struct ShardState {
    admission: Admission,
    breaker: Breaker,
    /// The executing batch.
    inflight: Option<Inflight>,
    /// An executing batch of a shard that was declared dead while actually
    /// alive (partition): its completions still arrive and race the
    /// failover re-runs into the idempotency guard.
    orphan: Option<Inflight>,
    /// A journaled-but-not-yet-started batch (the window between `Batched`
    /// and `Started` a crash can land in).
    pending: Option<u64>,
    /// Detected-corruption events this shard's batches produced
    /// (journal-derived, so replay-stable).
    corruptions: u64,
    down: bool,
}

/// An assembled batch plus the placement it started under.
struct BatchInfo {
    batch: crate::batch::Batch,
    placement: Option<Placement>,
}

/// The fleet supervisor. See the module docs.
pub struct Fleet {
    cfg: FleetConfig,
    trace: Vec<Request>,
    journal: Journal,
    shards: Vec<ShardState>,
    tuner: Tuner,
    backend: Backend,
    ladder: Ladder,
    slow: SlowNode,
    partition: Partition,
    /// Ground-truth death time per shard (None = survives), with the
    /// ≥1-survivor guarantee applied.
    death_time: Vec<Option<f64>>,
    /// The tenant→shard consistent-hash ring. Membership (= active,
    /// not-down shards) is mutated only inside `apply` — by `ScaleUp`,
    /// `ScaleDown`, and `ShardDown` records — so replay reconstructs the
    /// exact routing table, validated by the epoch in every `Started`.
    ring: HashRing,
    /// Which pool shards are activated (autoscaled fleets start with
    /// `min`; static fleets with all). A down shard stays `active` until
    /// nothing — death does not retire it from the pool accounting.
    active: Vec<bool>,
    /// First tick each shard may execute batches at (warm-up after
    /// `ScaleUp`; 0 for the initial active set).
    warm_until: Vec<u64>,
    /// Virtual time of the last scale decision: the cooldown guard, and
    /// the crash-tick idempotency of the autoscale phase.
    scale_t: Option<f64>,
    accepted: BTreeMap<u64, Request>,
    completed: BTreeSet<u64>,
    open: BTreeSet<u64>,
    jobs: Vec<FleetJob>,
    shed: Vec<(Request, String)>,
    /// The one telemetry store of the supervisor: counters and shard-state
    /// transitions are recorded here and materialized into the report's
    /// [`CounterSet`] / [`StateTimeline`] views at the end of the run.
    log: EventLog,
    /// batch id → job id → result hash; filled by `apply(Completed)`
    /// during replay (journaled completions never re-execute) or lazily by
    /// one pure re-execution per batch at first need.
    hash_cache: BTreeMap<u64, BTreeMap<u64, u64>>,
    /// Batches with a journaled `CorruptionDetected` record — the guard
    /// that keeps the live path from re-emitting one on resume. Separate
    /// from `corruption_r`: a crash cut can land between a batch's X and R
    /// records, and sharing one set would suppress the missing record.
    corruption_x: BTreeSet<u64>,
    /// Batches with a journaled `Recomputed` record.
    corruption_r: BTreeSet<u64>,
    batch_info: BTreeMap<u64, BatchInfo>,
    /// Jobs drained from dead shards, awaiting their `Failover` record.
    pending_failover: VecDeque<(u32, u64)>,
    next_batch: u64,
    arrival_cursor: usize,
    tick: u64,
    /// Heartbeat cursor: the tick the last heartbeat belongs to and the
    /// shard index the next one goes to — resume re-enters the heartbeat
    /// sweep exactly where the crash left it.
    hb_tick: Option<u64>,
    hb_from: usize,
    /// Virtual time of the last ladder transition: guards the degrade
    /// check from double-stepping when the crash tick is re-run.
    degrade_t: Option<f64>,
    makespan: f64,
}

impl Fleet {
    /// A fresh fleet over an arrival-ordered request trace.
    ///
    /// # Errors
    /// [`ServeError::UnorderedTrace`] on an out-of-order trace;
    /// [`ServeError::Journal`] on a zero-shard fleet.
    pub fn new(requests: &[Request], cfg: FleetConfig) -> Result<Fleet, ServeError> {
        if cfg.shards == 0 {
            return Err(ServeError::Journal("fleet needs at least one shard".into()));
        }
        if let Some(a) = cfg.autoscale {
            a.validate()?;
            if a.max > cfg.shards {
                return Err(ServeError::Config(format!(
                    "autoscale max {} exceeds the provisioned pool of {}",
                    a.max, cfg.shards
                )));
            }
        }
        if let Some(i) = requests
            .windows(2)
            .position(|w| w[0].arrival_s > w[1].arrival_s)
        {
            return Err(ServeError::UnorderedTrace { index: i + 1 });
        }
        let death = NodeDeath::new(cfg.faults.seed, cfg.faults.p_death);
        let slow = SlowNode::new(cfg.faults.seed, cfg.faults.p_slow, cfg.faults.slow_max);
        let partition = Partition::new(
            cfg.faults.seed,
            cfg.faults.p_partition,
            cfg.faults.partition_window,
        );
        let mut death_time: Vec<Option<f64>> = (0..cfg.shards)
            .map(|s| death.death_time(s as u64, cfg.horizon_s))
            .collect();
        if death_time.iter().all(|d| d.is_some()) {
            // Guarantee a survivor: spare the shard that would die last
            // (ties to the highest index), deterministically.
            let spare = (0..cfg.shards)
                .max_by(|&a, &b| {
                    death_time[a]
                        .unwrap_or(f64::INFINITY)
                        .total_cmp(&death_time[b].unwrap_or(f64::INFINITY))
                        .then(a.cmp(&b))
                })
                .unwrap_or(0);
            death_time[spare] = None;
        }
        let shards = (0..cfg.shards)
            .map(|_| ShardState {
                admission: Admission::new(cfg.serve.admission),
                breaker: Breaker::new(),
                inflight: None,
                orphan: None,
                pending: None,
                corruptions: 0,
                down: false,
            })
            .collect();
        let route_seed = mix64(cfg.serve.seed ^ 0xF1EE_7B0A_D5EB_A11D);
        let initial = cfg.autoscale.map_or(cfg.shards, |a| a.min);
        let mut ring = HashRing::new(RingConfig {
            seed: mix64(route_seed ^ cfg.ring.seed),
            ..cfg.ring
        });
        for s in 0..initial {
            ring.insert(s as u32);
        }
        Ok(Fleet {
            trace: requests.to_vec(),
            journal: Journal::new(),
            shards,
            tuner: Tuner::new(cfg.serve.tuner),
            backend: Backend::new(cfg.serve.seed, cfg.serve.chaos),
            ladder: Ladder::new(),
            slow,
            partition,
            death_time,
            ring,
            active: (0..cfg.shards).map(|s| s < initial).collect(),
            warm_until: vec![0; cfg.shards],
            scale_t: None,
            accepted: BTreeMap::new(),
            completed: BTreeSet::new(),
            open: BTreeSet::new(),
            jobs: Vec::new(),
            shed: Vec::new(),
            log: EventLog::new(),
            hash_cache: BTreeMap::new(),
            corruption_x: BTreeSet::new(),
            corruption_r: BTreeSet::new(),
            batch_info: BTreeMap::new(),
            pending_failover: VecDeque::new(),
            next_batch: 0,
            arrival_cursor: 0,
            tick: 0,
            hb_tick: None,
            hb_from: 0,
            degrade_t: None,
            makespan: 0.0,
            cfg,
        })
    }

    /// The journal so far (a prefix of it is what [`resume_fleet`] takes).
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// The first tick whose time is at or after `t_s` — the tick a record
    /// stamped `t_s` was emitted in. Exact for tick-aligned stamps and for
    /// completion times that fall between ticks, despite float noise in
    /// the division (the correction loops pin the boundary bit-exactly
    /// against the loop's own `tick * tick_s` products).
    fn tick_of(&self, t_s: f64) -> u64 {
        let dt = self.cfg.health.tick_s;
        let mut k = (t_s / dt).ceil() as u64;
        while k > 0 && (k - 1) as f64 * dt >= t_s {
            k -= 1;
        }
        while (k as f64) * dt < t_s {
            k += 1;
        }
        k
    }

    fn alive_at(&self, shard: usize, t_s: f64) -> bool {
        self.death_time[shard].is_none_or(|d| d > t_s)
    }

    /// Whether `shard` is still in its post-scale-up warm-up window: a
    /// ring member that queues arrivals but executes nothing yet.
    fn warming(&self, shard: usize) -> bool {
        self.tick < self.warm_until[shard]
    }

    fn decide(&mut self, class: GeometryClass, nbnd: usize) -> Placement {
        match (self.cfg.serve.mode, self.cfg.serve.decomp.fixed()) {
            (PlacementMode::Auto, None) => self.tuner.decide(class, nbnd).placement,
            (PlacementMode::Auto, Some(d)) => self.tuner.decide_decomp(class, nbnd, d).placement,
            (PlacementMode::Static(p), None) => self.tuner.decide_policy(class, nbnd, p).placement,
            (PlacementMode::Static(p), Some(d)) => {
                self.tuner.decide_fixed(class, nbnd, p, d).placement
            }
        }
    }

    /// Rough completion estimate of one request were it admitted now: the
    /// modeled service of a minimal batch of its class.
    fn request_estimate(&mut self, req: &Request) -> f64 {
        let pad = self.cfg.serve.batch.pad_to.max(1);
        let nbnd = req.bands.div_ceil(pad) * pad;
        let p = self.decide(req.class, nbnd);
        self.tuner.service_s(req.class, nbnd, &p)
    }

    /// Journals `rec` (write-ahead), then applies it.
    fn emit(&mut self, rec: Record) -> Result<(), ServeError> {
        self.journal.append(rec.clone());
        self.apply(&rec)
    }

    /// Drops `job` of `batch` from `shard`'s inflight/orphan bookkeeping,
    /// clearing the slot when its last member is accounted for.
    fn remove_member(&mut self, shard: u32, batch: u64, job: u64) {
        let Some(sh) = self.shards.get_mut(shard as usize) else {
            return;
        };
        for slot in [&mut sh.inflight, &mut sh.orphan] {
            let clear = match slot {
                Some(inf) if inf.batch == batch => {
                    inf.remaining.retain(|&j| j != job);
                    inf.remaining.is_empty()
                }
                _ => false,
            };
            if clear {
                *slot = None;
            }
        }
    }

    fn shard_index(&self, shard: u32) -> Result<usize, ServeError> {
        let s = shard as usize;
        if s >= self.shards.len() {
            return Err(ServeError::Journal(format!(
                "shard {shard} out of range for fleet of {}",
                self.shards.len()
            )));
        }
        Ok(s)
    }

    /// The ONLY state-mutation path: folds one journal record into the
    /// fleet. The live loop calls it through [`Fleet::emit`]; replay calls
    /// it directly on the prefix.
    ///
    /// # Errors
    /// [`ServeError::Journal`] when the record contradicts the state it is
    /// applied to — a corrupt or desynced journal.
    fn apply(&mut self, rec: &Record) -> Result<(), ServeError> {
        match rec {
            Record::Accepted { req, key, shard } => {
                let s = self.shard_index(*shard)?;
                let expect = self.trace.get(self.arrival_cursor).ok_or_else(|| {
                    ServeError::Journal(format!("job {} accepted past the trace end", req.id))
                })?;
                if *expect != *req {
                    return Err(ServeError::Journal(format!(
                        "journal/trace desync: arrival {} journaled as job {}",
                        expect.id, req.id
                    )));
                }
                if *key != idempotency_key(self.cfg.serve.seed, req.id) {
                    return Err(ServeError::Journal(format!(
                        "job {} carries a foreign idempotency key",
                        req.id
                    )));
                }
                if !self.ring.contains(*shard) {
                    return Err(ServeError::Journal(format!(
                        "job {} routed to shard {shard}, which is not a ring member",
                        req.id
                    )));
                }
                self.accepted.insert(req.id, *req);
                self.open.insert(req.id);
                self.shards[s].admission.push_back(*req);
                self.arrival_cursor += 1;
                self.log.push_counter("fleet.accepted", 1);
            }
            Record::Shed { req, kind } => {
                let expect = self.trace.get(self.arrival_cursor).ok_or_else(|| {
                    ServeError::Journal(format!("job {} shed past the trace end", req.id))
                })?;
                if *expect != *req {
                    return Err(ServeError::Journal(format!(
                        "journal/trace desync: arrival {} journaled as shed job {}",
                        expect.id, req.id
                    )));
                }
                self.log.push_counter(&format!("shed.{kind}"), 1);
                self.log.push_counter(&format!("shed.tenant.{}", req.tenant), 1);
                self.shed.push((*req, kind.clone()));
                self.arrival_cursor += 1;
            }
            Record::Batched { shard, batch, jobs } => {
                let s = self.shard_index(*shard)?;
                let members = self.shards[s].admission.take_ids(jobs)?;
                let assembled = crate::batch::assemble(members, &self.cfg.serve.batch)?;
                self.batch_info.insert(
                    *batch,
                    BatchInfo { batch: assembled, placement: None },
                );
                self.shards[s].pending = Some(*batch);
                self.next_batch = self.next_batch.max(batch + 1);
                self.log.push_counter("fleet.batches", 1);
            }
            Record::Started { shard, batch, start_s, service_s, nr, ntg, policy, decomp, epoch } => {
                let s = self.shard_index(*shard)?;
                self.tick = self.tick.max(self.tick_of(*start_s));
                if *epoch != self.ring.epoch() {
                    return Err(ServeError::Journal(format!(
                        "batch {batch} started at ring epoch {epoch}, but replay \
                         reconstructed epoch {} — routing would diverge",
                        self.ring.epoch()
                    )));
                }
                let policy = *SchedulerPolicy::ALL.get(*policy).ok_or_else(|| {
                    ServeError::Journal(format!("batch {batch}: policy index {policy}"))
                })?;
                let decomp = *Decomposition::ALL.get(*decomp).ok_or_else(|| {
                    ServeError::Journal(format!("batch {batch}: decomp index {decomp}"))
                })?;
                let info = self.batch_info.get_mut(batch).ok_or_else(|| {
                    ServeError::Journal(format!("batch {batch} started but never formed"))
                })?;
                info.placement = Some(Placement { nr: *nr, ntg: *ntg, policy, decomp });
                let remaining = info.batch.members.iter().map(|m| m.request.id).collect();
                self.shards[s].pending = None;
                self.shards[s].inflight = Some(Inflight {
                    batch: *batch,
                    remaining,
                    done_s: start_s + service_s,
                });
            }
            Record::Completed { shard, batch, job, done_s, hash } => {
                let req = *self.accepted.get(job).ok_or_else(|| {
                    ServeError::Journal(format!("job {job} completed but never accepted"))
                })?;
                if !self.completed.insert(*job) {
                    return Err(ServeError::Journal(format!("job {job} completed twice")));
                }
                self.open.remove(job);
                if let Some(h) = hash {
                    self.hash_cache.entry(*batch).or_default().insert(*job, *h);
                }
                let latency_s = done_s - req.arrival_s;
                self.jobs.push(FleetJob {
                    request: req,
                    shard: *shard,
                    batch: *batch,
                    done_s: *done_s,
                    latency_s,
                    hash: *hash,
                    deadline_met: latency_s <= req.deadline.budget_s(),
                });
                self.log.push_counter(&format!("served.tenant.{}", req.tenant), 1);
                self.makespan = self.makespan.max(*done_s);
                self.remove_member(*shard, *batch, *job);
                // Completions fire in a tick's first phase, before any
                // heartbeat stamps the tick — recover it from `done_s` so a
                // crash cut after the run's last heartbeat still resumes at
                // the right tick.
                self.tick = self.tick.max(self.tick_of(*done_s));
            }
            Record::Suppressed { shard, batch, job, t_s, hash } => {
                if !self.completed.contains(job) {
                    return Err(ServeError::Journal(format!(
                        "job {job} suppressed before any completion"
                    )));
                }
                // The zombie's result must agree with whatever hash this
                // batch already recorded for the job — a divergence means a
                // silently corrupted result raced the idempotency guard.
                if let Some(h) = hash {
                    let slot = self.hash_cache.entry(*batch).or_default();
                    match slot.get(job) {
                        Some(prev) if *prev != *h => {
                            return Err(ServeError::Journal(format!(
                                "zombie report of job {job} in batch {batch} diverges from \
                                 the recorded result hash ({prev:016x} vs {h:016x})"
                            )));
                        }
                        _ => {
                            slot.insert(*job, *h);
                        }
                    }
                }
                self.log.push_counter("fleet.suppressed", 1);
                self.remove_member(*shard, *batch, *job);
                self.tick = self.tick.max(self.tick_of(*t_s));
            }
            Record::CorruptionDetected { shard, batch, detections, t_s } => {
                let s = self.shard_index(*shard)?;
                self.tick = self.tick.max(self.tick_of(*t_s));
                self.corruption_x.insert(*batch);
                self.shards[s].corruptions += detections;
                self.log.push_counter("fleet.corruption.detected", *detections);
                let tick = self.tick_of(*t_s);
                if let Some(state) = self.shards[s].breaker.on_corruption(tick, &self.cfg.health) {
                    self.log.push_state(*t_s, *shard, state);
                    self.log.push_counter(&format!("fleet.breaker.{state}"), 1);
                }
            }
            Record::Recomputed { shard, batch, rollbacks, t_s } => {
                self.shard_index(*shard)?;
                self.tick = self.tick.max(self.tick_of(*t_s));
                self.corruption_r.insert(*batch);
                self.log.push_counter("fleet.corruption.recomputed", *rollbacks);
            }
            Record::Heartbeat { shard, tick, t_s, ok } => {
                let s = self.shard_index(*shard)?;
                self.tick = *tick;
                self.hb_tick = Some(*tick);
                self.hb_from = s + 1;
                let hb = if *ok { "fleet.heartbeat.ok" } else { "fleet.heartbeat.miss" };
                self.log.push_counter(hb, 1);
                if let Some(state) =
                    self.shards[s].breaker.on_heartbeat(*ok, *tick, &self.cfg.health)
                {
                    self.log.push_state(*t_s, *shard, state);
                    self.log.push_counter(&format!("fleet.breaker.{state}"), 1);
                }
            }
            Record::ShardDown { shard, t_s } => {
                let s = self.shard_index(*shard)?;
                self.tick = self.tick.max(self.tick_of(*t_s));
                self.shards[s].down = true;
                self.ring.remove(*shard);
                self.log.push_state(*t_s, *shard, "down");
                self.log.push_counter("fleet.shard_down", 1);
                // Drain everything the shard still owes: its queue, a
                // batch formed but not started, and the executing batch.
                let mut drain: Vec<u64> = self.shards[s]
                    .admission
                    .drain()
                    .into_iter()
                    .map(|r| r.id)
                    .collect();
                if let Some(b) = self.shards[s].pending.take() {
                    let info = self.batch_info.get(&b).ok_or_else(|| {
                        ServeError::Journal(format!("pending batch {b} has no batch info"))
                    })?;
                    for m in &info.batch.members {
                        if !self.completed.contains(&m.request.id) {
                            drain.push(m.request.id);
                        }
                    }
                }
                if let Some(inf) = self.shards[s].inflight.take() {
                    drain.extend(inf.remaining.iter().copied());
                    // A truly-alive shard (partition, not death) keeps its
                    // run as an orphan: its completions will race the
                    // failover re-runs into the idempotency guard.
                    if self.death_time[s].is_none_or(|d| d > *t_s) {
                        self.shards[s].orphan = Some(inf);
                    }
                }
                // Loosest deadline (then highest id) first: each restore
                // pushes ahead of the previous, so the survivor's queue
                // ends tightest-deadline, smallest-id at the front.
                let accepted = &self.accepted;
                drain.sort_by(|a, b| {
                    let ba = accepted.get(a).map_or(0.0, |r| r.deadline.budget_s());
                    let bb = accepted.get(b).map_or(0.0, |r| r.deadline.budget_s());
                    bb.total_cmp(&ba).then(b.cmp(a))
                });
                self.pending_failover
                    .extend(drain.into_iter().map(|id| (*shard, id)));
            }
            Record::Failover { from, to, job, t_s } => {
                let t = self.shard_index(*to)?;
                self.tick = self.tick.max(self.tick_of(*t_s));
                match self.pending_failover.pop_front() {
                    Some(head) if head == (*from, *job) => {}
                    head => {
                        return Err(ServeError::Journal(format!(
                            "failover of job {job} does not match the drain queue head {head:?}"
                        )))
                    }
                }
                let req = *self.accepted.get(job).ok_or_else(|| {
                    ServeError::Journal(format!("job {job} failed over but never accepted"))
                })?;
                self.shards[t].admission.restore_front(req);
                self.log.push_counter("fleet.failover.jobs", 1);
            }
            Record::Degraded { level, t_s } => {
                self.tick = self.tick.max(self.tick_of(*t_s));
                let lvl = *DegradeLevel::ALL.get(*level).ok_or_else(|| {
                    ServeError::Journal(format!("degrade level index {level}"))
                })?;
                self.ladder.set_level(lvl);
                self.degrade_t = Some(*t_s);
                self.log.push_counter(&format!("fleet.degrade.{}", lvl.name()), 1);
                self.log.push_state(*t_s, self.cfg.shards as u32, lvl.name());
            }
            Record::ScaleUp { shard, t_s } => {
                let s = self.shard_index(*shard)?;
                if self.active[s] || self.shards[s].down {
                    return Err(ServeError::Journal(format!(
                        "scale-up of shard {shard}, which is already active or down"
                    )));
                }
                self.tick = self.tick.max(self.tick_of(*t_s));
                self.active[s] = true;
                self.ring.insert(*shard);
                // At least one warm tick: the activation tick itself must
                // count as warm-up, because scale-up (phase 5) lands after
                // the tick's heartbeat sweep (phase 2) — a shard probed on
                // its own activation tick would diverge on crash replay.
                self.warm_until[s] = self.tick_of(*t_s)
                    + self.cfg.autoscale.map_or(1, |a| a.warmup_ticks.max(1));
                self.scale_t = Some(*t_s);
                self.log.push_counter("fleet.scale.up", 1);
                self.log.push_state(*t_s, *shard, "warming");
            }
            Record::ScaleDown { shard, t_s } => {
                let s = self.shard_index(*shard)?;
                if !self.active[s] || self.shards[s].down {
                    return Err(ServeError::Journal(format!(
                        "scale-down of shard {shard}, which is not active"
                    )));
                }
                if self.shards[s].admission.depth() > 0
                    || self.shards[s].pending.is_some()
                    || self.shards[s].inflight.is_some()
                {
                    return Err(ServeError::Journal(format!(
                        "scale-down of shard {shard} while it still holds work"
                    )));
                }
                self.tick = self.tick.max(self.tick_of(*t_s));
                self.active[s] = false;
                self.ring.remove(*shard);
                self.scale_t = Some(*t_s);
                self.log.push_counter("fleet.scale.down", 1);
                self.log.push_state(*t_s, *shard, "standby");
            }
            Record::Stolen { from, to, batch, t_s } => {
                let f = self.shard_index(*from)?;
                let t = self.shard_index(*to)?;
                if f == t {
                    return Err(ServeError::Journal(format!("batch {batch} stolen by its owner")));
                }
                if self.shards[f].pending != Some(*batch) {
                    return Err(ServeError::Journal(format!(
                        "stolen batch {batch} is not pending on origin shard {from}"
                    )));
                }
                if self.shards[t].pending.is_some() || self.shards[t].down || !self.active[t] {
                    return Err(ServeError::Journal(format!(
                        "batch {batch} stolen by shard {to}, which cannot take it"
                    )));
                }
                self.tick = self.tick.max(self.tick_of(*t_s));
                self.shards[f].pending = None;
                self.shards[t].pending = Some(*batch);
                self.log.push_counter("fleet.steal", 1);
            }
        }
        Ok(())
    }

    /// The result hash of `job` in `batch` — `None` on modeled runs. Real
    /// runs hit the cache (filled by replayed `Completed` records, so
    /// journaled completions never re-execute); a miss re-executes the
    /// batch once, purely, and caches every member. When the execution
    /// absorbed corruption, the batch's `CorruptionDetected` / `Recomputed`
    /// records are journaled here — before its first completion, and only
    /// once per batch (resume replays them through `apply`, which marks
    /// the guard sets).
    fn hash_for(
        &mut self,
        shard: u32,
        batch: u64,
        job: u64,
        t_s: f64,
    ) -> Result<Option<u64>, ServeError> {
        if !(self.cfg.serve.execute_real || self.cfg.serve.chaos.is_some()) {
            return Ok(None);
        }
        if let Some(h) = self.hash_cache.get(&batch).and_then(|m| m.get(&job)) {
            return Ok(Some(*h));
        }
        let (assembled, placement) = {
            let info = self.batch_info.get(&batch).ok_or_else(|| {
                ServeError::Journal(format!("batch {batch} executed but never formed"))
            })?;
            let placement = info.placement.ok_or_else(|| {
                ServeError::Journal(format!("batch {batch} executed before it started"))
            })?;
            (info.batch.clone(), placement)
        };
        let run = self.backend.execute(&assembled, &placement, batch as usize, false);
        // Not journaled: on resume the prefix's hashes come from the
        // journal's Completed records, so this counter is the run's *real*
        // execution count — the replay-overhead measurement.
        self.log.push_counter("fleet.exec.batch", 1);
        if run.detections > 0 && !self.corruption_x.contains(&batch) {
            self.emit(Record::CorruptionDetected {
                shard,
                batch,
                detections: run.detections,
                t_s,
            })?;
        }
        if run.detections > 0 && run.rollbacks > 0 && !self.corruption_r.contains(&batch) {
            self.emit(Record::Recomputed { shard, batch, rollbacks: run.rollbacks, t_s })?;
        }
        let entry = self.hash_cache.entry(batch).or_default();
        for m in &assembled.members {
            let range = &run.output.bands[m.band_start..m.band_start + m.request.bands];
            entry.insert(m.request.id, band_hash(range));
        }
        entry.get(&job).copied().map(Some).ok_or_else(|| {
            ServeError::Journal(format!("job {job} is not a member of batch {batch}"))
        })
    }

    /// Completes (or suppresses, when already completed elsewhere) one
    /// member of a finished batch. A suppressed zombie still hashes its
    /// own result, so the journal carries the evidence the conservation
    /// audit needs to catch a corrupted duplicate.
    fn complete_member(
        &mut self,
        shard: u32,
        batch: u64,
        job: u64,
        done_s: f64,
    ) -> Result<(), ServeError> {
        if self.completed.contains(&job) {
            let hash = self.hash_for(shard, batch, job, done_s)?;
            return self.emit(Record::Suppressed { shard, batch, job, t_s: done_s, hash });
        }
        let hash = self.hash_for(shard, batch, job, done_s)?;
        self.emit(Record::Completed { shard, batch, job, done_s, hash })
    }

    /// Phase 1: batches whose virtual completion time has passed — and
    /// whose shard was truly alive to finish them — complete member by
    /// member. Orphans of spuriously-dead shards complete here too.
    fn phase_completions(&mut self, t: f64) -> Result<(), ServeError> {
        for s in 0..self.cfg.shards {
            for orphan in [false, true] {
                let slot = if orphan {
                    self.shards[s].orphan.clone()
                } else {
                    self.shards[s].inflight.clone()
                };
                let Some(inf) = slot else { continue };
                if inf.done_s > t || !self.alive_at(s, inf.done_s) {
                    continue;
                }
                for job in inf.remaining {
                    self.complete_member(s as u32, inf.batch, job, inf.done_s)?;
                }
            }
        }
        Ok(())
    }

    /// Phase 2: one heartbeat probe per monitored shard (standby and
    /// still-warming shards are not probed — a warming shard serves
    /// nothing yet, and its warm window always covers its activation
    /// tick, keeping the sweep identical on crash replay). The journaled
    /// cursor (`hb_tick`, `hb_from`) re-enters a half-finished sweep.
    fn phase_heartbeats(&mut self, t: f64) -> Result<(), ServeError> {
        let start = if self.hb_tick == Some(self.tick) { self.hb_from } else { 0 };
        for s in start..self.cfg.shards {
            if self.shards[s].down || !self.active[s] || self.warming(s) {
                continue;
            }
            let ok = self.alive_at(s, t) && !self.partition.cut_at(s as u64, t, self.cfg.horizon_s);
            self.emit(Record::Heartbeat { shard: s as u32, tick: self.tick, t_s: t, ok })?;
        }
        Ok(())
    }

    /// Phase 3: death declarations — separate from the heartbeat sweep so
    /// the heartbeat cursor can never skip a `ShardDown` on resume.
    fn phase_deaths(&mut self, t: f64) -> Result<(), ServeError> {
        for s in 0..self.cfg.shards {
            if self.shards[s].down {
                continue;
            }
            if self.shards[s].breaker.consecutive_misses() >= self.cfg.health.death_threshold {
                self.emit(Record::ShardDown { shard: s as u32, t_s: t })?;
            }
        }
        Ok(())
    }

    /// Phase 4: drain the failover queue onto the surviving ring members.
    /// Breaker-open members are a last resort; an elastic fleet whose
    /// ring emptied entirely repairs itself with an emergency scale-up
    /// before giving up.
    fn phase_failover(&mut self, t: f64) -> Result<(), ServeError> {
        while let Some(&(from, job)) = self.pending_failover.front() {
            let mut candidates: Vec<u32> = self
                .ring
                .members()
                .iter()
                .copied()
                .filter(|&s| self.shards[s as usize].breaker.admits())
                .collect();
            if candidates.is_empty() {
                candidates = self.ring.members().to_vec();
            }
            if candidates.is_empty() {
                if self.cfg.autoscale.is_some() {
                    let target = self.scale_up_target().or_else(|| {
                        (0..self.cfg.shards).find(|&s| !self.active[s] && !self.shards[s].down)
                    });
                    if let Some(s) = target {
                        self.emit(Record::ScaleUp { shard: s as u32, t_s: t })?;
                        continue;
                    }
                }
                return Err(ServeError::Journal(format!(
                    "no surviving shard to fail job {job} over to"
                )));
            }
            let req = *self.accepted.get(&job).ok_or_else(|| {
                ServeError::Journal(format!("job {job} drained but never accepted"))
            })?;
            let to = self
                .ring
                .route(req.tenant as u64, |s| candidates.contains(&s))
                .ok_or_else(|| {
                    ServeError::Journal(format!("failover of job {job} found no route"))
                })?;
            self.emit(Record::Failover { from, to, job, t_s: t })?;
        }
        Ok(())
    }

    /// The pool shard an elastic fleet would activate next: the lowest
    /// standby index whose breaker admits with no corruption strikes —
    /// scale-up never lands on a quarantined or corruption-striken node.
    fn scale_up_target(&self) -> Option<usize> {
        (0..self.cfg.shards).find(|&s| {
            !self.active[s]
                && !self.shards[s].down
                && self.shards[s].breaker.admits()
                && self.shards[s].breaker.corruption_strikes() == 0
        })
    }

    /// The shard an elastic fleet would retire next: the highest active
    /// index that is fully idle (nothing queued, pending, or in flight),
    /// so retirement never needs a drain.
    fn scale_down_target(&self) -> Option<usize> {
        (0..self.cfg.shards).rev().find(|&s| {
            self.active[s]
                && !self.shards[s].down
                && self.shards[s].admission.depth() == 0
                && self.shards[s].pending.is_none()
                && self.shards[s].inflight.is_none()
        })
    }

    /// Phase 5: the reactive autoscaler — one journaled scale decision at
    /// most every cooldown window, driven by the hysteresis controller
    /// over active-fleet queue pressure, gated by the degrade ladder.
    /// Every input is journal-derived, so replay reproduces each decision
    /// exactly, and the ≥1-tick cooldown makes re-running the crash tick
    /// a no-op after its decision was journaled.
    fn phase_autoscale(&mut self, t: f64) -> Result<(), ServeError> {
        let Some(a) = self.cfg.autoscale else { return Ok(()) };
        if let Some(ts) = self.scale_t {
            if self.tick < self.tick_of(ts) + a.cooldown() {
                return Ok(());
            }
        }
        let active_alive: Vec<usize> = (0..self.cfg.shards)
            .filter(|&s| self.active[s] && !self.shards[s].down)
            .collect();
        let serving: Vec<usize> = active_alive
            .iter()
            .copied()
            .filter(|&s| self.shards[s].breaker.admits())
            .collect();
        let pressure = if serving.is_empty() {
            1.0
        } else {
            let depth: usize = serving.iter().map(|&s| self.shards[s].admission.depth()).sum();
            depth as f64 / (serving.len() * self.cfg.serve.admission.queue_cap) as f64
        };
        let level = self.ladder.level();
        let decision = autoscale::decide(
            &a,
            active_alive.len(),
            pressure,
            level == DegradeLevel::Normal,
            level == DegradeLevel::Quarantine,
        );
        match decision {
            ScaleDecision::Up => {
                if let Some(s) = self.scale_up_target() {
                    self.emit(Record::ScaleUp { shard: s as u32, t_s: t })?;
                }
            }
            ScaleDecision::Down => {
                if let Some(s) = self.scale_down_target() {
                    self.emit(Record::ScaleDown { shard: s as u32, t_s: t })?;
                }
            }
            ScaleDecision::Hold => {}
        }
        Ok(())
    }

    /// Phase 6: admit (or shed) every arrival due by `t`, routing over
    /// the consistent-hash ring with bounded-load overflow: a tenant
    /// whose home shard is saturated past the load bound spills clockwise
    /// to the next admitting member instead of queueing behind the
    /// hotspot.
    fn phase_arrivals(&mut self, t: f64) -> Result<(), ServeError> {
        while self
            .trace
            .get(self.arrival_cursor)
            .is_some_and(|r| r.arrival_s <= t)
        {
            let req = self.trace[self.arrival_cursor];
            let level = self.ladder.level();
            if !level.admits(req.deadline) {
                let kind = RejectReason::FleetDegraded { level: level.name() }.kind();
                self.emit(Record::Shed { req, kind: kind.to_string() })?;
                continue;
            }
            let total: usize = self
                .ring
                .members()
                .iter()
                .map(|&m| self.shards[m as usize].admission.depth())
                .sum();
            let bound = load_bound(total, self.ring.members().len(), self.cfg.ring.load_factor);
            let shards = &self.shards;
            let target = self.ring.route_bounded(
                req.tenant as u64,
                bound,
                |s| shards[s as usize].admission.depth(),
                |s| shards[s as usize].breaker.admits(),
            );
            let Some(target) = target else {
                self.emit(Record::Shed { req, kind: "no_shard".to_string() })?;
                continue;
            };
            let target = target as usize;
            // Completion estimate on the target: residual busy time, the
            // backlog ahead, and the request's own service.
            let mut estimate = self.shards[target]
                .inflight
                .as_ref()
                .map_or(0.0, |i| (i.done_s - t).max(0.0));
            let backlog: Vec<Request> =
                self.shards[target].admission.queued().copied().collect();
            for q in &backlog {
                estimate += self.request_estimate(q);
            }
            estimate += self.request_estimate(&req);
            match self.shards[target].admission.check(&req, estimate) {
                Ok(()) => {
                    let key = idempotency_key(self.cfg.serve.seed, req.id);
                    self.emit(Record::Accepted { req, key, shard: target as u32 })?;
                }
                Err(reason) => {
                    self.emit(Record::Shed { req, kind: reason.kind().to_string() })?;
                }
            }
        }
        Ok(())
    }

    /// Phase 7: idle, warm shards pull whole formed-but-unstarted batches
    /// from busy ones. Two journaled steps per steal — `Batched` on the
    /// victim, then `Stolen` moving it to the thief — so a crash between
    /// them resumes unambiguously: a victim holding a pending batch
    /// *while busy executing another* can only be mid-steal (dispatch
    /// only forms batches for idle shards), and is drained first.
    fn phase_steal(&mut self, t: f64) -> Result<(), ServeError> {
        if !self.cfg.steal {
            return Ok(());
        }
        let thieves: Vec<usize> = (0..self.cfg.shards)
            .filter(|&s| {
                self.active[s]
                    && !self.shards[s].down
                    && !self.warming(s)
                    && self.shards[s].breaker.admits()
                    && self.shards[s].inflight.is_none()
                    && self.shards[s].pending.is_none()
                    && self.shards[s].admission.depth() == 0
            })
            .collect();
        for thief in thieves {
            if self.shards[thief].pending.is_some() {
                continue; // the journal prefix already gave this thief its batch
            }
            // A busy victim already holding a formed batch is a steal the
            // crash interrupted between its two records: finish it first.
            let mid = (0..self.cfg.shards).find(|&v| {
                v != thief
                    && self.active[v]
                    && !self.shards[v].down
                    && self.shards[v].inflight.is_some()
                    && self.shards[v].pending.is_some()
            });
            let victim = match mid {
                Some(v) => v,
                None => {
                    let mut best: Option<(usize, usize)> = None;
                    for v in 0..self.cfg.shards {
                        if v == thief
                            || !self.active[v]
                            || self.shards[v].down
                            || self.warming(v)
                            || self.shards[v].inflight.is_none()
                            || self.shards[v].pending.is_some()
                        {
                            continue;
                        }
                        let d = self.shards[v].admission.depth();
                        if d > 0 && best.is_none_or(|(_, bd)| d > bd) {
                            best = Some((v, d));
                        }
                    }
                    match best {
                        Some((v, _)) => v,
                        None => break, // no busy backlog anywhere: nothing to steal
                    }
                }
            };
            if self.shards[victim].pending.is_none() {
                let mut bc = self.cfg.serve.batch;
                if self.ladder.level().splits_batches() {
                    bc.max_bands = (bc.max_bands / 2).max(1);
                }
                let queue: Vec<Request> = self.shards[victim].admission.queued().copied().collect();
                let plan = plan_batch(queue.iter(), &bc);
                if plan.is_empty() {
                    continue;
                }
                let jobs: Vec<u64> = plan.iter().map(|&p| queue[p].id).collect();
                let batch = self.next_batch;
                self.emit(Record::Batched { shard: victim as u32, batch, jobs })?;
            }
            let batch = self.shards[victim].pending.ok_or_else(|| {
                ServeError::Journal(format!("steal lost its formed batch on shard {victim}"))
            })?;
            self.emit(Record::Stolen { from: victim as u32, to: thief as u32, batch, t_s: t })?;
        }
        Ok(())
    }

    /// Phase 8: each idle shard forms its next batch (band cap halved at
    /// `SplitLarge` and above) and starts it — two journaled steps, so a
    /// crash between them resumes with the identical member set. Standby
    /// and warming shards execute nothing.
    fn phase_dispatch(&mut self, t: f64) -> Result<(), ServeError> {
        for s in 0..self.cfg.shards {
            if self.shards[s].down || !self.active[s] || self.warming(s) {
                continue;
            }
            if self.shards[s].pending.is_none() {
                if self.shards[s].inflight.is_some() || self.shards[s].admission.depth() == 0 {
                    continue;
                }
                let mut bc = self.cfg.serve.batch;
                if self.ladder.level().splits_batches() {
                    bc.max_bands = (bc.max_bands / 2).max(1);
                }
                let queue: Vec<Request> = self.shards[s].admission.queued().copied().collect();
                let plan = plan_batch(queue.iter(), &bc);
                if plan.is_empty() {
                    continue;
                }
                let jobs: Vec<u64> = plan.iter().map(|&p| queue[p].id).collect();
                let batch = self.next_batch;
                self.emit(Record::Batched { shard: s as u32, batch, jobs })?;
            }
            if let Some(batch) = self.shards[s].pending {
                let (class, nbnd) = {
                    let info = self.batch_info.get(&batch).ok_or_else(|| {
                        ServeError::Journal(format!("pending batch {batch} has no batch info"))
                    })?;
                    (info.batch.class, info.batch.nbnd)
                };
                let placement = self.decide(class, nbnd);
                let base = self.tuner.service_s(class, nbnd, &placement);
                let service_s = base * self.slow.factor(s as u64);
                let policy = SchedulerPolicy::ALL
                    .iter()
                    .position(|p| *p == placement.policy)
                    .ok_or_else(|| {
                        ServeError::Journal("placement policy missing from ALL".into())
                    })?;
                self.emit(Record::Started {
                    shard: s as u32,
                    batch,
                    start_s: t,
                    service_s,
                    nr: placement.nr,
                    ntg: placement.ntg,
                    policy,
                    decomp: placement.decomp.index(),
                    epoch: self.ring.epoch(),
                })?;
            }
        }
        Ok(())
    }

    /// Phase 9: the brown-out ladder moves at most one level per tick on
    /// the admitting active shards' mean queue occupancy, or — past
    /// [`DegradeConfig::quarantine_at`] — on the fraction of started
    /// batches whose results failed ABFT verification. Both pressures are
    /// journal-derived, so the step is replay-stable.
    fn phase_degrade(&mut self, t: f64) -> Result<(), ServeError> {
        if self.degrade_t == Some(t) {
            return Ok(()); // transition already journaled this tick
        }
        let admitting: Vec<usize> = (0..self.cfg.shards)
            .filter(|&s| {
                self.active[s] && !self.shards[s].down && self.shards[s].breaker.admits()
            })
            .collect();
        let pressure = if admitting.is_empty() {
            1.0
        } else {
            let depth: usize = admitting
                .iter()
                .map(|&s| self.shards[s].admission.depth())
                .sum();
            depth as f64 / (admitting.len() * self.cfg.serve.admission.queue_cap) as f64
        };
        let started = self.log.counter_total("fleet.batches");
        let corruption = if started == 0 {
            0.0
        } else {
            self.corruption_x.len() as f64 / started as f64
        };
        if let Some(next) = self.ladder.next_level(pressure, corruption, &self.cfg.degrade) {
            self.emit(Record::Degraded { level: next.index(), t_s: t })?;
        }
        Ok(())
    }

    /// The live loop: runs the fixed phase order tick by tick until every
    /// arrival is consumed and no accepted job is open.
    ///
    /// # Errors
    /// [`ServeError::Stalled`] past the safety tick bound; any journal /
    /// state inconsistency a phase detects.
    fn run_loop(&mut self, resume: bool) -> Result<(), ServeError> {
        if resume && !self.journal.is_empty() {
            // Finish the crash tick before re-checking the exit condition:
            // the cut may fall after the tick's final completion emptied
            // `open` but before its heartbeats, and the uninterrupted run
            // finished that tick. Every phase is idempotent over its
            // already-journaled part, so nothing is emitted twice.
            let t = self.tick as f64 * self.cfg.health.tick_s;
            self.run_tick(t)?;
            self.tick += 1;
        }
        while self.arrival_cursor < self.trace.len() || !self.open.is_empty() {
            if self.tick > self.cfg.max_ticks {
                return Err(ServeError::Stalled {
                    tick: self.tick,
                    open_jobs: self.open.len(),
                });
            }
            let t = self.tick as f64 * self.cfg.health.tick_s;
            self.run_tick(t)?;
            self.tick += 1;
        }
        Ok(())
    }

    /// One tick in the fixed phase order. Each phase skips the part of its
    /// work the journal already records, so re-running a partially
    /// journaled tick (crash recovery) emits exactly the missing suffix.
    fn run_tick(&mut self, t: f64) -> Result<(), ServeError> {
        self.phase_completions(t)?;
        self.phase_heartbeats(t)?;
        self.phase_deaths(t)?;
        self.phase_failover(t)?;
        self.phase_autoscale(t)?;
        self.phase_arrivals(t)?;
        self.phase_steal(t)?;
        self.phase_dispatch(t)?;
        self.phase_degrade(t)?;
        Ok(())
    }

    fn into_report(self) -> Result<FleetReport, ServeError> {
        let conservation = self.journal.conservation()?;
        let counters = self
            .log
            .counters()
            .map_err(|e| ServeError::Journal(format!("telemetry log: {e}")))?;
        let timeline = self
            .log
            .state_timeline()
            .map_err(|e| ServeError::Journal(format!("telemetry log: {e}")))?;
        Ok(FleetReport {
            shards: self.cfg.shards,
            jobs: self.jobs,
            shed: self.shed,
            counters,
            timeline,
            journal: self.journal,
            conservation,
            makespan_s: self.makespan,
        })
    }
}

/// Runs a fleet over an arrival-ordered request trace.
///
/// # Errors
/// See [`Fleet::new`] and the loop phases.
pub fn run_fleet(requests: &[Request], cfg: &FleetConfig) -> Result<FleetReport, ServeError> {
    let mut fleet = Fleet::new(requests, *cfg)?;
    fleet.run_loop(false)?;
    fleet.into_report()
}

/// Crash recovery: replays a journal `prefix` through the apply path,
/// then continues the live loop. With the same trace and configuration
/// the result — including the journal itself — is byte-identical to the
/// uninterrupted run's, from any record-boundary crash point.
///
/// # Errors
/// [`ServeError::Journal`] when the prefix contradicts the trace or
/// itself; otherwise see [`run_fleet`].
pub fn resume_fleet(
    prefix: &Journal,
    requests: &[Request],
    cfg: &FleetConfig,
) -> Result<FleetReport, ServeError> {
    let mut fleet = Fleet::new(requests, *cfg)?;
    for rec in prefix.records() {
        fleet.journal.append(rec.clone());
        let rec = rec.clone();
        fleet.apply(&rec)?;
    }
    fleet.run_loop(true)?;
    fleet.into_report()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::{generate, LoadProfile, TrafficConfig};

    fn trace(seed: u64, rate_hz: f64) -> Vec<Request> {
        generate(&TrafficConfig {
            seed,
            rate_hz,
            duration_s: 1.0,
            tenants: 3,
            profile: LoadProfile::Steady,
        })
    }

    #[test]
    fn healthy_fleet_conserves_and_replays_bit_identically() {
        let reqs = trace(7, 40.0);
        let cfg = FleetConfig::default();
        let a = run_fleet(&reqs, &cfg).expect("fleet");
        let b = run_fleet(&reqs, &cfg).expect("fleet");
        assert_eq!(a.journal.encode(), b.journal.encode());
        assert!(a.conservation.open.is_empty(), "no job left open");
        assert_eq!(a.offered(), reqs.len());
        assert_eq!(a.jobs.len(), a.conservation.completed);
        assert_eq!(a.counters.get("fleet.shard_down"), 0);
        assert!(a.counters.get("fleet.batches") > 0);
        assert!(a.makespan_s > 0.0);
    }

    #[test]
    fn node_death_fails_over_without_losing_a_job() {
        let reqs = trace(7, 80.0);
        let cfg = FleetConfig {
            faults: FleetFaults { seed: 3, p_death: 0.9, ..Default::default() },
            ..Default::default()
        };
        let r = run_fleet(&reqs, &cfg).expect("fleet");
        assert!(r.counters.get("fleet.shard_down") >= 1, "a shard must die");
        assert!(r.counters.get("fleet.failover.jobs") >= 1, "work must move");
        assert!(r.conservation.open.is_empty(), "zero loss across failover");
        assert_eq!(r.offered(), reqs.len());
        assert!(!r.failover_latencies().is_empty());
        // The run stays deterministic under faults.
        let again = run_fleet(&reqs, &cfg).expect("fleet");
        assert_eq!(r.journal.encode(), again.journal.encode());
    }

    #[test]
    fn resume_from_any_crash_point_matches_the_uninterrupted_run() {
        let reqs = trace(11, 60.0);
        let cfg = FleetConfig {
            faults: FleetFaults { seed: 3, p_death: 0.9, ..Default::default() },
            ..Default::default()
        };
        let full = run_fleet(&reqs, &cfg).expect("fleet");
        let n = full.journal.len();
        for cut in [0, n / 3, 2 * n / 3, n.saturating_sub(1), n] {
            let mut prefix = Journal::new();
            for rec in &full.journal.records()[..cut] {
                prefix.append(rec.clone());
            }
            let resumed = resume_fleet(&prefix, &reqs, &cfg).expect("resume");
            assert_eq!(
                resumed.journal.encode(),
                full.journal.encode(),
                "resume from record {cut}/{n} diverged"
            );
            assert_eq!(resumed.jobs, full.jobs);
        }
    }

    #[test]
    fn overload_engages_the_degrade_ladder() {
        let reqs = generate(&TrafficConfig {
            seed: 11,
            rate_hz: 400.0,
            duration_s: 1.0,
            tenants: 2,
            profile: LoadProfile::Burst,
        });
        let cfg = FleetConfig {
            shards: 1,
            serve: ServeConfig {
                admission: crate::admission::AdmissionConfig {
                    queue_cap: 8,
                    tenant_share: 1.0,
                    shed_late: false,
                },
                ..Default::default()
            },
            ..Default::default()
        };
        let r = run_fleet(&reqs, &cfg).expect("fleet");
        assert!(
            r.counters.sum_prefix("fleet.degrade.") > 0,
            "the ladder must move under a saturating burst"
        );
        assert!(
            r.counters.get("shed.degraded") > 0,
            "the ladder must shed by deadline class"
        );
        assert!(r.conservation.open.is_empty());
        assert_eq!(r.offered(), reqs.len());
        // The ladder recovers once the backlog drains.
        assert_eq!(r.timeline.last_state(cfg.shards as u32), Some("normal"));
    }

    #[test]
    fn partition_duplicates_are_suppressed_exactly_once() {
        // Slow nodes stretch service past the death delay, so partitioned
        // shards are declared dead while work is still in flight: the
        // zombie completions then race their failover re-runs into the
        // idempotency guard.
        let reqs = trace(7, 200.0);
        let cfg = FleetConfig {
            faults: FleetFaults {
                seed: 19,
                p_partition: 0.4,
                partition_window: 0.3,
                p_slow: 1.0,
                slow_max: 30.0,
                ..Default::default()
            },
            ..Default::default()
        };
        let r = run_fleet(&reqs, &cfg).expect("fleet");
        assert!(
            r.counters.get("fleet.shard_down") >= 1,
            "a partition long enough must get a shard declared dead"
        );
        assert!(
            r.counters.get("fleet.suppressed") >= 1,
            "split-brain must produce at least one suppressed duplicate"
        );
        assert_eq!(
            r.counters.get("fleet.suppressed"),
            r.conservation.suppressed as u64
        );
        assert!(r.conservation.open.is_empty(), "zero loss under split-brain");
        assert_eq!(r.offered(), reqs.len());
    }

    fn corrupt_cfg(seed: u64) -> FleetConfig {
        FleetConfig {
            serve: ServeConfig {
                mode: PlacementMode::Static(SchedulerPolicy::Serial),
                chaos: Some(crate::exec::ServeChaos {
                    seed,
                    evict_batch: None,
                    corrupt_per_mille: 1000,
                }),
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn corruption_is_detected_journaled_and_resumes_bit_identically() {
        let reqs = trace(7, 40.0);
        let cfg = corrupt_cfg(21);
        let full = run_fleet(&reqs, &cfg).expect("fleet");
        assert!(
            full.counters.get("fleet.corruption.detected") > 0,
            "a saturating flip rate must trip the verifier"
        );
        assert_eq!(
            full.conservation.corruption_detected,
            full.counters.get("fleet.corruption.detected"),
            "journal and counters agree on detections"
        );
        assert!(full.conservation.open.is_empty(), "zero loss under corruption");
        assert!(full.conservation.hashed > 0, "real completions carry hashes");
        assert_eq!(full.offered(), reqs.len());
        // Resume across the X/R records stays byte-identical: the guard
        // sets are rebuilt by replay, never double-emitted.
        let n = full.journal.len();
        for cut in [n / 3, n / 2, 2 * n / 3] {
            let mut prefix = Journal::new();
            for rec in &full.journal.records()[..cut] {
                prefix.append(rec.clone());
            }
            let resumed = resume_fleet(&prefix, &reqs, &cfg).expect("resume");
            assert_eq!(
                resumed.journal.encode(),
                full.journal.encode(),
                "resume from record {cut}/{n} diverged under corruption"
            );
        }
    }

    #[test]
    fn sustained_corruption_quarantines_the_fleet() {
        let reqs = trace(7, 80.0);
        let r = run_fleet(&reqs, &corrupt_cfg(5)).expect("fleet");
        assert!(r.counters.get("fleet.corruption.detected") > 0);
        assert!(
            r.counters.get("fleet.degrade.quarantine") > 0,
            "corruption pressure must climb the ladder past reject_new"
        );
        assert!(
            r.counters.get("fleet.breaker.open") > 0,
            "repeat-corrupting shards trip their breakers"
        );
        assert_eq!(
            r.timeline.last_state(r.shards as u32),
            Some("quarantine"),
            "corruption never subsided, so the ladder must still be up"
        );
        assert!(r.conservation.open.is_empty(), "backlog still drains to zero loss");
        assert_eq!(r.offered(), reqs.len());
    }

    #[test]
    fn ring_routing_is_stable_under_membership_change() {
        let reqs = trace(7, 40.0);
        let mut fleet = Fleet::new(&reqs, FleetConfig::default()).expect("fleet");
        assert_eq!(fleet.ring.members(), &[0, 1, 2]);
        assert_eq!(fleet.ring.epoch(), 3);
        let before: Vec<u32> = (0..16u64)
            .map(|t| fleet.ring.route(t, |_| true).expect("route"))
            .collect();
        fleet.ring.remove(0);
        for (t, &home) in before.iter().enumerate() {
            let now = fleet.ring.route(t as u64, |_| true).expect("route");
            if home != 0 {
                assert_eq!(home, now, "tenant {t} moved without cause");
            } else {
                assert_ne!(now, 0);
            }
        }
        assert_eq!(fleet.ring.epoch(), 4, "membership change bumps the epoch");
    }

    fn autoscale_cfg(shards: usize, min: usize) -> FleetConfig {
        FleetConfig {
            shards,
            autoscale: Some(crate::fleet::AutoscaleConfig {
                min,
                max: shards,
                ..Default::default()
            }),
            ..Default::default()
        }
    }

    #[test]
    fn autoscaler_grows_under_load_and_shrinks_back() {
        let reqs = generate(&TrafficConfig {
            seed: 7,
            rate_hz: 200.0,
            duration_s: 1.0,
            tenants: 4,
            profile: LoadProfile::Burst,
        });
        let cfg = autoscale_cfg(4, 1);
        let r = run_fleet(&reqs, &cfg).expect("fleet");
        assert!(r.counters.get("fleet.scale.up") >= 1, "the burst must trigger a scale-up");
        assert!(
            r.counters.get("fleet.scale.down") >= 1,
            "the fleet must shrink once the backlog drains"
        );
        assert!(r.conservation.open.is_empty(), "zero loss across scale events");
        assert_eq!(r.offered(), reqs.len());
        let again = run_fleet(&reqs, &cfg).expect("fleet");
        assert_eq!(r.journal.encode(), again.journal.encode());
    }

    #[test]
    fn elastic_resume_is_bit_identical_across_scale_records() {
        let reqs = generate(&TrafficConfig {
            seed: 11,
            rate_hz: 150.0,
            duration_s: 1.0,
            tenants: 3,
            profile: LoadProfile::Burst,
        });
        let cfg = autoscale_cfg(3, 1);
        let full = run_fleet(&reqs, &cfg).expect("fleet");
        assert!(full.counters.get("fleet.scale.up") >= 1);
        // Cut directly before and after every scale record, plus spread
        // points: the elastic run must resume byte-identically from all.
        let mut cuts: Vec<usize> = full
            .journal
            .records()
            .iter()
            .enumerate()
            .filter(|(_, r)| matches!(r, Record::ScaleUp { .. } | Record::ScaleDown { .. }))
            .flat_map(|(i, _)| [i, i + 1])
            .collect();
        let n = full.journal.len();
        cuts.extend([0, n / 2, n]);
        for cut in cuts {
            let mut prefix = Journal::new();
            for rec in &full.journal.records()[..cut] {
                prefix.append(rec.clone());
            }
            let resumed = resume_fleet(&prefix, &reqs, &cfg).expect("resume");
            assert_eq!(
                resumed.journal.encode(),
                full.journal.encode(),
                "resume from record {cut}/{n} diverged across a scale record"
            );
        }
    }

    #[test]
    fn work_stealing_moves_batches_and_stays_deterministic() {
        // A 40x-slow shard builds a multi-tick backlog while another
        // drains to idle — exactly the asymmetry stealing exists for.
        let reqs = generate(&TrafficConfig {
            seed: 7,
            rate_hz: 200.0,
            duration_s: 1.0,
            tenants: 2,
            profile: LoadProfile::Burst,
        });
        let cfg = FleetConfig {
            steal: true,
            faults: FleetFaults { seed: 7, p_slow: 0.6, slow_max: 40.0, ..Default::default() },
            ..Default::default()
        };
        let r = run_fleet(&reqs, &cfg).expect("fleet");
        assert!(r.counters.get("fleet.steal") >= 1, "an idle shard must steal");
        assert_eq!(r.conservation.steals as u64, r.counters.get("fleet.steal"));
        assert!(r.conservation.open.is_empty(), "zero loss across steals");
        assert_eq!(r.offered(), reqs.len());
        let again = run_fleet(&reqs, &cfg).expect("fleet");
        assert_eq!(r.journal.encode(), again.journal.encode());
        // Resume across the steal records: byte-identical.
        let n = r.journal.len();
        for cut in [n / 4, n / 2, 3 * n / 4] {
            let mut prefix = Journal::new();
            for rec in &r.journal.records()[..cut] {
                prefix.append(rec.clone());
            }
            let resumed = resume_fleet(&prefix, &reqs, &cfg).expect("resume");
            assert_eq!(resumed.journal.encode(), r.journal.encode());
        }
    }

    #[test]
    fn autoscale_bounds_are_validated() {
        let mut cfg = autoscale_cfg(3, 1);
        cfg.autoscale = Some(crate::fleet::AutoscaleConfig {
            min: 1,
            max: 9,
            ..Default::default()
        });
        assert!(matches!(run_fleet(&[], &cfg), Err(ServeError::Config(_))));
    }

    #[test]
    fn zero_shard_fleet_is_a_typed_error() {
        let cfg = FleetConfig { shards: 0, ..Default::default() };
        assert!(matches!(
            run_fleet(&[], &cfg),
            Err(ServeError::Journal(_))
        ));
    }
}
