//! Admission control and backpressure: a bounded FIFO queue with a
//! per-tenant fair-share cap and deadline-aware load shedding, returning
//! typed rejections so callers (and the shed-rate counters) can tell the
//! overload modes apart.

use crate::batch::{assemble, plan_batch, Batch, BatchConfig};
use crate::error::ServeError;
use crate::request::{RejectReason, Request};
use std::collections::{BTreeMap, VecDeque};

/// Admission knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Bounded queue capacity (requests).
    pub queue_cap: usize,
    /// Largest fraction of the queue one tenant may hold (fair share);
    /// at least one slot is always allowed.
    pub tenant_share: f64,
    /// Shed a request at arrival when its estimated completion time
    /// already exceeds its deadline budget.
    pub shed_late: bool,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            queue_cap: 64,
            tenant_share: 0.5,
            shed_late: true,
        }
    }
}

/// The admission controller: owns the bounded queue and the per-tenant
/// occupancy accounting.
#[derive(Debug)]
pub struct Admission {
    cfg: AdmissionConfig,
    queue: VecDeque<Request>,
    held: BTreeMap<u32, usize>,
}

impl Admission {
    /// An empty queue under `cfg`.
    pub fn new(cfg: AdmissionConfig) -> Self {
        assert!(cfg.queue_cap > 0, "admission: queue capacity must be positive");
        Admission {
            cfg,
            queue: VecDeque::new(),
            held: BTreeMap::new(),
        }
    }

    /// Requests currently queued.
    pub fn depth(&self) -> usize {
        self.queue.len()
    }

    /// Queue slots one tenant may hold at most.
    pub fn tenant_cap(&self) -> usize {
        ((self.cfg.queue_cap as f64 * self.cfg.tenant_share) as usize).max(1)
    }

    /// The queued requests, front (oldest) first.
    pub fn queued(&self) -> impl Iterator<Item = &Request> {
        self.queue.iter()
    }

    /// The admission decision for a request, without mutating the queue.
    /// `estimate_s` is the caller's estimate of the request's completion
    /// latency (wait + service) were it admitted now. Pure, so callers
    /// that journal decisions before applying them (the fleet's write-ahead
    /// path) decide and enqueue in two steps.
    ///
    /// # Errors
    /// Returns the typed [`RejectReason`] when the request would be shed:
    /// queue full, tenant over its fair share, or deadline unmeetable.
    pub fn check(&self, req: &Request, estimate_s: f64) -> Result<(), RejectReason> {
        if self.queue.len() >= self.cfg.queue_cap {
            return Err(RejectReason::QueueFull {
                depth: self.queue.len(),
                cap: self.cfg.queue_cap,
            });
        }
        let held = self.held.get(&req.tenant).copied().unwrap_or(0);
        if held >= self.tenant_cap() {
            return Err(RejectReason::TenantOverShare {
                tenant: req.tenant,
                held,
                cap: self.tenant_cap(),
            });
        }
        let budget_s = req.deadline.budget_s();
        if self.cfg.shed_late && estimate_s > budget_s {
            return Err(RejectReason::DeadlineUnmeetable {
                estimate_s,
                budget_s,
            });
        }
        Ok(())
    }

    /// Enqueues unconditionally at the back, bypassing every cap — the
    /// apply path of an already-journaled acceptance.
    pub fn push_back(&mut self, req: Request) {
        *self.held.entry(req.tenant).or_insert(0) += 1;
        self.queue.push_back(req);
    }

    /// Enqueues unconditionally at the *front*, bypassing every cap. The
    /// failover path: a job drained from a dead shard was already accepted
    /// once, so it re-queues ahead of fresh arrivals and is never re-shed.
    pub fn restore_front(&mut self, req: Request) {
        *self.held.entry(req.tenant).or_insert(0) += 1;
        self.queue.push_front(req);
    }

    /// Offers a request: [`Admission::check`] then [`Admission::push_back`].
    ///
    /// # Errors
    /// Returns the typed [`RejectReason`] when the request is shed.
    pub fn offer(&mut self, req: Request, estimate_s: f64) -> Result<(), RejectReason> {
        self.check(&req, estimate_s)?;
        self.push_back(req);
        Ok(())
    }

    /// Removes the requests with ids `ids` from the queue (releasing their
    /// tenant slots) and returns them in the order given — the apply path
    /// of an already-journaled batch formation, where the member set was
    /// decided (and written ahead) before the queue is touched.
    ///
    /// # Errors
    /// [`ServeError::PlanOutOfRange`] when an id is not queued — a
    /// journal/queue desync, reported instead of panicking.
    pub fn take_ids(&mut self, ids: &[u64]) -> Result<Vec<Request>, ServeError> {
        let mut members = Vec::with_capacity(ids.len());
        for &id in ids {
            let pos = self
                .queue
                .iter()
                .position(|r| r.id == id)
                .ok_or(ServeError::PlanOutOfRange { pos: id as usize, depth: self.queue.len() })?;
            let req = self
                .queue
                .remove(pos)
                .ok_or(ServeError::PlanOutOfRange { pos, depth: self.queue.len() })?;
            let held = self
                .held
                .get_mut(&req.tenant)
                .ok_or(ServeError::TenantUnaccounted { tenant: req.tenant })?;
            *held -= 1;
            if *held == 0 {
                self.held.remove(&req.tenant);
            }
            members.push(req);
        }
        Ok(members)
    }

    /// Drains the whole queue front-first, releasing every tenant slot —
    /// the failover path collecting a dead shard's unserved requests.
    pub fn drain(&mut self) -> Vec<Request> {
        self.held.clear();
        self.queue.drain(..).collect()
    }

    /// Forms the next batch (see [`plan_batch`]): removes the coalesced
    /// requests from the queue and releases their tenant slots. `Ok(None)`
    /// when the queue is empty.
    ///
    /// # Errors
    /// [`ServeError`] when the plan and the queue desync (a position out of
    /// range, a tenant missing from the occupancy accounting) — internal
    /// inconsistencies reported instead of panicking.
    pub fn form_batch(&mut self, cfg: &BatchConfig) -> Result<Option<Batch>, ServeError> {
        let plan = plan_batch(self.queue.iter(), cfg);
        if plan.is_empty() {
            return Ok(None);
        }
        let mut members = Vec::with_capacity(plan.len());
        // Remove back to front so earlier positions stay valid.
        for &pos in plan.iter().rev() {
            let req = self
                .queue
                .remove(pos)
                .ok_or(ServeError::PlanOutOfRange { pos, depth: self.queue.len() })?;
            let held = self
                .held
                .get_mut(&req.tenant)
                .ok_or(ServeError::TenantUnaccounted { tenant: req.tenant })?;
            *held -= 1;
            if *held == 0 {
                self.held.remove(&req.tenant);
            }
            members.push(req);
        }
        members.reverse();
        assemble(members, cfg).map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{DeadlineClass, GeometryClass};

    fn req(id: u64, tenant: u32, deadline: DeadlineClass) -> Request {
        Request {
            id,
            tenant,
            class: GeometryClass::Small,
            bands: 2,
            deadline,
            arrival_s: id as f64,
        }
    }

    #[test]
    fn bounded_queue_rejects_overflow() {
        let mut adm = Admission::new(AdmissionConfig {
            queue_cap: 2,
            tenant_share: 1.0,
            shed_late: false,
        });
        adm.offer(req(0, 0, DeadlineClass::Standard), 0.0).expect("fits");
        adm.offer(req(1, 1, DeadlineClass::Standard), 0.0).expect("fits");
        let err = adm.offer(req(2, 2, DeadlineClass::Standard), 0.0).expect_err("full");
        assert!(matches!(err, RejectReason::QueueFull { depth: 2, cap: 2 }));
    }

    #[test]
    fn tenant_fair_share_is_enforced() {
        let mut adm = Admission::new(AdmissionConfig {
            queue_cap: 8,
            tenant_share: 0.25,
            shed_late: false,
        });
        assert_eq!(adm.tenant_cap(), 2);
        adm.offer(req(0, 7, DeadlineClass::Standard), 0.0).expect("1st");
        adm.offer(req(1, 7, DeadlineClass::Standard), 0.0).expect("2nd");
        let err = adm.offer(req(2, 7, DeadlineClass::Standard), 0.0).expect_err("over share");
        assert!(matches!(err, RejectReason::TenantOverShare { tenant: 7, held: 2, cap: 2 }));
        // Other tenants still get in.
        adm.offer(req(3, 1, DeadlineClass::Standard), 0.0).expect("other tenant");
    }

    #[test]
    fn deadline_shedding_uses_the_budget() {
        let mut adm = Admission::new(AdmissionConfig::default());
        let tight = req(0, 0, DeadlineClass::Interactive);
        let err = adm.offer(tight, 1.0).expect_err("hopeless");
        assert!(matches!(err, RejectReason::DeadlineUnmeetable { .. }));
        // The same estimate fits a batch-class budget.
        adm.offer(req(1, 0, DeadlineClass::Batch), 1.0).expect("batch budget");
        // Shedding off admits anything.
        let mut lax = Admission::new(AdmissionConfig { shed_late: false, ..Default::default() });
        lax.offer(tight, 99.0).expect("shedding disabled");
    }

    #[test]
    fn forming_batches_releases_tenant_slots() {
        let mut adm = Admission::new(AdmissionConfig {
            queue_cap: 4,
            tenant_share: 0.25,
            shed_late: false,
        });
        adm.offer(req(0, 3, DeadlineClass::Standard), 0.0).expect("fits");
        assert!(adm.offer(req(1, 3, DeadlineClass::Standard), 0.0).is_err());
        let batch = adm
            .form_batch(&BatchConfig::default())
            .expect("consistent queue")
            .expect("batch");
        assert_eq!(batch.members.len(), 1);
        assert_eq!(adm.depth(), 0);
        adm.offer(req(2, 3, DeadlineClass::Standard), 0.0).expect("slot released");
    }

    #[test]
    fn form_batch_on_empty_queue_is_none() {
        let mut adm = Admission::new(AdmissionConfig::default());
        assert!(adm.form_batch(&BatchConfig::default()).expect("consistent").is_none());
    }

    #[test]
    fn restore_front_bypasses_caps_and_jumps_the_queue() {
        let mut adm = Admission::new(AdmissionConfig {
            queue_cap: 2,
            tenant_share: 0.5,
            shed_late: true,
        });
        adm.offer(req(0, 0, DeadlineClass::Standard), 0.0).expect("fits");
        adm.offer(req(1, 1, DeadlineClass::Standard), 0.0).expect("fits");
        // Full queue, saturated tenant, hopeless deadline: a failover
        // restore still goes in — and at the front.
        assert!(adm.check(&req(2, 0, DeadlineClass::Interactive), 9.0).is_err());
        adm.restore_front(req(2, 0, DeadlineClass::Interactive));
        assert_eq!(adm.depth(), 3);
        assert_eq!(adm.queued().next().map(|r| r.id), Some(2));
        // The restored slot is released like any other on batch formation.
        let batch = adm
            .form_batch(&BatchConfig::default())
            .expect("consistent queue")
            .expect("batch");
        assert!(batch.members.iter().any(|m| m.request.id == 2));
    }

    #[test]
    fn check_is_pure() {
        let adm = Admission::new(AdmissionConfig::default());
        let r = req(0, 0, DeadlineClass::Standard);
        assert!(adm.check(&r, 0.0).is_ok());
        assert_eq!(adm.depth(), 0, "check must not enqueue");
    }
}
