//! The tenant→shard consistent-hash ring: virtual nodes, bounded-load
//! overflow, rendezvous tie-breaking, and a monotone membership epoch.
//!
//! Routing places each shard at [`RingConfig::vnodes`] seeded points on a
//! 64-bit ring and sends a tenant key to the first member clockwise from
//! the key's point. Membership changes move only the keys in the arcs the
//! joining (or leaving) shard owns — the *minimal movement* property the
//! proptests pin — so a resharding event never reshuffles the whole tenant
//! population the way `hash(tenant) % shards` would.
//!
//! Two refinements on the textbook ring:
//!
//! * **bounded-load overflow** ([`HashRing::route_bounded`]): a key whose
//!   home shard already carries at least `ceil(c · (load+1) / members)`
//!   queued jobs overflows clockwise to the next admitting member under
//!   the bound, keeping the max/mean load ratio bounded by `c` (plus one
//!   job of quantisation) however skewed the tenant population is;
//! * **rendezvous tie-breaking**: virtual nodes of different shards that
//!   hash to the same ring point are ordered by their seeded rendezvous
//!   weight ([`fftx_fault::mix64`] of point and shard), so collisions
//!   resolve deterministically instead of by insertion order.
//!
//! Every membership change bumps the [`HashRing::epoch`]. The supervisor
//! journals the epoch in each `Started` record and validates it on replay:
//! a resumed fleet that reconstructed a different membership sequence —
//! and would therefore route differently — fails loudly instead of
//! silently diverging.

use fftx_fault::mix64;

/// Ring knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RingConfig {
    /// Seed of every ring point and tie-break weight.
    pub seed: u64,
    /// Virtual nodes per shard. More vnodes smooth the arc distribution
    /// (smaller max/mean spread) at linear routing-table cost.
    pub vnodes: usize,
    /// Bounded-load factor `c`: a shard's queue may exceed the mean load
    /// by at most this factor before keys overflow past it.
    pub load_factor: f64,
}

impl Default for RingConfig {
    fn default() -> Self {
        RingConfig {
            seed: 0,
            vnodes: 16,
            load_factor: 1.25,
        }
    }
}

/// The consistent-hash ring. See the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct HashRing {
    cfg: RingConfig,
    /// Sorted (point, shard) pairs; ties ordered by rendezvous weight.
    points: Vec<(u64, u32)>,
    members: Vec<u32>,
    epoch: u64,
}

impl HashRing {
    /// An empty ring at epoch 0.
    pub fn new(cfg: RingConfig) -> HashRing {
        HashRing {
            cfg,
            points: Vec::new(),
            members: Vec::new(),
            epoch: 0,
        }
    }

    /// The membership epoch: the number of joins and leaves folded into
    /// the ring so far. Equal epochs on equal configurations mean equal
    /// routing tables.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Current members, ascending shard index.
    pub fn members(&self) -> &[u32] {
        &self.members
    }

    /// Whether `shard` is a member.
    pub fn contains(&self, shard: u32) -> bool {
        self.members.binary_search(&shard).is_ok()
    }

    /// The ring point of virtual node `v` of `shard`.
    fn vnode_point(&self, shard: u32, v: usize) -> u64 {
        mix64(self.cfg.seed ^ mix64(((shard as u64 + 1) << 20) | v as u64))
    }

    /// The seeded rendezvous weight breaking ties between virtual nodes of
    /// different shards at the same ring point.
    fn tie_weight(&self, point: u64, shard: u32) -> u64 {
        mix64(self.cfg.seed ^ point ^ mix64(shard as u64 + 1))
    }

    /// Adds `shard` (no-op when already a member). Bumps the epoch.
    pub fn insert(&mut self, shard: u32) {
        if self.contains(shard) {
            return;
        }
        let idx = self.members.partition_point(|&m| m < shard);
        self.members.insert(idx, shard);
        for v in 0..self.cfg.vnodes.max(1) {
            let p = self.vnode_point(shard, v);
            self.points.push((p, shard));
        }
        let weight = |ring: &HashRing, p: u64, s: u32| ring.tie_weight(p, s);
        // Highest rendezvous weight first within a point: the winner of a
        // collision owns the point, deterministically.
        let snapshot = self.clone();
        self.points.sort_by(|a, b| {
            a.0.cmp(&b.0)
                .then(weight(&snapshot, b.0, b.1).cmp(&weight(&snapshot, a.0, a.1)))
        });
        self.epoch += 1;
    }

    /// Removes `shard` (no-op when not a member). Bumps the epoch.
    pub fn remove(&mut self, shard: u32) {
        let Ok(idx) = self.members.binary_search(&shard) else {
            return;
        };
        self.members.remove(idx);
        self.points.retain(|&(_, s)| s != shard);
        self.epoch += 1;
    }

    /// The ring point of a routing key.
    fn key_point(&self, key: u64) -> u64 {
        mix64(self.cfg.seed ^ mix64(key.wrapping_add(1)))
    }

    /// Distinct members in clockwise ring order starting at `key`'s point:
    /// the key's home shard first, then each successor arc's owner.
    fn clockwise(&self, key: u64) -> Vec<u32> {
        let n = self.points.len();
        let mut order = Vec::with_capacity(self.members.len());
        if n == 0 {
            return order;
        }
        let start = self.points.partition_point(|&(p, _)| p < self.key_point(key));
        for i in 0..n {
            let (_, shard) = self.points[(start + i) % n];
            if !order.contains(&shard) {
                order.push(shard);
                if order.len() == self.members.len() {
                    break;
                }
            }
        }
        order
    }

    /// Routes `key` to the first admitting member clockwise from its ring
    /// point. `None` when no member admits.
    pub fn route(&self, key: u64, admits: impl Fn(u32) -> bool) -> Option<u32> {
        self.clockwise(key).into_iter().find(|&s| admits(s))
    }

    /// Bounded-load routing: the first admitting member clockwise whose
    /// current `load` is under `bound` (see [`load_bound`]); when every
    /// admitting member is at the bound, the key falls back to its home —
    /// the first admitting member — so routing never fails while any
    /// member admits.
    pub fn route_bounded(
        &self,
        key: u64,
        bound: usize,
        load: impl Fn(u32) -> usize,
        admits: impl Fn(u32) -> bool,
    ) -> Option<u32> {
        let order = self.clockwise(key);
        order
            .iter()
            .copied()
            .find(|&s| admits(s) && load(s) < bound)
            .or_else(|| order.into_iter().find(|&s| admits(s)))
    }
}

/// The bounded-load threshold for a ring of `members` shards carrying
/// `total_load` queued jobs in all: `ceil(factor · (total_load + 1) /
/// members)`, at least 1. Routing one more job to a shard already at the
/// bound would push it past `factor` times the post-placement mean, so
/// [`HashRing::route_bounded`] overflows past it instead.
pub fn load_bound(total_load: usize, members: usize, factor: f64) -> usize {
    if members == 0 {
        return 1;
    }
    let mean = (total_load + 1) as f64 / members as f64;
    ((factor * mean).ceil() as usize).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn ring(members: &[u32]) -> HashRing {
        let mut r = HashRing::new(RingConfig { seed: 7, ..Default::default() });
        for &m in members {
            r.insert(m);
        }
        r
    }

    #[test]
    fn epoch_counts_every_membership_change() {
        let mut r = ring(&[0, 1, 2]);
        assert_eq!(r.epoch(), 3);
        r.insert(1); // duplicate: no-op
        assert_eq!(r.epoch(), 3);
        r.remove(1);
        assert_eq!(r.epoch(), 4);
        r.remove(1); // absent: no-op
        assert_eq!(r.epoch(), 4);
        assert_eq!(r.members(), &[0, 2]);
    }

    #[test]
    fn routing_is_deterministic_and_total() {
        let r = ring(&[0, 1, 2, 3]);
        for key in 0..256u64 {
            let a = r.route(key, |_| true).expect("total");
            let b = r.route(key, |_| true).expect("total");
            assert_eq!(a, b);
            assert!(r.contains(a));
        }
        // No admitting member: route is None, never a panic.
        assert_eq!(r.route(5, |_| false), None);
    }

    #[test]
    fn join_moves_keys_only_to_the_joiner() {
        let mut r = ring(&[0, 1, 2]);
        let before: BTreeMap<u64, u32> =
            (0..512u64).map(|k| (k, r.route(k, |_| true).unwrap())).collect();
        r.insert(3);
        let mut moved = 0;
        for (k, home) in &before {
            let now = r.route(*k, |_| true).unwrap();
            if now != *home {
                assert_eq!(now, 3, "key {k} moved to shard {now}, not the joiner");
                moved += 1;
            }
        }
        assert!(moved > 0, "the joiner must take over some arcs");
        assert!(
            moved < before.len() / 2,
            "minimal movement: {moved}/{} keys moved on one join",
            before.len()
        );
    }

    #[test]
    fn leave_moves_only_the_leavers_keys() {
        let mut r = ring(&[0, 1, 2, 3]);
        let before: BTreeMap<u64, u32> =
            (0..512u64).map(|k| (k, r.route(k, |_| true).unwrap())).collect();
        r.remove(2);
        for (k, home) in &before {
            let now = r.route(*k, |_| true).unwrap();
            if *home != 2 {
                assert_eq!(now, *home, "key {k} moved without cause");
            } else {
                assert_ne!(now, 2);
            }
        }
    }

    #[test]
    fn bounded_route_respects_the_load_bound() {
        let r = ring(&[0, 1, 2]);
        let mut loads: BTreeMap<u32, usize> = BTreeMap::new();
        let n = 300usize;
        for key in 0..n as u64 {
            let total: usize = loads.values().sum();
            let bound = load_bound(total, 3, 1.25);
            let s = r
                .route_bounded(key, bound, |s| loads.get(&s).copied().unwrap_or(0), |_| true)
                .expect("total");
            *loads.entry(s).or_default() += 1;
        }
        let max = *loads.values().max().unwrap();
        let mean = n as f64 / 3.0;
        assert!(
            (max as f64) <= 1.25 * mean + 1.0,
            "max load {max} exceeds the bound over mean {mean}"
        );
    }

    #[test]
    fn non_admitting_members_are_skipped_not_crashed() {
        let r = ring(&[0, 1, 2]);
        for key in 0..64u64 {
            let s = r.route(key, |s| s != 1).expect("two admitting members");
            assert_ne!(s, 1);
        }
        // Bounded route falls back to the first admitting member when all
        // admitting members sit at the bound.
        let s = r.route_bounded(9, 1, |_| 10, |s| s == 2);
        assert_eq!(s, Some(2));
    }

    #[test]
    fn load_bound_floor_is_one() {
        assert_eq!(load_bound(0, 0, 1.25), 1);
        assert!(load_bound(0, 3, 1.25) >= 1);
        assert!(load_bound(300, 3, 1.25) >= 126);
    }
}
