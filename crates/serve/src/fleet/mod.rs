//! Fleet capacity: consistent-hash routing, work stealing, autoscaling,
//! and offline capacity planning on top of the shard [`supervisor`].
//!
//! The PR 6 supervisor runs a *fixed* pool of shards and routes tenants by
//! flat rendezvous hashing; this module grows it into an elastic fleet:
//!
//! * [`ring`] — the tenant→shard consistent-hash ring (virtual nodes,
//!   bounded-load overflow, rendezvous tie-breaking, membership epochs).
//!   The supervisor's dispatch phase routes through it, so joins and
//!   leaves move the minimum set of tenants instead of reshuffling all.
//! * [`autoscale`] — the reactive autoscaler policy: hysteresis
//!   thresholds over fleet pressure, warm-up ticks before a new shard
//!   takes traffic, and breaker/ladder integration so scale-up never
//!   lands on a quarantined or corruption-striken node. Decisions are
//!   journaled (`ScaleUp`/`ScaleDown`), making elastic runs exactly
//!   replayable from any cut.
//! * [`planner`] — the offline parallel Monte-Carlo capacity planner:
//!   N seeded traffic iterations of the fleet DES run concurrently over
//!   `taskrt`, per-timestep load/goodput/p99 profiles aggregated through
//!   `trace::query`, a capacity constraint that reallocates work across
//!   timesteps, and a recommended static fleet size plus autoscaler
//!   policy envelope.
//!
//! Work stealing lives in the supervisor itself (its `phase_steal`): an
//! idle shard pulls a whole journaled batch from the deepest backlog,
//! re-places it through the tuner for its own geometry, and executes it
//! bit-identically — execution is pure in (batch contents, placement,
//! batch id), so the thief's hashes equal the origin's would-have-been
//! hashes and the journal's conservation audit can hold stolen batches to
//! exactly-once across origin and thief.
//!
//! [`supervisor`]: crate::supervisor

pub mod autoscale;
pub mod planner;
pub mod ring;

pub use autoscale::{AutoscaleConfig, ScaleDecision};
pub use planner::{plan_capacity, PlanConfig, PlanReport, PolicyEnvelope};
pub use ring::{load_bound, HashRing, RingConfig};
