//! The offline parallel Monte-Carlo capacity planner.
//!
//! Given a fleet template and a traffic model, the planner answers "how
//! many shards does this workload need, and what autoscaler policy should
//! guard it" *before* any capacity is provisioned:
//!
//! 1. **Monte-Carlo sweep** — `iterations` seeded variants of the traffic
//!    trace (iteration `i` reseeds the generator with `mix64(seed ^ i)`)
//!    are each served by every candidate static fleet size in
//!    `k_min..=k_max`. The `k × N` fleet simulations are independent, so
//!    they fan out over a [`fftx_taskrt::parallel_map`] worker pool; each
//!    run reduces to a small stats record (goodput, shed rate, p99
//!    latency), and results are slot-ordered, so the report is
//!    deterministic regardless of worker interleaving.
//! 2. **Analytic floor** — the mean per-window offered-work profile
//!    (band-weighted arrivals through [`fftx_trace::query::window_sums`])
//!    feeds the capacity constraint in [`fftx_knlsim::capacity`]:
//!    [`required_rate`] reallocates work across timesteps through the
//!    backlog recurrence, and a one-shard calibration run prices the
//!    per-shard service rate, giving the smallest shard count that can
//!    drain the horizon ([`fleet_floor`]).
//! 3. **Recommendation** — the smallest candidate `k` at or above the
//!    analytic floor whose simulated profile sheds nothing across every
//!    iteration (falling back to the least-shedding candidate), plus a
//!    [`PolicyEnvelope`] for the reactive autoscaler: `min`/`max` bounds
//!    from the mean and peak offered rates, hysteresis thresholds from
//!    the recommended fleet's mean utilization.
//!
//! [`required_rate`]: fftx_knlsim::capacity::required_rate
//! [`fleet_floor`]: fftx_knlsim::capacity::fleet_floor

use crate::error::ServeError;
use crate::supervisor::{run_fleet, FleetConfig};
use crate::traffic::{generate, TrafficConfig};
use fftx_fault::mix64;
use fftx_knlsim::capacity;
use fftx_taskrt::parallel_map;
use fftx_trace::query::window_sums;
use std::sync::Arc;

/// Planner inputs: the Monte-Carlo sweep axes and the fleet/traffic
/// templates the candidates are instantiated from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanConfig {
    /// Seeded traffic iterations per candidate fleet size.
    pub iterations: usize,
    /// Base seed; iteration `i` regenerates traffic at `mix64(seed ^ i)`.
    pub seed: u64,
    /// Worker threads the `k × N` simulations fan out over.
    pub workers: usize,
    /// Smallest candidate fleet size.
    pub k_min: usize,
    /// Largest candidate fleet size.
    pub k_max: usize,
    /// Profile window for the per-timestep work aggregation (seconds).
    pub window_s: f64,
    /// Fleet template; `shards` and `autoscale` are overridden per
    /// candidate (static fleets of size `k`).
    pub fleet: FleetConfig,
    /// Traffic template; `seed` is overridden per iteration.
    pub traffic: TrafficConfig,
}

impl Default for PlanConfig {
    fn default() -> Self {
        PlanConfig {
            iterations: 4,
            seed: 0,
            workers: 4,
            k_min: 1,
            k_max: 4,
            window_s: 0.1,
            fleet: FleetConfig::default(),
            traffic: TrafficConfig::default(),
        }
    }
}

impl PlanConfig {
    /// Validates the sweep axes.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.iterations == 0 {
            return Err(ServeError::Config("planner needs at least one iteration".into()));
        }
        if self.workers == 0 {
            return Err(ServeError::Config("planner needs at least one worker".into()));
        }
        if self.k_min == 0 || self.k_min > self.k_max {
            return Err(ServeError::Config(format!(
                "planner sweep range k_min={} k_max={} must satisfy 1 <= k_min <= k_max",
                self.k_min, self.k_max
            )));
        }
        if !self.window_s.is_finite() || self.window_s <= 0.0 {
            return Err(ServeError::Config(format!(
                "planner profile window {} must be a positive finite duration",
                self.window_s
            )));
        }
        Ok(())
    }
}

/// Mean simulated profile of one candidate fleet size across the
/// Monte-Carlo iterations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KProfile {
    /// The candidate shard count.
    pub k: usize,
    /// Mean goodput (deadline-met completions per virtual second).
    pub goodput_hz: f64,
    /// Mean fraction of offered requests shed.
    pub shed_rate: f64,
    /// Total requests shed across all iterations.
    pub shed_total: usize,
    /// Mean per-iteration p99 latency (virtual seconds).
    pub p99_latency_s: f64,
}

/// The autoscaler policy the planner recommends: bounds from the offered
/// rates, hysteresis thresholds from the recommended fleet's utilization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyEnvelope {
    /// Floor on active shards (covers the mean offered rate).
    pub min: usize,
    /// Ceiling on active shards (covers the peak offered rate).
    pub max: usize,
    /// Scale-up pressure threshold.
    pub up_at: f64,
    /// Scale-down pressure threshold (strictly below `up_at`).
    pub down_at: f64,
}

/// The planner's full output.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanReport {
    /// Iterations each candidate was simulated over.
    pub iterations: usize,
    /// One simulated profile per candidate `k`, ascending.
    pub profiles: Vec<KProfile>,
    /// Mean per-window offered work (band-weighted arrivals).
    pub load_profile: Vec<f64>,
    /// Smallest constant service rate (bands/s) that drains the horizon.
    pub required_rate: f64,
    /// The no-queueing service rate (bands/s) of the worst window.
    pub peak_rate: f64,
    /// Calibrated per-shard service rate (bands/s) from the one-shard run.
    pub shard_rate: f64,
    /// Analytic fleet floor: `ceil(required_rate / shard_rate)`.
    pub analytic_floor: usize,
    /// Recommended static fleet size.
    pub recommended: usize,
    /// Recommended autoscaler policy envelope.
    pub envelope: PolicyEnvelope,
}

/// Per-run reduction shipped back from the worker pool.
#[derive(Debug, Clone, Copy)]
struct RunStats {
    goodput_hz: f64,
    shed_rate: f64,
    shed: usize,
    p99_s: f64,
    bands_done: usize,
    makespan_s: f64,
}

fn simulate(reqs: &[crate::request::Request], cfg: &FleetConfig) -> Result<RunStats, ServeError> {
    let r = run_fleet(reqs, cfg)?;
    let bands_done: usize = r.jobs.iter().map(|j| j.request.bands).sum();
    Ok(RunStats {
        goodput_hz: r.goodput_hz(),
        shed_rate: r.shed_rate(),
        shed: r.shed.len(),
        p99_s: r.latency().quantile(0.99),
        bands_done,
        makespan_s: r.makespan_s,
    })
}

/// A static (non-elastic, non-stealing) fleet of `k` shards from the
/// template — the planner prices raw capacity; elasticity is its output.
fn static_fleet(template: &FleetConfig, k: usize) -> FleetConfig {
    FleetConfig {
        shards: k,
        autoscale: None,
        steal: false,
        ..*template
    }
}

/// Runs the planner. See the module docs for the three stages.
///
/// # Errors
/// [`ServeError::Config`] on contradictory sweep axes; any fleet error a
/// candidate simulation reports.
pub fn plan_capacity(cfg: &PlanConfig) -> Result<PlanReport, ServeError> {
    cfg.validate()?;
    let ks: Vec<usize> = (cfg.k_min..=cfg.k_max).collect();
    let traces: Arc<Vec<Vec<crate::request::Request>>> = Arc::new(
        (0..cfg.iterations)
            .map(|i| {
                generate(&TrafficConfig {
                    seed: mix64(cfg.seed ^ i as u64),
                    ..cfg.traffic
                })
            })
            .collect(),
    );

    // Stage 1: the k × N Monte-Carlo sweep over the worker pool. Slot
    // order is (k index, iteration), so the reduction below is
    // deterministic no matter how the workers interleave.
    let template = cfg.fleet;
    let ks_runs = ks.clone();
    let traces_runs = Arc::clone(&traces);
    let total = ks.len() * cfg.iterations;
    let iters = cfg.iterations;
    let results: Vec<Result<RunStats, ServeError>> =
        parallel_map(cfg.workers, total, move |slot| {
            let k = ks_runs[slot / iters];
            let trace = &traces_runs[slot % iters];
            simulate(trace, &static_fleet(&template, k))
        });

    let mut profiles = Vec::with_capacity(ks.len());
    for (ki, &k) in ks.iter().enumerate() {
        let mut agg = KProfile {
            k,
            goodput_hz: 0.0,
            shed_rate: 0.0,
            shed_total: 0,
            p99_latency_s: 0.0,
        };
        for i in 0..iters {
            let stats = results[ki * iters + i].clone()?;
            agg.goodput_hz += stats.goodput_hz;
            agg.shed_rate += stats.shed_rate;
            agg.shed_total += stats.shed;
            if stats.p99_s.is_finite() {
                agg.p99_latency_s += stats.p99_s;
            }
        }
        let n = iters as f64;
        agg.goodput_hz /= n;
        agg.shed_rate /= n;
        agg.p99_latency_s /= n;
        profiles.push(agg);
    }

    // Stage 2: the analytic floor. Mean band-weighted offered-work
    // profile across iterations, the capacity constraint over it, and a
    // one-shard calibration run for the per-shard service rate.
    let mut load_profile: Vec<f64> = Vec::new();
    for trace in traces.iter() {
        let ts: Vec<f64> = trace.iter().map(|r| r.arrival_s).collect();
        let ws: Vec<f64> = trace.iter().map(|r| r.bands as f64).collect();
        let prof = window_sums(&ts, &ws, cfg.window_s);
        if prof.len() > load_profile.len() {
            load_profile.resize(prof.len(), 0.0);
        }
        for (slot, w) in prof.into_iter().enumerate() {
            load_profile[slot] += w;
        }
    }
    for w in &mut load_profile {
        *w /= cfg.iterations as f64;
    }
    let required_rate = capacity::required_rate(&load_profile, cfg.window_s);
    let peak_rate = capacity::peak_rate(&load_profile, cfg.window_s);
    let calib = simulate(&traces[0], &static_fleet(&cfg.fleet, 1))?;
    let shard_rate = if calib.makespan_s > 0.0 {
        calib.bands_done as f64 / calib.makespan_s
    } else {
        0.0
    };
    let analytic_floor = capacity::fleet_floor(required_rate, shard_rate)
        .clamp(cfg.k_min, cfg.k_max);

    // Stage 3: the recommendation — smallest candidate at or above the
    // analytic floor with a shed-free simulated profile, else the
    // least-shedding candidate (ties to the smaller fleet).
    let recommended = profiles
        .iter()
        .find(|p| p.k >= analytic_floor && p.shed_total == 0)
        .or_else(|| profiles.iter().min_by(|a, b| a.shed_total.cmp(&b.shed_total)))
        .map(|p| p.k)
        .unwrap_or(cfg.k_min);

    let max = capacity::fleet_floor(peak_rate, shard_rate).clamp(recommended, cfg.k_max);
    let mean_util = if shard_rate > 0.0 && recommended > 0 {
        (required_rate / (recommended as f64 * shard_rate)).clamp(0.0, 1.0)
    } else {
        1.0
    };
    // Hysteresis from utilization headroom: trip the scale-up before the
    // mean load saturates the recommended fleet, release well below it.
    let up_at = (mean_util * 1.5).clamp(0.30, 0.90);
    let down_at = (mean_util * 0.25).clamp(0.05, up_at / 2.0);
    let envelope = PolicyEnvelope {
        min: analytic_floor.min(recommended),
        max,
        up_at,
        down_at,
    };

    Ok(PlanReport {
        iterations: cfg.iterations,
        profiles,
        load_profile,
        required_rate,
        peak_rate,
        shard_rate,
        analytic_floor,
        recommended,
        envelope,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::LoadProfile;

    fn plan_cfg() -> PlanConfig {
        PlanConfig {
            iterations: 2,
            seed: 17,
            workers: 2,
            k_min: 1,
            k_max: 3,
            window_s: 0.1,
            fleet: FleetConfig::default(),
            traffic: TrafficConfig {
                seed: 0,
                rate_hz: 60.0,
                duration_s: 1.0,
                tenants: 3,
                profile: LoadProfile::Burst,
            },
        }
    }

    #[test]
    fn validates_sweep_axes() {
        assert!(plan_cfg().validate().is_ok());
        assert!(PlanConfig { iterations: 0, ..plan_cfg() }.validate().is_err());
        assert!(PlanConfig { workers: 0, ..plan_cfg() }.validate().is_err());
        assert!(PlanConfig { k_min: 3, k_max: 2, ..plan_cfg() }.validate().is_err());
        assert!(PlanConfig { window_s: 0.0, ..plan_cfg() }.validate().is_err());
        assert!(matches!(
            plan_capacity(&PlanConfig { k_min: 0, ..plan_cfg() }),
            Err(ServeError::Config(_))
        ));
    }

    #[test]
    fn plan_covers_every_candidate_and_recommends_within_range() {
        let cfg = plan_cfg();
        let plan = plan_capacity(&cfg).expect("plan");
        assert_eq!(plan.profiles.len(), 3);
        assert_eq!(
            plan.profiles.iter().map(|p| p.k).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert!(plan.recommended >= cfg.k_min && plan.recommended <= cfg.k_max);
        assert!(plan.required_rate > 0.0, "offered work must need capacity");
        assert!(plan.peak_rate >= plan.required_rate, "peak bounds required");
        assert!(plan.shard_rate > 0.0, "calibration must price a shard");
        assert!(!plan.load_profile.is_empty());
        let e = plan.envelope;
        assert!(e.min >= 1 && e.min <= e.max && e.max <= cfg.k_max);
        assert!(e.down_at < e.up_at, "envelope must keep the hysteresis gap");
    }

    #[test]
    fn plan_is_deterministic_across_runs_and_worker_counts() {
        let a = plan_capacity(&plan_cfg()).expect("plan");
        let b = plan_capacity(&PlanConfig { workers: 1, ..plan_cfg() }).expect("plan");
        assert_eq!(a, b, "worker count must not leak into the report");
    }

    #[test]
    fn bigger_fleets_never_shed_more() {
        let plan = plan_capacity(&plan_cfg()).expect("plan");
        for pair in plan.profiles.windows(2) {
            assert!(
                pair[1].shed_rate <= pair[0].shed_rate + 1e-9,
                "shed rate must be monotone non-increasing in k"
            );
        }
    }
}
