//! The reactive autoscaler policy: a pure hysteresis controller over
//! fleet pressure.
//!
//! The supervisor's autoscale phase feeds the controller one observation
//! per tick — the fleet's queue pressure (queued jobs / total admission
//! capacity), its degrade-ladder level, and the active shard count — and
//! receives a [`ScaleDecision`]. The *policy* is deliberately pure and
//! journal-free; the supervisor turns `Up`/`Down` into journaled
//! `ScaleUp`/`ScaleDown` records (picking the target shard through the
//! health breakers), so crash replay reconstructs every elastic decision
//! from the journal rather than from this controller's opinion at replay
//! time.
//!
//! Stability comes from three guards, each journaling-compatible:
//!
//! * **hysteresis** — scale up at `up_at`, down only below the strictly
//!   lower `down_at`, so pressure oscillating around one threshold cannot
//!   flap the fleet;
//! * **ladder gating** — never scale down unless the degrade ladder sits
//!   at `Normal` (a browned-out fleet shrinking itself would shed harder),
//!   and never scale up while the ladder is at `Quarantine` (adding
//!   capacity to a corrupting fleet spreads the blast radius);
//! * **warm-up and cooldown ticks** — a freshly added shard takes no
//!   traffic for `warmup_ticks` (it joins the ring but `warm_until`
//!   excludes it from dispatch), and no two scale decisions land within
//!   `cooldown_ticks` of each other (≥ 1, which also makes the decision
//!   idempotent across a crash on the decision tick).

use crate::error::ServeError;

/// Autoscaler knobs. See the module docs for the stability guards.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoscaleConfig {
    /// Floor on active shards; the supervisor repairs below-min fleets
    /// (e.g. after node deaths) with emergency scale-ups.
    pub min: usize,
    /// Ceiling on active shards: the provisioned pool size.
    pub max: usize,
    /// Queue pressure at or above which the fleet scales up.
    pub up_at: f64,
    /// Queue pressure at or below which the fleet scales down. Must be
    /// strictly below [`AutoscaleConfig::up_at`] (hysteresis).
    pub down_at: f64,
    /// Ticks a freshly scaled-up shard warms before taking traffic
    /// (effective minimum 1: the activation tick itself is always warm,
    /// which keeps the heartbeat sweep identical on crash replay).
    pub warmup_ticks: u64,
    /// Minimum ticks between consecutive scale decisions (clamped ≥ 1).
    pub cooldown_ticks: u64,
}

impl Default for AutoscaleConfig {
    fn default() -> Self {
        AutoscaleConfig {
            min: 1,
            max: 8,
            up_at: 0.60,
            down_at: 0.15,
            warmup_ticks: 2,
            cooldown_ticks: 4,
        }
    }
}

impl AutoscaleConfig {
    /// Validates the knob set: `1 ≤ min ≤ max` and `down_at < up_at`.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.min == 0 || self.min > self.max {
            return Err(ServeError::Config(format!(
                "autoscale bounds min={} max={} must satisfy 1 <= min <= max",
                self.min, self.max
            )));
        }
        if !self.up_at.is_finite() || !self.down_at.is_finite() || self.down_at >= self.up_at {
            return Err(ServeError::Config(format!(
                "autoscale hysteresis needs down_at < up_at, got down_at={} up_at={}",
                self.down_at, self.up_at
            )));
        }
        Ok(())
    }

    /// The effective cooldown: at least one tick, so a crash on the
    /// decision tick cannot double-journal the decision on resume.
    pub fn cooldown(&self) -> u64 {
        self.cooldown_ticks.max(1)
    }
}

/// What the controller wants done this tick. The supervisor chooses the
/// target shard (through the breakers) and journals the transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleDecision {
    /// Add one shard from the inactive pool.
    Up,
    /// Retire one active shard (drained by normal failover).
    Down,
    /// No change.
    Hold,
}

/// One controller step. `pressure` is queued jobs over total admission
/// capacity of the *active* fleet; `quarantined` / `normal` summarise the
/// degrade ladder ends; `active` counts live, in-service shards.
pub fn decide(
    cfg: &AutoscaleConfig,
    active: usize,
    pressure: f64,
    normal: bool,
    quarantined: bool,
) -> ScaleDecision {
    if active < cfg.min {
        return ScaleDecision::Up;
    }
    if pressure >= cfg.up_at && active < cfg.max && !quarantined {
        return ScaleDecision::Up;
    }
    if pressure <= cfg.down_at && active > cfg.min && normal {
        return ScaleDecision::Down;
    }
    ScaleDecision::Hold
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AutoscaleConfig {
        AutoscaleConfig {
            min: 2,
            max: 6,
            ..Default::default()
        }
    }

    #[test]
    fn validates_bounds_and_hysteresis() {
        assert!(cfg().validate().is_ok());
        assert!(AutoscaleConfig { min: 0, ..cfg() }.validate().is_err());
        assert!(AutoscaleConfig { min: 7, ..cfg() }.validate().is_err());
        assert!(AutoscaleConfig {
            down_at: 0.8,
            up_at: 0.6,
            ..cfg()
        }
        .validate()
        .is_err());
        assert!(AutoscaleConfig {
            up_at: f64::NAN,
            ..cfg()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn repairs_below_min_regardless_of_pressure() {
        assert_eq!(decide(&cfg(), 1, 0.0, true, false), ScaleDecision::Up);
        // Even a quarantined fleet repairs to min: the alternative is an
        // empty ring.
        assert_eq!(decide(&cfg(), 0, 0.0, false, true), ScaleDecision::Up);
    }

    #[test]
    fn hysteresis_band_holds() {
        let c = cfg();
        // Between down_at and up_at: hold in both directions.
        let mid = (c.up_at + c.down_at) / 2.0;
        assert_eq!(decide(&c, 3, mid, true, false), ScaleDecision::Hold);
        assert_eq!(decide(&c, 3, c.up_at, true, false), ScaleDecision::Up);
        assert_eq!(decide(&c, 3, c.down_at, true, false), ScaleDecision::Down);
    }

    #[test]
    fn respects_fleet_bounds() {
        let c = cfg();
        assert_eq!(decide(&c, c.max, 1.0, true, false), ScaleDecision::Hold);
        assert_eq!(decide(&c, c.min, 0.0, true, false), ScaleDecision::Hold);
    }

    #[test]
    fn ladder_gates_both_directions() {
        let c = cfg();
        // Quarantine blocks scale-up above min.
        assert_eq!(decide(&c, 3, 1.0, false, true), ScaleDecision::Hold);
        // Any non-Normal level blocks scale-down.
        assert_eq!(decide(&c, 4, 0.0, false, false), ScaleDecision::Hold);
    }

    #[test]
    fn cooldown_is_never_zero() {
        let c = AutoscaleConfig {
            cooldown_ticks: 0,
            ..cfg()
        };
        assert_eq!(c.cooldown(), 1);
    }
}
