//! Graceful degradation: the fleet's brown-out ladder.
//!
//! Under sustained queue pressure the fleet degrades in explicit,
//! journaled steps instead of letting latency collapse: first batch-class
//! (throughput) traffic is shed, then standard traffic, then large batches
//! are split in half to cap head-of-line blocking, and finally all new
//! work is rejected with a typed
//! [`RejectReason::FleetDegraded`](crate::request::RejectReason) while the
//! backlog drains. Pressure is the admitting shards' mean queue occupancy;
//! the ladder moves at most one level per supervisor tick (hysteresis:
//! upgrades and downgrades use different thresholds, so the ladder cannot
//! flap on a pressure boundary).
//!
//! Above the queue-pressure rungs sits [`DegradeLevel::Quarantine`], the
//! data-integrity rung: when the fraction of dispatched batches whose
//! results failed ABFT verification reaches
//! [`DegradeConfig::quarantine_at`], the ladder climbs past `RejectNew`
//! regardless of queue pressure — the fleet stops accepting work it can
//! no longer trust itself to compute, drains under verification, and
//! steps back down once the corruption rate subsides. Queue pressure
//! alone can never reach this rung.

use crate::request::DeadlineClass;

/// One rung of the ladder, mildest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DegradeLevel {
    /// Full service.
    Normal,
    /// Shed new batch-deadline (throughput) requests.
    ShedBatch,
    /// Also shed new standard-deadline requests.
    ShedStandard,
    /// Additionally split large batches (half the band cap) to bound
    /// head-of-line blocking on interactive work.
    SplitLarge,
    /// Reject all new work while the backlog drains.
    RejectNew,
    /// Data-integrity brown-out: too many dispatched batches failed ABFT
    /// verification. Reject all new work while the corrupting shards are
    /// breaker-isolated and the backlog drains under verification. Only
    /// corruption pressure climbs here; queue pressure caps at
    /// [`DegradeLevel::RejectNew`].
    Quarantine,
}

impl DegradeLevel {
    /// Every level, mildest first.
    pub const ALL: [DegradeLevel; 6] = [
        DegradeLevel::Normal,
        DegradeLevel::ShedBatch,
        DegradeLevel::ShedStandard,
        DegradeLevel::SplitLarge,
        DegradeLevel::RejectNew,
        DegradeLevel::Quarantine,
    ];

    /// Stable short name (journal, counters, timeline).
    pub fn name(self) -> &'static str {
        match self {
            DegradeLevel::Normal => "normal",
            DegradeLevel::ShedBatch => "shed_batch",
            DegradeLevel::ShedStandard => "shed_standard",
            DegradeLevel::SplitLarge => "split_large",
            DegradeLevel::RejectNew => "reject_new",
            DegradeLevel::Quarantine => "quarantine",
        }
    }

    /// Stable index (row order of [`DegradeLevel::ALL`]).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Whether a new request of `deadline` class is admitted at this level.
    pub fn admits(self, deadline: DeadlineClass) -> bool {
        match self {
            DegradeLevel::Normal => true,
            DegradeLevel::ShedBatch => deadline != DeadlineClass::Batch,
            DegradeLevel::ShedStandard | DegradeLevel::SplitLarge => {
                deadline == DeadlineClass::Interactive
            }
            DegradeLevel::RejectNew | DegradeLevel::Quarantine => false,
        }
    }

    /// Whether batch formation halves its band cap at this level.
    pub fn splits_batches(self) -> bool {
        self >= DegradeLevel::SplitLarge
    }
}

/// Ladder knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradeConfig {
    /// Pressure at or above which the ladder climbs one level per tick.
    pub upgrade_at: f64,
    /// Pressure at or below which it descends one level per tick. Must be
    /// below `upgrade_at` (the hysteresis band).
    pub downgrade_at: f64,
    /// Corruption pressure — the fraction of dispatched batches whose
    /// results failed ABFT verification — at or above which the ladder
    /// climbs one rung per tick toward [`DegradeLevel::Quarantine`],
    /// overriding the queue-pressure rules. Below it, a quarantined
    /// ladder steps back down.
    pub quarantine_at: f64,
}

impl Default for DegradeConfig {
    fn default() -> Self {
        DegradeConfig {
            upgrade_at: 0.75,
            downgrade_at: 0.40,
            quarantine_at: 0.5,
        }
    }
}

/// The ladder state machine: current level plus the one-step transition
/// rule. The supervisor journals every transition as a `Degraded` record
/// and drives the state through its apply path, so replay reconstructs
/// the level exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ladder {
    level: DegradeLevel,
}

impl Default for Ladder {
    fn default() -> Self {
        Self::new()
    }
}

impl Ladder {
    /// A ladder at [`DegradeLevel::Normal`].
    pub fn new() -> Ladder {
        Ladder { level: DegradeLevel::Normal }
    }

    /// Current level.
    pub fn level(&self) -> DegradeLevel {
        self.level
    }

    /// Forces the level — the journal-apply path.
    pub fn set_level(&mut self, level: DegradeLevel) {
        self.level = level;
    }

    /// The one-step transition `(pressure, corruption)` implies, or
    /// `None` when the level holds. Corruption pressure dominates: at or
    /// above [`DegradeConfig::quarantine_at`] the ladder climbs toward
    /// [`DegradeLevel::Quarantine`] whatever the queues look like, and a
    /// quarantined ladder only descends once corruption subsides. Queue
    /// pressure alone caps at [`DegradeLevel::RejectNew`]. Pure: the
    /// supervisor journals the returned level before applying it.
    pub fn next_level(
        &self,
        pressure: f64,
        corruption: f64,
        cfg: &DegradeConfig,
    ) -> Option<DegradeLevel> {
        let i = self.level.index();
        if corruption >= cfg.quarantine_at {
            return DegradeLevel::ALL.get(i + 1).copied();
        }
        if self.level == DegradeLevel::Quarantine {
            return Some(DegradeLevel::ALL[i - 1]);
        }
        if pressure >= cfg.upgrade_at && i + 2 < DegradeLevel::ALL.len() {
            Some(DegradeLevel::ALL[i + 1])
        } else if pressure <= cfg.downgrade_at && i > 0 {
            Some(DegradeLevel::ALL[i - 1])
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_climbs_one_level_per_step_and_descends_with_hysteresis() {
        let cfg = DegradeConfig::default();
        let mut l = Ladder::new();
        // Sustained queue pressure walks the ladder one rung at a time —
        // but stops at RejectNew: Quarantine is corruption-only.
        let mut seen = vec![l.level()];
        while let Some(next) = l.next_level(0.9, 0.0, &cfg) {
            assert_eq!(next.index(), l.level().index() + 1);
            l.set_level(next);
            seen.push(next);
        }
        assert_eq!(seen, DegradeLevel::ALL[..5].to_vec());
        assert_eq!(l.level(), DegradeLevel::RejectNew);
        // Mid-band pressure holds the level (hysteresis).
        assert_eq!(l.next_level(0.6, 0.0, &cfg), None);
        // Low pressure walks back down.
        while let Some(next) = l.next_level(0.1, 0.0, &cfg) {
            assert_eq!(next.index() + 1, l.level().index());
            l.set_level(next);
        }
        assert_eq!(l.level(), DegradeLevel::Normal);
    }

    #[test]
    fn only_corruption_pressure_reaches_quarantine() {
        let cfg = DegradeConfig::default();
        let mut l = Ladder::new();
        // Corruption at the threshold climbs even with idle queues.
        while let Some(next) = l.next_level(0.0, cfg.quarantine_at, &cfg) {
            assert_eq!(next.index(), l.level().index() + 1);
            l.set_level(next);
        }
        assert_eq!(l.level(), DegradeLevel::Quarantine);
        assert!(!l.level().admits(DeadlineClass::Interactive));
        assert!(l.level().splits_batches());
        // Queue pressure alone cannot hold the quarantine rung: once
        // corruption subsides the ladder steps down, however hot the queues.
        assert_eq!(l.next_level(1.0, 0.0, &cfg), Some(DegradeLevel::RejectNew));
        l.set_level(DegradeLevel::RejectNew);
        // From RejectNew, queue pressure holds but never re-enters
        // quarantine; renewed corruption does.
        assert_eq!(l.next_level(1.0, 0.0, &cfg), None);
        assert_eq!(
            l.next_level(0.0, cfg.quarantine_at, &cfg),
            Some(DegradeLevel::Quarantine)
        );
    }

    #[test]
    fn levels_shed_deadline_classes_in_order() {
        use DeadlineClass::*;
        assert!(DegradeLevel::Normal.admits(Batch));
        assert!(!DegradeLevel::ShedBatch.admits(Batch));
        assert!(DegradeLevel::ShedBatch.admits(Standard));
        assert!(!DegradeLevel::ShedStandard.admits(Standard));
        assert!(DegradeLevel::ShedStandard.admits(Interactive));
        assert!(DegradeLevel::SplitLarge.admits(Interactive));
        assert!(!DegradeLevel::RejectNew.admits(Interactive));
        // Splitting engages at the second-to-last rung.
        assert!(!DegradeLevel::ShedStandard.splits_batches());
        assert!(DegradeLevel::SplitLarge.splits_batches());
        assert!(DegradeLevel::RejectNew.splits_batches());
    }

    #[test]
    fn level_names_and_indices_are_stable() {
        for (i, level) in DegradeLevel::ALL.iter().enumerate() {
            assert_eq!(level.index(), i);
            assert!(!level.name().is_empty());
        }
    }
}
