//! `fftx-serve` — a multi-tenant FFT job-serving subsystem on top of the
//! stage-graph engines, with auto-tuned placement.
//!
//! The serving path, front to back:
//!
//! 1. [`traffic`] — deterministic open-loop request generation (Poisson
//!    arrivals, steady/burst/diurnal profiles, mixed tenants, geometry and
//!    deadline classes).
//! 2. [`admission`] — bounded queue, per-tenant fair share, deadline-aware
//!    load shedding with typed [`RejectReason`]s.
//! 3. [`batch`] — coalescing compatible requests onto one `Problem`
//!    (the serving-layer analogue of the paper's band grouping), with
//!    per-tenant ordering preserved.
//! 4. [`tuner`] — the placement engine: candidate (R×T, ntg, policy,
//!    HT-degree) configurations screened by the closed-form `knlsim`
//!    estimate, priced exactly on the DES, refined online from measured
//!    durations, cached in a deterministic tuning table, explainable via
//!    [`Tuner::why`].
//! 5. [`server`] — the virtual-time serving loop: dispatches batches on
//!    the stage-graph engines, survives injected chaos through the
//!    recovery ladder (retry → rollback → eviction) without losing an
//!    accepted job, and exports per-tenant/per-stage metrics.
//!
//! Fleet durability on top of the single-node path:
//!
//! 6. [`journal`] — the append-only write-ahead log of every fleet state
//!    transition, with a lossless text encoding, per-job idempotency
//!    keys, and a machine-checked conservation audit.
//! 7. [`health`] — the heartbeat schedule and the per-shard circuit
//!    breaker (trip → bounded-backoff half-open probing), reusing the
//!    task-retry backoff schedule.
//! 8. [`degrade`] — the brown-out ladder: shed by deadline class, split
//!    large batches, reject new work; every transition journaled.
//! 9. [`supervisor`] — N simulated shard nodes under one supervisor:
//!    journaled virtual-time loop, node-death failover through the
//!    placement tuner, split-brain duplicate suppression, and exact
//!    crash recovery by journal replay ([`resume_fleet`]).
//! 10. [`fleet`] — fleet capacity: the tenant→shard consistent-hash ring
//!     (bounded-load overflow, minimal movement on membership change),
//!     the journaled reactive autoscaler, cross-shard work stealing, and
//!     the offline parallel Monte-Carlo capacity planner
//!     ([`plan_capacity`]).

#![warn(missing_docs)]

pub mod admission;
pub mod batch;
pub mod degrade;
pub mod error;
pub mod exec;
pub mod fleet;
pub mod health;
pub mod journal;
pub mod request;
pub mod server;
pub mod supervisor;
pub mod traffic;
pub mod tuner;

pub use admission::{Admission, AdmissionConfig};
pub use batch::{assemble, plan_batch, Batch, BatchConfig, BatchMember};
pub use degrade::{DegradeConfig, DegradeLevel, Ladder};
pub use error::ServeError;
pub use fleet::{
    load_bound, plan_capacity, AutoscaleConfig, HashRing, PlanConfig, PlanReport,
    PolicyEnvelope, RingConfig, ScaleDecision,
};
pub use health::{Breaker, BreakerState, HealthConfig};
pub use journal::{idempotency_key, Conservation, Journal, Record};
pub use supervisor::{
    resume_fleet, run_fleet, Fleet, FleetConfig, FleetFaults, FleetJob, FleetReport,
};
pub use exec::{Backend, RealRun, ServeChaos};
pub use request::{
    band_hash, class_problem, DeadlineClass, GeometryClass, RejectReason, Request, PRIME_NR3,
};
pub use server::{
    run_serve, BatchRecord, JobRecord, PlacementMode, ServeConfig, ServeReport, Server, ShedRecord,
};
pub use traffic::{generate, LoadProfile, TrafficConfig};
pub use tuner::{
    candidates, candidates_for, serve_node, CandidateScore, Decision, Placement, Tuner,
    TunerConfig,
};
