//! `fftx-serve` — a multi-tenant FFT job-serving subsystem on top of the
//! stage-graph engines, with auto-tuned placement.
//!
//! The serving path, front to back:
//!
//! 1. [`traffic`] — deterministic open-loop request generation (Poisson
//!    arrivals, steady/burst/diurnal profiles, mixed tenants, geometry and
//!    deadline classes).
//! 2. [`admission`] — bounded queue, per-tenant fair share, deadline-aware
//!    load shedding with typed [`RejectReason`]s.
//! 3. [`batch`] — coalescing compatible requests onto one `Problem`
//!    (the serving-layer analogue of the paper's band grouping), with
//!    per-tenant ordering preserved.
//! 4. [`tuner`] — the placement engine: candidate (R×T, ntg, policy,
//!    HT-degree) configurations screened by the closed-form `knlsim`
//!    estimate, priced exactly on the DES, refined online from measured
//!    durations, cached in a deterministic tuning table, explainable via
//!    [`Tuner::why`].
//! 5. [`server`] — the virtual-time serving loop: dispatches batches on
//!    the stage-graph engines, survives injected chaos through the
//!    recovery ladder (retry → rollback → eviction) without losing an
//!    accepted job, and exports per-tenant/per-stage metrics.

#![warn(missing_docs)]

pub mod admission;
pub mod batch;
pub mod request;
pub mod server;
pub mod traffic;
pub mod tuner;

pub use admission::{Admission, AdmissionConfig};
pub use batch::{assemble, plan_batch, Batch, BatchConfig, BatchMember};
pub use request::{band_hash, DeadlineClass, GeometryClass, RejectReason, Request};
pub use server::{
    run_serve, BatchRecord, JobRecord, PlacementMode, ServeChaos, ServeConfig, ServeReport, Server,
    ShedRecord,
};
pub use traffic::{generate, LoadProfile, TrafficConfig};
pub use tuner::{candidates, serve_node, CandidateScore, Decision, Placement, Tuner, TunerConfig};
