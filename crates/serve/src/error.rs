//! Typed errors of the serving subsystem.
//!
//! The serving loop, batch formation, the durable journal, and the fleet
//! supervisor all report failures through one [`ServeError`] instead of
//! panicking: an internal inconsistency in a long-running server must
//! surface as a diagnosable value the driver can log and act on, not tear
//! the process down mid-request. Invariant violations that can only arise
//! from a bug (a planned queue position out of range, a mixed-class batch)
//! still carry enough context to pinpoint the broken step.

use std::error::Error;
use std::fmt;

/// Every failure the serving subsystem can report.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Batch assembly was handed an empty member set.
    EmptyBatch,
    /// Batch assembly was handed members of more than one geometry class.
    MixedClasses {
        /// The class of the batch head.
        expected: &'static str,
        /// The first non-matching member's class.
        found: &'static str,
    },
    /// A dispatch was requested on an empty queue.
    EmptyQueue,
    /// The batch planner returned a queue position past the queue end —
    /// plan and queue went out of sync.
    PlanOutOfRange {
        /// The invalid position.
        pos: usize,
        /// Queue depth at the time.
        depth: usize,
    },
    /// A queued request's tenant was missing from the occupancy accounting.
    TenantUnaccounted {
        /// The unaccounted tenant.
        tenant: u32,
    },
    /// The request trace handed to the serving loop was not
    /// arrival-ordered.
    UnorderedTrace {
        /// Index of the first out-of-order request.
        index: usize,
    },
    /// The fleet loop exceeded its safety tick bound with accepted jobs
    /// still open — the virtual-time equivalent of a hung cluster.
    Stalled {
        /// The tick the loop gave up at.
        tick: u64,
        /// Accepted jobs still unfinished.
        open_jobs: usize,
    },
    /// The durable job journal failed to decode or replay.
    Journal(String),
    /// A configuration knob set is self-contradictory (autoscale bounds,
    /// hysteresis thresholds, planner sweep ranges).
    Config(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::EmptyBatch => write!(f, "batch assembly on an empty member set"),
            ServeError::MixedClasses { expected, found } => write!(
                f,
                "batch assembly mixed geometry classes: head is {expected}, found {found}"
            ),
            ServeError::EmptyQueue => write!(f, "dispatch requested on an empty queue"),
            ServeError::PlanOutOfRange { pos, depth } => write!(
                f,
                "batch plan position {pos} out of range for queue depth {depth}"
            ),
            ServeError::TenantUnaccounted { tenant } => {
                write!(f, "tenant {tenant} queued but missing from occupancy accounting")
            }
            ServeError::UnorderedTrace { index } => {
                write!(f, "request trace not arrival-ordered at index {index}")
            }
            ServeError::Stalled { tick, open_jobs } => write!(
                f,
                "fleet stalled: {open_jobs} accepted jobs still open at safety tick bound {tick}"
            ),
            ServeError::Journal(msg) => write!(f, "journal: {msg}"),
            ServeError::Config(msg) => write!(f, "configuration: {msg}"),
        }
    }
}

impl Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_with_context() {
        let cases: Vec<(ServeError, &str)> = vec![
            (ServeError::EmptyBatch, "empty member set"),
            (
                ServeError::MixedClasses { expected: "small", found: "large" },
                "head is small, found large",
            ),
            (ServeError::EmptyQueue, "empty queue"),
            (ServeError::PlanOutOfRange { pos: 9, depth: 3 }, "position 9"),
            (ServeError::TenantUnaccounted { tenant: 4 }, "tenant 4"),
            (ServeError::UnorderedTrace { index: 2 }, "index 2"),
            (ServeError::Stalled { tick: 100, open_jobs: 3 }, "3 accepted jobs"),
            (ServeError::Journal("bad record".into()), "bad record"),
            (ServeError::Config("min > max".into()), "min > max"),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} lacks {needle:?}");
        }
    }
}
