//! The execution backend shared by the single-node server and the fleet
//! supervisor: a base-problem cache keyed by (class, layout, policy), the
//! real stage-graph execution of one batch routed through the recovery
//! ladder (task retry → batch rollback → rank eviction, with escalation to
//! a clean re-run), and the model-priced overhead of the recovery events a
//! run absorbed.
//!
//! Execution is a pure function of (batch, placement, chaos seed, workload
//! seed): the backend holds no virtual-time state, so the fleet rebuilds
//! results after a crash by re-executing — the journal records outcomes,
//! never band data.

use crate::batch::Batch;
use crate::request::{class_problem, GeometryClass};
use crate::tuner::Placement;
use fftx_core::{
    run_eviction, run_policy, run_policy_chaotic, run_retry, run_rollback, run_verified, Problem,
    RunOutput, SchedulerPolicy, VerifyMode,
};
use fftx_fault::{
    mix64, BatchAborts, ChaosConfig, CorruptionConfig, RankDeath, RecoveryConfig, TaskCrashes,
};
use fftx_knlsim::CommModel;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Chaos injection on the serving path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeChaos {
    /// Seed of the per-batch fault schedules.
    pub seed: u64,
    /// When set, that batch (by dispatch index) is forced onto the
    /// eviction-capable 7×1 serial layout and rank 1 dies mid-run — the
    /// end-to-end demonstration of recovery mechanism 3.
    pub evict_batch: Option<usize>,
    /// Silent-data-corruption injection rate in flips per thousand FFT
    /// batches (0 disables). When set, serial-policy batches run under
    /// seeded bit-flip corruption through the ABFT verify-and-recompute
    /// path ([`run_verified`]) in `cheap` mode — detections and rollbacks
    /// surface on [`RealRun`].
    pub corrupt_per_mille: u32,
}

/// Outcome of executing one batch for real.
pub struct RealRun {
    /// The engine output (result bands, trace, FFT-phase seconds).
    pub output: RunOutput,
    /// Task retries absorbed (or chaos events on message-level policies).
    pub retries: u64,
    /// Batch rollbacks absorbed.
    pub rollbacks: u64,
    /// Rank evictions absorbed.
    pub evictions: u64,
    /// Batches whose results failed ABFT verification (silent corruption
    /// caught before delivery).
    pub detections: u64,
    /// Checkpoint bytes the recovery path moved.
    pub checkpoint_bytes: usize,
    /// The run escalated to a clean re-execution after the in-place
    /// recovery budget was exhausted.
    pub escalated: bool,
}

/// The execution backend. See the module docs.
pub struct Backend {
    seed: u64,
    chaos: Option<ServeChaos>,
    comm: CommModel,
    problems: BTreeMap<(usize, usize, usize, &'static str, &'static str), Arc<Problem>>,
}

impl Backend {
    /// A backend for workload data seed `seed` under optional chaos.
    pub fn new(seed: u64, chaos: Option<ServeChaos>) -> Self {
        Backend {
            seed,
            chaos,
            comm: CommModel::paper(),
            problems: BTreeMap::new(),
        }
    }

    /// The chaos configuration the backend executes under.
    pub fn chaos(&self) -> Option<ServeChaos> {
        self.chaos
    }

    /// The communication model used to price recovery overhead.
    pub fn comm(&self) -> &CommModel {
        &self.comm
    }

    /// The batch problem of `(class, nbnd)` under `placement`, via a base
    /// problem per (class, layout, policy) rebanded with `with_nbnd` —
    /// grids, stick layouts, and FFT plans are built once and shared.
    pub fn problem_for(
        &mut self,
        class: GeometryClass,
        nbnd: usize,
        p: &Placement,
    ) -> Arc<Problem> {
        let key = (class.index(), p.nr, p.ntg, p.policy.name(), p.decomp.name());
        let seed = self.seed;
        let base = self
            .problems
            .entry(key)
            .or_insert_with(|| class_problem(class, p.config(class, nbnd, seed)));
        if base.config.nbnd == nbnd {
            base.clone()
        } else {
            base.with_nbnd(nbnd)
        }
    }

    /// Executes one batch for real, routing chaos through the recovery
    /// ladder. Recovery failure escalates to a clean re-run — an accepted
    /// job is never dropped. `index` keys the per-batch fault schedule, so
    /// the same (batch, index) pair replays the identical faults.
    pub fn execute(&mut self, batch: &Batch, p: &Placement, index: usize, evict: bool) -> RealRun {
        let problem = self.problem_for(batch.class, batch.nbnd, p);
        let rc = RecoveryConfig::default();
        let chaos_seed = self
            .chaos
            .map(|c| mix64(c.seed ^ (index as u64).wrapping_mul(0x9e37)));
        let corrupt = self.chaos.map_or(0, |c| c.corrupt_per_mille);
        let mut run = RealRun {
            output: RunOutput {
                bands: Vec::new(),
                trace: Default::default(),
                fft_phase_s: 0.0,
            },
            retries: 0,
            rollbacks: 0,
            evictions: 0,
            detections: 0,
            checkpoint_bytes: 0,
            escalated: false,
        };
        match (chaos_seed, p.policy) {
            (Some(_), SchedulerPolicy::Serial) if evict => {
                // The eviction demo: rank 1 dies at batch 2 of the 7×1
                // layout; the world re-plans onto the 3×2 survivors.
                match run_eviction(&problem, RankDeath::at(1, 2), &rc) {
                    Ok((output, stats)) => {
                        run.output = output;
                        run.evictions = stats.evictions;
                        run.rollbacks = stats.batch_rollbacks;
                        run.checkpoint_bytes = stats.checkpoint_bytes as usize;
                    }
                    Err(_) => {
                        run.output = run_policy(&problem, p.policy);
                        run.escalated = true;
                    }
                }
            }
            (Some(seed), SchedulerPolicy::Serial) if corrupt > 0 => {
                // Silent-corruption chaos: seeded bit flips land on the FFT
                // working set and the ABFT layer must catch every one
                // before delivery. Verification failure past the rollback
                // budget escalates to a clean re-run, like every other arm.
                let corruption = CorruptionConfig::transient(seed, corrupt as f64 / 1000.0);
                match run_verified(&problem, corruption, VerifyMode::Cheap, &rc) {
                    Ok((output, stats)) => {
                        run.output = output;
                        run.detections = stats.detected_batches;
                        run.rollbacks = stats.batch_rollbacks;
                        run.checkpoint_bytes = stats.checkpoint_bytes as usize;
                    }
                    Err(_) => {
                        run.output = run_policy(&problem, p.policy);
                        run.escalated = true;
                    }
                }
            }
            (Some(seed), SchedulerPolicy::Serial) => {
                let aborts = BatchAborts::new(seed, 0.4, 2);
                match run_rollback(&problem, Some(aborts), &rc) {
                    Ok((output, stats)) => {
                        run.output = output;
                        run.rollbacks = stats.batch_rollbacks;
                        run.checkpoint_bytes = stats.checkpoint_bytes as usize;
                    }
                    Err(_) => {
                        run.output = run_policy(&problem, p.policy);
                        run.escalated = true;
                    }
                }
            }
            (Some(seed), SchedulerPolicy::TaskPerFft) => {
                let crashes = TaskCrashes::new(seed, 0.3, 3);
                match run_retry(&problem, Some(crashes), &rc) {
                    Ok((output, stats)) => {
                        run.output = output;
                        run.retries = stats.task_retries;
                    }
                    Err(_) => {
                        run.output = run_policy(&problem, p.policy);
                        run.escalated = true;
                    }
                }
            }
            (Some(seed), policy) => {
                // Message-level chaos on the remaining policies: lossless
                // by construction, the fault report feeds the counters.
                let (output, report) =
                    run_policy_chaotic(&problem, policy, Some(ChaosConfig::light(seed)));
                run.output = output;
                run.retries = report.map_or(0, |r| r.events.len() as u64);
            }
            (None, policy) => {
                run.output = run_policy(&problem, policy);
            }
        }
        run
    }

    /// Model-priced overhead of the recovery events a real run absorbed.
    pub fn recovery_overhead_s(
        &self,
        run: &RealRun,
        base_service_s: f64,
        iterations: usize,
    ) -> f64 {
        let per_batch_s = base_service_s / iterations.max(1) as f64;
        let replays = (run.rollbacks + run.evictions) as u32;
        let mut overhead = self
            .comm
            .replay_seconds(run.checkpoint_bytes, per_batch_s, replays);
        if run.checkpoint_bytes > 0 {
            overhead += self.comm.checkpoint_seconds(run.checkpoint_bytes);
        }
        // A retried task re-executes one band-batch FFT lane.
        overhead += run.retries as f64 * per_batch_s / iterations.max(1) as f64;
        if run.escalated {
            overhead += base_service_s; // the wasted attempt
        }
        overhead
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{assemble, BatchConfig};
    use crate::request::{DeadlineClass, Request};

    fn batch(class: GeometryClass, bands: usize) -> Batch {
        assemble(
            vec![Request {
                id: 0,
                tenant: 0,
                class,
                bands,
                deadline: DeadlineClass::Standard,
                arrival_s: 0.0,
            }],
            &BatchConfig::default(),
        )
        .expect("single member")
    }

    fn placement() -> Placement {
        Placement {
            nr: 2,
            ntg: 2,
            policy: SchedulerPolicy::Serial,
            decomp: fftx_core::Decomposition::Slab,
        }
    }

    #[test]
    fn problem_cache_rebands_instead_of_rebuilding() {
        let mut be = Backend::new(42, None);
        let p = placement();
        let a = be.problem_for(GeometryClass::Small, 4, &p);
        let b = be.problem_for(GeometryClass::Small, 8, &p);
        assert_eq!(b.config.nbnd, 8);
        assert_eq!(a.v, b.v, "rebanding shares the potential");
        assert_eq!(a.layout.group_sticks, b.layout.group_sticks);
    }

    #[test]
    fn execution_is_a_pure_function_of_its_inputs() {
        let mut be1 =
            Backend::new(42, Some(ServeChaos { seed: 9, evict_batch: None, corrupt_per_mille: 0 }));
        let mut be2 =
            Backend::new(42, Some(ServeChaos { seed: 9, evict_batch: None, corrupt_per_mille: 0 }));
        let b = batch(GeometryClass::Small, 4);
        let p = placement();
        let r1 = be1.execute(&b, &p, 3, false);
        let r2 = be2.execute(&b, &p, 3, false);
        assert_eq!(r1.output.bands, r2.output.bands);
        assert_eq!(r1.rollbacks, r2.rollbacks);
        assert_eq!(r1.escalated, r2.escalated);
    }

    #[test]
    fn prime_class_executes_through_bluestein() {
        let mut be = Backend::new(42, None);
        let b = batch(GeometryClass::Prime, 4);
        let p = placement();
        let problem = be.problem_for(GeometryClass::Prime, 4, &p);
        assert_eq!(problem.grid().nr3, crate::request::PRIME_NR3);
        let run = be.execute(&b, &p, 0, false);
        assert_eq!(run.output.bands.len(), 4);
        assert!(run.output.bands.iter().all(|band| !band.is_empty()));
    }

    #[test]
    fn corruption_chaos_is_detected_and_never_delivered() {
        // A saturating flip rate guarantees the schedule fires; every
        // detection must be repaired (or escalated away) before delivery.
        let chaos = ServeChaos { seed: 7, evict_batch: None, corrupt_per_mille: 1000 };
        let mut corrupt = Backend::new(42, Some(chaos));
        let mut clean = Backend::new(42, None);
        let b = batch(GeometryClass::Small, 4);
        let p = placement();
        let dirty_run = corrupt.execute(&b, &p, 0, false);
        let clean_run = clean.execute(&b, &p, 0, false);
        assert!(
            dirty_run.detections > 0 || dirty_run.escalated,
            "a saturating flip rate must trip the verifier"
        );
        assert_eq!(
            dirty_run.output.bands, clean_run.output.bands,
            "delivered bands are bit-identical to an uncorrupted run"
        );
    }

    #[test]
    fn escalation_prices_the_wasted_attempt() {
        let be = Backend::new(42, None);
        let run = RealRun {
            output: RunOutput { bands: Vec::new(), trace: Default::default(), fft_phase_s: 0.0 },
            retries: 0,
            rollbacks: 0,
            evictions: 0,
            detections: 0,
            checkpoint_bytes: 0,
            escalated: true,
        };
        let overhead = be.recovery_overhead_s(&run, 2.0, 4);
        assert!(overhead >= 2.0, "escalation repays the full base service");
    }
}
