//! Size factorisation and "good FFT order" selection.
//!
//! Quantum ESPRESSO's `good_fft_order` only accepts grid dimensions whose
//! factorisation is `2^a * 3^b * 5^c * 7^d * 11^e` with `d, e <= 1`; the same
//! rule is implemented here so grids derived from a kinetic-energy cutoff end
//! up with the exact dimensions the original FFTXlib would pick.

/// Largest prime the mixed-radix engine handles directly with a generic
/// O(r^2) butterfly. Sizes containing a larger prime fall back to Bluestein.
pub const MAX_DIRECT_PRIME: usize = 37;

/// Returns the prime factorisation of `n` (ascending, with multiplicity).
/// `factorize(0)` and `factorize(1)` return an empty vector.
pub fn factorize(n: usize) -> Vec<usize> {
    let mut n = n;
    let mut out = Vec::new();
    if n < 2 {
        return out;
    }
    for p in [2usize, 3, 5] {
        while n.is_multiple_of(p) {
            out.push(p);
            n /= p;
        }
    }
    let mut p = 7;
    while p * p <= n {
        while n.is_multiple_of(p) {
            out.push(p);
            n /= p;
        }
        p += 2;
    }
    if n > 1 {
        out.push(n);
    }
    out
}

/// The radix schedule used by the mixed-radix engine: factors of `n` ordered
/// so specialised butterflies (4, then 2/3/5/7) run on the largest strides.
/// Pairs of 2s are fused into radix-4 stages.
pub fn radix_schedule(n: usize) -> Vec<usize> {
    let primes = factorize(n);
    let twos = primes.iter().filter(|&&p| p == 2).count();
    let mut sched = Vec::new();
    // One radix-4 stage per fused pair of 2s.
    sched.resize(twos / 2, 4);
    if twos % 2 == 1 {
        sched.push(2);
    }
    for &p in primes.iter().filter(|&&p| p != 2) {
        sched.push(p);
    }
    sched
}

/// True when `n` factors as `2^a 3^b 5^c 7^d 11^e` with `d, e <= 1`
/// (Quantum ESPRESSO's notion of an acceptable FFT dimension).
pub fn is_good_size(n: usize) -> bool {
    if n == 0 {
        return false;
    }
    let mut n = n;
    for p in [2usize, 3, 5] {
        while n.is_multiple_of(p) {
            n /= p;
        }
    }
    for p in [7usize, 11] {
        if n.is_multiple_of(p) {
            n /= p;
        }
    }
    n == 1
}

/// Smallest good FFT size `>= n` (QE's `good_fft_order`).
///
/// # Panics
/// Panics if `n == 0`.
pub fn good_fft_order(n: usize) -> usize {
    assert!(n > 0, "good_fft_order: n must be positive");
    let mut m = n;
    while !is_good_size(m) {
        m += 1;
    }
    m
}

/// True when the mixed-radix engine can run `n` without Bluestein.
pub fn is_direct_size(n: usize) -> bool {
    n <= 1 || factorize(n).into_iter().all(|p| p <= MAX_DIRECT_PRIME)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorize_basics() {
        assert!(factorize(0).is_empty());
        assert!(factorize(1).is_empty());
        assert_eq!(factorize(2), vec![2]);
        assert_eq!(factorize(12), vec![2, 2, 3]);
        assert_eq!(factorize(360), vec![2, 2, 2, 3, 3, 5]);
        assert_eq!(factorize(97), vec![97]);
        assert_eq!(factorize(77), vec![7, 11]);
    }

    #[test]
    fn factorize_reconstructs() {
        for n in 2..500 {
            let prod: usize = factorize(n).iter().product();
            assert_eq!(prod, n, "n={n}");
        }
    }

    #[test]
    fn schedule_prefers_radix4() {
        assert_eq!(radix_schedule(16), vec![4, 4]);
        assert_eq!(radix_schedule(8), vec![4, 2]);
        assert_eq!(radix_schedule(120), vec![4, 2, 3, 5]);
        assert_eq!(radix_schedule(1), Vec::<usize>::new());
    }

    #[test]
    fn schedule_product_is_n() {
        for n in 2..300 {
            let prod: usize = radix_schedule(n).iter().product();
            assert_eq!(prod, n, "n={n}");
        }
    }

    #[test]
    fn good_sizes_match_qe_rule() {
        // 2^a 3^b 5^c with optional single 7 / 11.
        for n in [1, 2, 3, 4, 5, 6, 7, 8, 10, 11, 12, 14, 15, 120, 128, 240] {
            assert!(is_good_size(n), "{n} should be good");
        }
        // 49 = 7^2 and 121 = 11^2 exceed the single-factor allowance; 13 is
        // not an allowed prime at all.
        for n in [0, 13, 49, 121, 13 * 2, 17] {
            assert!(!is_good_size(n), "{n} should be bad");
        }
    }

    #[test]
    fn good_fft_order_rounds_up() {
        assert_eq!(good_fft_order(1), 1);
        assert_eq!(good_fft_order(13), 14);
        assert_eq!(good_fft_order(115), 120);
        assert_eq!(good_fft_order(121), 125); // 121 = 11^2 rejected
        assert_eq!(good_fft_order(128), 128);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn good_fft_order_rejects_zero() {
        good_fft_order(0);
    }

    #[test]
    fn direct_size_boundary() {
        assert!(is_direct_size(1));
        assert!(is_direct_size(37));
        assert!(is_direct_size(2 * 37));
        assert!(!is_direct_size(41));
        assert!(!is_direct_size(2 * 41));
    }
}
