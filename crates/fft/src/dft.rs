//! Naive O(n^2) discrete Fourier transform, used as the correctness oracle
//! for every fast transform in this crate.

use crate::complex::Complex64;
use std::f64::consts::PI;

/// Transform direction. The sign is the sign of the exponent:
/// `Forward` uses `e^{-2 pi i n k / N}` (the physics/QE convention for
/// r-space -> G-space), `Inverse` uses `e^{+2 pi i n k / N}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Negative exponent sign.
    Forward,
    /// Positive exponent sign.
    Inverse,
}

impl Direction {
    /// The sign of the exponent as `-1.0` or `+1.0`.
    #[inline]
    pub fn sign(self) -> f64 {
        match self {
            Direction::Forward => -1.0,
            Direction::Inverse => 1.0,
        }
    }

    /// The opposite direction.
    #[inline]
    pub fn reverse(self) -> Self {
        match self {
            Direction::Forward => Direction::Inverse,
            Direction::Inverse => Direction::Forward,
        }
    }
}

/// Computes the unnormalised DFT of `input` in the given direction.
///
/// `X[k] = sum_n x[n] e^{sign * 2 pi i n k / N}`
pub fn naive_dft(input: &[Complex64], dir: Direction) -> Vec<Complex64> {
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    let sign = dir.sign();
    let mut out = vec![Complex64::ZERO; n];
    for (k, slot) in out.iter_mut().enumerate() {
        let mut acc = Complex64::ZERO;
        for (j, &x) in input.iter().enumerate() {
            // Reduce j*k modulo n before the trig call to keep the argument
            // small; j*k can overflow the f64 mantissa for large n otherwise.
            let phase = sign * 2.0 * PI * ((j * k) % n) as f64 / n as f64;
            acc += x * Complex64::cis(phase);
        }
        *slot = acc;
    }
    out
}

/// Naive 3-D DFT over a dense grid with x fastest, layout
/// `index = x + nx*(y + ny*z)`. Used only in tests of the fast 3-D path.
pub fn naive_dft_3d(
    input: &[Complex64],
    nx: usize,
    ny: usize,
    nz: usize,
    dir: Direction,
) -> Vec<Complex64> {
    assert_eq!(input.len(), nx * ny * nz);
    let mut work = input.to_vec();
    // Transform along x.
    for z in 0..nz {
        for y in 0..ny {
            let base = nx * (y + ny * z);
            let row = naive_dft(&work[base..base + nx], dir);
            work[base..base + nx].copy_from_slice(&row);
        }
    }
    // Transform along y.
    let mut col = vec![Complex64::ZERO; ny];
    for z in 0..nz {
        for x in 0..nx {
            for y in 0..ny {
                col[y] = work[x + nx * (y + ny * z)];
            }
            let out = naive_dft(&col, dir);
            for y in 0..ny {
                work[x + nx * (y + ny * z)] = out[y];
            }
        }
    }
    // Transform along z.
    let mut colz = vec![Complex64::ZERO; nz];
    for y in 0..ny {
        for x in 0..nx {
            for z in 0..nz {
                colz[z] = work[x + nx * (y + ny * z)];
            }
            let out = naive_dft(&colz, dir);
            for z in 0..nz {
                work[x + nx * (y + ny * z)] = out[z];
            }
        }
    }
    work
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    #[test]
    fn direction_signs() {
        assert_eq!(Direction::Forward.sign(), -1.0);
        assert_eq!(Direction::Inverse.sign(), 1.0);
        assert_eq!(Direction::Forward.reverse(), Direction::Inverse);
        assert_eq!(Direction::Inverse.reverse(), Direction::Forward);
    }

    #[test]
    fn dft_of_empty_and_singleton() {
        assert!(naive_dft(&[], Direction::Forward).is_empty());
        let one = naive_dft(&[c64(2.0, -1.0)], Direction::Forward);
        assert_eq!(one, vec![c64(2.0, -1.0)]);
    }

    #[test]
    fn dft_of_impulse_is_flat() {
        let mut x = vec![Complex64::ZERO; 8];
        x[0] = Complex64::ONE;
        let y = naive_dft(&x, Direction::Forward);
        for v in y {
            assert!(v.dist(Complex64::ONE) < 1e-12);
        }
    }

    #[test]
    fn dft_of_constant_is_impulse() {
        let x = vec![Complex64::ONE; 6];
        let y = naive_dft(&x, Direction::Forward);
        assert!(y[0].dist(c64(6.0, 0.0)) < 1e-12);
        for v in &y[1..] {
            assert!(v.abs() < 1e-12);
        }
    }

    #[test]
    fn dft_of_single_mode() {
        // x[n] = e^{2 pi i m n / N} has forward DFT N * delta_{k,m}.
        let n = 12;
        let m = 5;
        let x: Vec<_> = (0..n)
            .map(|j| Complex64::cis(2.0 * std::f64::consts::PI * (j * m) as f64 / n as f64))
            .collect();
        let y = naive_dft(&x, Direction::Forward);
        for (k, v) in y.iter().enumerate() {
            let expect = if k == m { n as f64 } else { 0.0 };
            assert!(v.dist(c64(expect, 0.0)) < 1e-10, "k={k} got {v}");
        }
    }

    #[test]
    fn roundtrip_scales_by_n() {
        let x: Vec<_> = (0..10).map(|i| c64(i as f64, -(i as f64) / 3.0)).collect();
        let y = naive_dft(&x, Direction::Forward);
        let z = naive_dft(&y, Direction::Inverse);
        for (a, b) in x.iter().zip(&z) {
            assert!(a.scale(10.0).dist(*b) < 1e-9);
        }
    }

    #[test]
    fn parseval_holds() {
        let x: Vec<_> = (0..16)
            .map(|i| c64((i as f64).sin(), (i as f64 * 0.7).cos()))
            .collect();
        let y = naive_dft(&x, Direction::Forward);
        let ex: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let ey: f64 = y.iter().map(|v| v.norm_sqr()).sum();
        assert!((ey - 16.0 * ex).abs() < 1e-9 * ey.max(1.0));
    }

    #[test]
    fn dft3d_separable_impulse() {
        let (nx, ny, nz) = (3, 4, 2);
        let mut x = vec![Complex64::ZERO; nx * ny * nz];
        x[0] = Complex64::ONE;
        let y = naive_dft_3d(&x, nx, ny, nz, Direction::Forward);
        for v in y {
            assert!(v.dist(Complex64::ONE) < 1e-12);
        }
    }
}
