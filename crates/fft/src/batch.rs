//! Batched strided transforms mirroring FFTXlib's `fft_scalar` entry points.
//!
//! * [`cft_1z`] — many independent 1-D transforms along z over contiguous
//!   "sticks" (the per-rank pencil batch between `pack` and `scatter`).
//! * [`cft_2xy`] — 2-D transforms over whole xy planes (the per-rank slab
//!   batch after `scatter`).
//!
//! Scaling follows Quantum ESPRESSO's convention: the *forward* direction
//! (r-space → G-space) carries the normalisation — `1/nz` in `cft_1z` and
//! `1/(nx*ny)` in `cft_2xy`, so a full forward 3-D pass scales by `1/N` and
//! the backward pass is unnormalised.

use crate::complex::Complex64;
use crate::dft::Direction;
use crate::fft1d::Fft;

/// Transforms `nsl` sticks of logical length `plan.len()` stored with leading
/// dimension `ldz` (`data[s*ldz .. s*ldz + plan.len()]` is stick `s`).
///
/// Forward transforms are scaled by `1/nz`.
///
/// # Panics
/// Panics when `ldz < plan.len()` or `data` is shorter than `nsl * ldz`.
pub fn cft_1z(
    plan: &Fft,
    data: &mut [Complex64],
    nsl: usize,
    ldz: usize,
    dir: Direction,
    scratch: &mut Vec<Complex64>,
) {
    let nz = plan.len();
    assert!(ldz >= nz, "cft_1z: ldz ({ldz}) < nz ({nz})");
    assert!(
        data.len() >= nsl * ldz,
        "cft_1z: buffer too small: {} < {}",
        data.len(),
        nsl * ldz
    );
    let scale = 1.0 / nz.max(1) as f64;
    for s in 0..nsl {
        let stick = &mut data[s * ldz..s * ldz + nz];
        plan.process_with(stick, scratch, dir);
        if dir == Direction::Forward {
            for v in stick.iter_mut() {
                *v = v.scale(scale);
            }
        }
    }
}

/// Transforms `nzl` xy planes in place. Each plane occupies `ldx * ldy`
/// elements with x fastest; rows are `plan_x.len()` long, columns
/// `plan_y.len()`.
///
/// Forward transforms are scaled by `1/(nx*ny)`.
#[allow(clippy::too_many_arguments)] // mirrors QE's cft_2xy signature
pub fn cft_2xy(
    plan_x: &Fft,
    plan_y: &Fft,
    data: &mut [Complex64],
    nzl: usize,
    ldx: usize,
    ldy: usize,
    dir: Direction,
    scratch: &mut Vec<Complex64>,
) {
    let mut col = Vec::new();
    cft_2xy_buf(plan_x, plan_y, data, nzl, ldx, ldy, dir, scratch, &mut col);
}

/// [`cft_2xy`] with a caller-owned y-column gather buffer: `col` is grown
/// to `plan_y.len()` on first use and reused afterwards, so a warm caller
/// (plan + scratch + col retained across iterations) performs no heap
/// allocation per call — the plan-once/execute-many contract of the
/// execution engines' buffer arenas.
#[allow(clippy::too_many_arguments)] // mirrors QE's cft_2xy signature
pub fn cft_2xy_buf(
    plan_x: &Fft,
    plan_y: &Fft,
    data: &mut [Complex64],
    nzl: usize,
    ldx: usize,
    ldy: usize,
    dir: Direction,
    scratch: &mut Vec<Complex64>,
    col: &mut Vec<Complex64>,
) {
    let nx = plan_x.len();
    let ny = plan_y.len();
    assert!(ldx >= nx, "cft_2xy: ldx ({ldx}) < nx ({nx})");
    assert!(ldy >= ny, "cft_2xy: ldy ({ldy}) < ny ({ny})");
    let plane_len = ldx * ldy;
    assert!(
        data.len() >= nzl * plane_len,
        "cft_2xy: buffer too small: {} < {}",
        data.len(),
        nzl * plane_len
    );
    let scale = 1.0 / (nx.max(1) * ny.max(1)) as f64;
    col.clear();
    col.resize(ny, Complex64::ZERO);
    for z in 0..nzl {
        let plane = &mut data[z * plane_len..(z + 1) * plane_len];
        // Rows along x are contiguous.
        for y in 0..ny {
            plan_x.process_with(&mut plane[y * ldx..y * ldx + nx], scratch, dir);
        }
        // Columns along y are strided by ldx: gather, transform, scatter.
        for x in 0..nx {
            for (y, slot) in col.iter_mut().enumerate() {
                *slot = plane[x + y * ldx];
            }
            plan_y.process_with(col, scratch, dir);
            for (y, &v) in col.iter().enumerate() {
                plane[x + y * ldx] = v;
            }
        }
        if dir == Direction::Forward {
            for y in 0..ny {
                for v in plane[y * ldx..y * ldx + nx].iter_mut() {
                    *v = v.scale(scale);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::{c64, max_dist};
    use crate::dft::naive_dft;

    fn ramp(n: usize, seed: f64) -> Vec<Complex64> {
        (0..n)
            .map(|i| c64((i as f64 * seed).sin(), (i as f64 * seed * 0.5).cos()))
            .collect()
    }

    #[test]
    fn cft_1z_matches_per_stick_dft() {
        let nz = 12;
        let ldz = 16;
        let nsl = 5;
        let mut data = ramp(nsl * ldz, 0.41);
        let orig = data.clone();
        let plan = Fft::new(nz);
        let mut scratch = Vec::new();
        cft_1z(&plan, &mut data, nsl, ldz, Direction::Forward, &mut scratch);
        for s in 0..nsl {
            let expect: Vec<_> = naive_dft(&orig[s * ldz..s * ldz + nz], Direction::Forward)
                .into_iter()
                .map(|v| v / nz as f64)
                .collect();
            assert!(
                max_dist(&data[s * ldz..s * ldz + nz], &expect) < 1e-10,
                "stick {s}"
            );
            // Padding beyond nz must be untouched.
            assert_eq!(&data[s * ldz + nz..(s + 1) * ldz], &orig[s * ldz + nz..(s + 1) * ldz]);
        }
    }

    #[test]
    fn cft_1z_roundtrip() {
        let nz = 20;
        let nsl = 3;
        let mut data = ramp(nsl * nz, 0.7);
        let orig = data.clone();
        let plan = Fft::new(nz);
        let mut scratch = Vec::new();
        cft_1z(&plan, &mut data, nsl, nz, Direction::Forward, &mut scratch);
        cft_1z(&plan, &mut data, nsl, nz, Direction::Inverse, &mut scratch);
        assert!(max_dist(&data, &orig) < 1e-10);
    }

    #[test]
    fn cft_2xy_matches_naive_2d() {
        let (nx, ny) = (6, 4);
        let (ldx, ldy) = (8, 4);
        let mut data = ramp(ldx * ldy, 0.3);
        let orig = data.clone();
        let px = Fft::new(nx);
        let py = Fft::new(ny);
        let mut scratch = Vec::new();
        cft_2xy(&px, &py, &mut data, 1, ldx, ldy, Direction::Forward, &mut scratch);

        // Reference: rows then columns, scaled 1/(nx*ny).
        let mut expect = orig.clone();
        for y in 0..ny {
            let row = naive_dft(&expect[y * ldx..y * ldx + nx], Direction::Forward);
            expect[y * ldx..y * ldx + nx].copy_from_slice(&row);
        }
        for x in 0..nx {
            let col: Vec<_> = (0..ny).map(|y| expect[x + y * ldx]).collect();
            let out = naive_dft(&col, Direction::Forward);
            for (y, v) in out.into_iter().enumerate() {
                expect[x + y * ldx] = v;
            }
        }
        for y in 0..ny {
            for x in 0..nx {
                expect[x + y * ldx] /= (nx * ny) as f64;
            }
        }
        for y in 0..ny {
            assert!(
                max_dist(&data[y * ldx..y * ldx + nx], &expect[y * ldx..y * ldx + nx]) < 1e-10,
                "row {y}"
            );
        }
    }

    #[test]
    fn cft_2xy_multi_plane_roundtrip() {
        let (nx, ny, nzl) = (5, 6, 3);
        let mut data = ramp(nx * ny * nzl, 0.9);
        let orig = data.clone();
        let px = Fft::new(nx);
        let py = Fft::new(ny);
        let mut scratch = Vec::new();
        cft_2xy(&px, &py, &mut data, nzl, nx, ny, Direction::Forward, &mut scratch);
        cft_2xy(&px, &py, &mut data, nzl, nx, ny, Direction::Inverse, &mut scratch);
        assert!(max_dist(&data, &orig) < 1e-10);
    }

    #[test]
    #[should_panic(expected = "buffer too small")]
    fn cft_1z_checks_length() {
        let plan = Fft::new(8);
        let mut data = vec![Complex64::ZERO; 15];
        cft_1z(&plan, &mut data, 2, 8, Direction::Forward, &mut Vec::new());
    }

    #[test]
    #[should_panic(expected = "ldx")]
    fn cft_2xy_checks_ld() {
        let px = Fft::new(8);
        let py = Fft::new(4);
        let mut data = vec![Complex64::ZERO; 4 * 4];
        cft_2xy(&px, &py, &mut data, 1, 4, 4, Direction::Forward, &mut Vec::new());
    }
}
