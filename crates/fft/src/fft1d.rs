//! The public one-dimensional FFT type: picks the mixed-radix engine for
//! "direct" sizes and Bluestein otherwise, and owns no mutable state so a
//! single plan can be shared by every rank/worker thread.

use crate::bluestein::BluesteinPlan;
use crate::complex::Complex64;
use crate::dft::Direction;
use crate::kernel::MixedRadixPlan;
use crate::planner::is_direct_size;

enum Kind {
    /// Length 0 or 1: nothing to do.
    Identity,
    Direct(MixedRadixPlan),
    Bluestein(Box<BluesteinPlan>),
}

/// A reusable, thread-shareable FFT plan for one length.
pub struct Fft {
    n: usize,
    kind: Kind,
}

impl Fft {
    /// Builds a plan for length `n` (any size, including 0 and 1).
    pub fn new(n: usize) -> Self {
        let kind = if n <= 1 {
            Kind::Identity
        } else if is_direct_size(n) {
            Kind::Direct(MixedRadixPlan::new(n))
        } else {
            Kind::Bluestein(Box::new(BluesteinPlan::new(n)))
        };
        Fft { n, kind }
    }

    /// Transform length.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for the degenerate length-0 plan.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Unnormalised in-place transform reusing a caller-provided scratch
    /// buffer (grows as needed, never shrinks).
    pub fn process_with(
        &self,
        data: &mut [Complex64],
        scratch: &mut Vec<Complex64>,
        dir: Direction,
    ) {
        assert_eq!(data.len(), self.n, "Fft: buffer length mismatch");
        match &self.kind {
            Kind::Identity => {}
            Kind::Direct(p) => p.process(data, scratch, dir),
            Kind::Bluestein(p) => p.process(data, scratch, dir),
        }
    }

    /// Unnormalised in-place transform with internal scratch allocation.
    pub fn process(&self, data: &mut [Complex64], dir: Direction) {
        let mut scratch = Vec::new();
        self.process_with(data, &mut scratch, dir);
    }

    /// Forward transform (negative exponent), unnormalised.
    pub fn forward(&self, data: &mut [Complex64]) {
        self.process(data, Direction::Forward);
    }

    /// Inverse transform (positive exponent), unnormalised.
    pub fn inverse(&self, data: &mut [Complex64]) {
        self.process(data, Direction::Inverse);
    }
}

/// Multiplies every element by `s`; the explicit scaling pass QE applies on
/// r-space -> G-space transforms (`1/N`).
pub fn scale_in_place(data: &mut [Complex64], s: f64) {
    for v in data.iter_mut() {
        *v = v.scale(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::{c64, max_dist};
    use crate::dft::naive_dft;

    fn ramp(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|i| c64((i as f64 * 0.77).sin(), (i as f64 * 0.31).cos()))
            .collect()
    }

    #[test]
    fn dispatches_all_size_classes() {
        // identity, direct, bluestein
        for n in [0, 1, 2, 30, 41, 82, 120, 128] {
            let x = ramp(n);
            let plan = Fft::new(n);
            assert_eq!(plan.len(), n);
            for dir in [Direction::Forward, Direction::Inverse] {
                let expect = naive_dft(&x, dir);
                let mut data = x.clone();
                plan.process(&mut data, dir);
                assert!(
                    max_dist(&data, &expect) < 1e-8 * (n.max(1) as f64),
                    "n={n} dir={dir:?}"
                );
            }
        }
    }

    #[test]
    fn scratch_reuse_is_equivalent() {
        let n = 60;
        let x = ramp(n);
        let plan = Fft::new(n);
        let mut with_scratch = x.clone();
        let mut scratch = Vec::new();
        plan.process_with(&mut with_scratch, &mut scratch, Direction::Forward);
        // Run again with the now-dirty scratch to confirm statelessness.
        let mut second = x.clone();
        plan.process_with(&mut second, &mut scratch, Direction::Forward);
        assert!(max_dist(&with_scratch, &second) < 1e-13);
    }

    #[test]
    fn scale_in_place_works() {
        let mut v = vec![c64(2.0, -4.0); 3];
        scale_in_place(&mut v, 0.5);
        for x in v {
            assert_eq!(x, c64(1.0, -2.0));
        }
    }

    #[test]
    fn forward_inverse_convenience() {
        let n = 36;
        let x = ramp(n);
        let plan = Fft::new(n);
        let mut data = x.clone();
        plan.forward(&mut data);
        plan.inverse(&mut data);
        scale_in_place(&mut data, 1.0 / n as f64);
        assert!(max_dist(&data, &x) < 1e-10);
    }
}
