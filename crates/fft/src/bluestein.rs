//! Bluestein (chirp-z) transform for lengths with large prime factors.
//!
//! FFTXlib never produces such lengths itself (grid dimensions come from
//! `good_fft_order`), but a general-purpose FFT library must not fail on
//! them, and property tests exercise arbitrary sizes through this path.

use crate::complex::Complex64;
use crate::dft::Direction;
use crate::kernel::MixedRadixPlan;
use std::f64::consts::PI;

/// A Bluestein plan for one (arbitrary) length.
pub struct BluesteinPlan {
    n: usize,
    /// Convolution length: power of two `>= 2n - 1`.
    m: usize,
    inner: MixedRadixPlan,
    /// Forward chirp `e^{-i pi j^2 / n}` for `j in 0..n`.
    chirp: Vec<Complex64>,
    /// FFT of the (conjugate-)chirp filter, premultiplied by `1/m` so the
    /// inverse inner transform needs no extra scaling pass.
    filter_hat: Vec<Complex64>,
}

impl BluesteinPlan {
    /// Builds a plan for length `n >= 1`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "BluesteinPlan: n must be >= 1");
        let m = (2 * n - 1).next_power_of_two();
        let inner = MixedRadixPlan::new(m);
        // j^2 mod 2n keeps the phase argument bounded.
        let chirp: Vec<Complex64> = (0..n)
            .map(|j| Complex64::cis(-PI * ((j * j) % (2 * n)) as f64 / n as f64))
            .collect();
        // Filter b[j] = conj(chirp[|j|]) on the cyclic index set.
        let mut filter = vec![Complex64::ZERO; m];
        filter[0] = chirp[0].conj();
        for j in 1..n {
            let v = chirp[j].conj();
            filter[j] = v;
            filter[m - j] = v;
        }
        let mut scratch = Vec::new();
        inner.process(&mut filter, &mut scratch, Direction::Forward);
        let inv_m = 1.0 / m as f64;
        for v in filter.iter_mut() {
            *v = v.scale(inv_m);
        }
        BluesteinPlan {
            n,
            m,
            inner,
            chirp,
            filter_hat: filter,
        }
    }

    /// Transform length.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false; kept for API symmetry with the other plans.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Executes the transform in place. `scratch` grows to `2 * m`.
    pub fn process(&self, data: &mut [Complex64], scratch: &mut Vec<Complex64>, dir: Direction) {
        assert_eq!(data.len(), self.n, "BluesteinPlan: buffer length mismatch");
        match dir {
            Direction::Forward => self.forward(data, scratch),
            Direction::Inverse => {
                // X_inv(x) = conj(X_fwd(conj(x)))
                for v in data.iter_mut() {
                    *v = v.conj();
                }
                self.forward(data, scratch);
                for v in data.iter_mut() {
                    *v = v.conj();
                }
            }
        }
    }

    fn forward(&self, data: &mut [Complex64], scratch: &mut Vec<Complex64>) {
        let m = self.m;
        scratch.clear();
        scratch.resize(m, Complex64::ZERO);
        let work: &mut [Complex64] = scratch;
        // The inner plan needs its own scratch; it is allocated per call,
        // which is fine because Bluestein sizes never occur on the miniapp's
        // hot path (grid dimensions are always "good" sizes).
        let mut inner_scratch = Vec::new();
        for (w, (&x, &c)) in work.iter_mut().zip(data.iter().zip(&self.chirp)) {
            *w = x * c;
        }
        self.inner
            .process(work, &mut inner_scratch, Direction::Forward);
        for (w, &f) in work.iter_mut().zip(&self.filter_hat) {
            *w *= f;
        }
        self.inner
            .process(work, &mut inner_scratch, Direction::Inverse);
        for (out, (&w, &c)) in data.iter_mut().zip(work.iter().zip(&self.chirp)) {
            *out = w * c;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::{c64, max_dist};
    use crate::dft::naive_dft;

    fn ramp(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|i| c64((i as f64 * 0.59).sin(), (i as f64 * 0.13).cos()))
            .collect()
    }

    fn check(n: usize) {
        let x = ramp(n);
        let plan = BluesteinPlan::new(n);
        let mut scratch = Vec::new();
        for dir in [Direction::Forward, Direction::Inverse] {
            let expect = naive_dft(&x, dir);
            let mut data = x.clone();
            plan.process(&mut data, &mut scratch, dir);
            let tol = 1e-8 * (n as f64).max(1.0);
            assert!(
                max_dist(&data, &expect) < tol,
                "n={n} dir={dir:?}: err {}",
                max_dist(&data, &expect)
            );
        }
    }

    #[test]
    fn prime_sizes() {
        for n in [41, 43, 53, 59, 61, 101] {
            check(n);
        }
    }

    #[test]
    fn small_and_composite_sizes() {
        // Bluestein must also be correct for sizes the direct path covers.
        for n in [1, 2, 3, 4, 8, 12, 30] {
            check(n);
        }
    }

    #[test]
    fn composite_with_large_prime() {
        check(2 * 41);
        check(3 * 43);
    }

    #[test]
    fn roundtrip() {
        let n = 47;
        let x = ramp(n);
        let plan = BluesteinPlan::new(n);
        let mut scratch = Vec::new();
        let mut data = x.clone();
        plan.process(&mut data, &mut scratch, Direction::Forward);
        plan.process(&mut data, &mut scratch, Direction::Inverse);
        for v in data.iter_mut() {
            *v /= n as f64;
        }
        assert!(max_dist(&data, &x) < 1e-9);
    }
}
