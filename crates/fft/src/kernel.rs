//! Mixed-radix Cooley–Tukey engine.
//!
//! The plan is a recursive decimation-in-time decomposition following the
//! radix schedule from [`crate::planner::radix_schedule`]: radix-4 stages
//! first (fused pairs of 2s), then 2/3 and generic odd radices. Twiddle
//! factors are precomputed per recursion level for both directions, so one
//! plan serves forward and inverse transforms — exactly how the FFTXlib
//! reuses one `fft_scalar` plan for `fwfft`/`invfft`.

use crate::complex::Complex64;
use crate::dft::Direction;
use crate::planner::radix_schedule;
use std::f64::consts::PI;

/// One recursion level of the decomposition.
struct Stage {
    /// Transform length at this level.
    len: usize,
    /// Radix split applied at this level.
    radix: usize,
    /// `len / radix`.
    sub: usize,
    /// Forward twiddles `w(len, j*k)` for `j in 1..radix`, `k in 0..sub`,
    /// stored as `tw[(j-1)*sub + k]`.
    tw_fwd: Vec<Complex64>,
    /// Inverse twiddles (conjugates of `tw_fwd`).
    tw_inv: Vec<Complex64>,
    /// Radix-point DFT roots `w(radix, t)` for the generic butterfly,
    /// forward direction; empty for specialised radices 2/3/4.
    roots_fwd: Vec<Complex64>,
    /// Inverse roots.
    roots_inv: Vec<Complex64>,
}

/// A reusable plan for transforms of one length with only "direct" prime
/// factors (see [`crate::planner::MAX_DIRECT_PRIME`]).
pub struct MixedRadixPlan {
    n: usize,
    stages: Vec<Stage>,
    max_radix: usize,
}

impl MixedRadixPlan {
    /// Builds a plan for length `n`.
    ///
    /// # Panics
    /// Panics if `n` contains a prime factor larger than
    /// [`crate::planner::MAX_DIRECT_PRIME`]; such sizes must go through
    /// Bluestein instead.
    pub fn new(n: usize) -> Self {
        let schedule = radix_schedule(n);
        assert!(
            schedule
                .iter()
                .all(|&r| r <= crate::planner::MAX_DIRECT_PRIME || r == 4),
            "MixedRadixPlan: size {n} has a prime factor too large for direct FFT"
        );
        let mut stages = Vec::with_capacity(schedule.len());
        let mut len = n;
        for &radix in &schedule {
            let sub = len / radix;
            let mut tw_fwd = Vec::with_capacity((radix - 1) * sub);
            for j in 1..radix {
                for k in 0..sub {
                    let phase = -2.0 * PI * ((j * k) % len) as f64 / len as f64;
                    tw_fwd.push(Complex64::cis(phase));
                }
            }
            let tw_inv: Vec<_> = tw_fwd.iter().map(|w| w.conj()).collect();
            let (roots_fwd, roots_inv) = if radix > 4 {
                let rf: Vec<_> = (0..radix)
                    .map(|t| Complex64::cis(-2.0 * PI * t as f64 / radix as f64))
                    .collect();
                let ri: Vec<_> = rf.iter().map(|w| w.conj()).collect();
                (rf, ri)
            } else {
                (Vec::new(), Vec::new())
            };
            stages.push(Stage {
                len,
                radix,
                sub,
                tw_fwd,
                tw_inv,
                roots_fwd,
                roots_inv,
            });
            len = sub;
        }
        debug_assert!(len <= 1, "radix schedule did not consume all factors");
        let max_radix = schedule.iter().copied().max().unwrap_or(1);
        MixedRadixPlan {
            n,
            stages,
            max_radix,
        }
    }

    /// Transform length.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for the degenerate length-0 plan.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Executes the transform in place. `scratch` is resized to
    /// `n + max_radix` as needed (input copy plus the butterfly gather
    /// buffer); passing the same buffer across calls keeps the hot path
    /// free of heap allocation.
    pub fn process(&self, data: &mut [Complex64], scratch: &mut Vec<Complex64>, dir: Direction) {
        assert_eq!(data.len(), self.n, "MixedRadixPlan: buffer length mismatch");
        if self.n <= 1 {
            return;
        }
        let want = self.n + self.max_radix;
        if scratch.len() < want {
            scratch.resize(want, Complex64::ZERO);
        }
        let (src, gather) = scratch.split_at_mut(self.n);
        src.copy_from_slice(data);
        self.recurse(0, src, 1, data, dir, &mut gather[..self.max_radix]);
    }

    /// Recursive DIT step: reads `sub`-strided input from `src`, writes the
    /// length-`stages[idx].len` spectrum contiguously into `dst`.
    fn recurse(
        &self,
        idx: usize,
        src: &[Complex64],
        stride: usize,
        dst: &mut [Complex64],
        dir: Direction,
        gather: &mut [Complex64],
    ) {
        if idx == self.stages.len() {
            dst[0] = src[0];
            return;
        }
        let stage = &self.stages[idx];
        let r = stage.radix;
        let m = stage.sub;
        debug_assert_eq!(dst.len(), stage.len);
        if m == 1 && idx + 1 == self.stages.len() {
            // Leaf: a bare radix-r DFT of r strided points.
            for (j, g) in gather[..r].iter_mut().enumerate() {
                *g = src[j * stride];
            }
        } else {
            for j in 0..r {
                self.recurse(
                    idx + 1,
                    &src[j * stride..],
                    stride * r,
                    &mut dst[j * m..(j + 1) * m],
                    dir,
                    gather,
                );
            }
        }
        let tw = match dir {
            Direction::Forward => &stage.tw_fwd,
            Direction::Inverse => &stage.tw_inv,
        };
        let roots = match dir {
            Direction::Forward => &stage.roots_fwd,
            Direction::Inverse => &stage.roots_inv,
        };
        for k in 0..m {
            if !(m == 1 && idx + 1 == self.stages.len()) {
                gather[0] = dst[k];
                for j in 1..r {
                    gather[j] = dst[j * m + k] * tw[(j - 1) * m + k];
                }
            }
            // `gather[..r]` now holds the r inputs of the radix-r butterfly.
            match r {
                2 => {
                    let (a, b) = (gather[0], gather[1]);
                    dst[k] = a + b;
                    dst[m + k] = a - b;
                }
                3 => {
                    butterfly3(gather, dir.sign(), &mut dst[k..], m);
                }
                4 => {
                    butterfly4(gather, dir.sign(), &mut dst[k..], m);
                }
                _ => {
                    // Generic O(r^2) DFT across the gathered points.
                    for q in 0..r {
                        let mut acc = Complex64::ZERO;
                        for (j, &g) in gather[..r].iter().enumerate() {
                            acc += g * roots[(j * q) % r];
                        }
                        dst[q * m + k] = acc;
                    }
                }
            }
        }
    }
}

/// Radix-3 butterfly writing outputs at `out[0]`, `out[m]`, `out[2m]`.
#[inline]
fn butterfly3(v: &[Complex64], sign: f64, out: &mut [Complex64], m: usize) {
    const SQRT3_2: f64 = 0.866_025_403_784_438_6;
    let s = v[1] + v[2];
    let d = v[1] - v[2];
    let t = v[0] - s.scale(0.5);
    // i * sign * (sqrt(3)/2) * d
    let rot = d.mul_i().scale(sign * SQRT3_2);
    out[0] = v[0] + s;
    out[m] = t + rot;
    out[2 * m] = t - rot;
}

/// Radix-4 butterfly writing outputs at `out[0]`, `out[m]`, `out[2m]`, `out[3m]`.
#[inline]
fn butterfly4(v: &[Complex64], sign: f64, out: &mut [Complex64], m: usize) {
    let t0 = v[0] + v[2];
    let t1 = v[0] - v[2];
    let t2 = v[1] + v[3];
    // w(4,1) = e^{sign*i*pi/2} = sign * i
    let t3 = (v[1] - v[3]).mul_i().scale(sign);
    out[0] = t0 + t2;
    out[m] = t1 + t3;
    out[2 * m] = t0 - t2;
    out[3 * m] = t1 - t3;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::{c64, max_dist};
    use crate::dft::naive_dft;

    fn ramp(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|i| c64((i as f64 * 0.37).sin(), (i as f64 * 0.21).cos()))
            .collect()
    }

    fn check_against_naive(n: usize) {
        let x = ramp(n);
        let expect_f = naive_dft(&x, Direction::Forward);
        let expect_i = naive_dft(&x, Direction::Inverse);
        let plan = MixedRadixPlan::new(n);
        let mut scratch = Vec::new();

        let mut data = x.clone();
        plan.process(&mut data, &mut scratch, Direction::Forward);
        let tol = 1e-9 * (n as f64);
        assert!(
            max_dist(&data, &expect_f) < tol,
            "forward mismatch for n={n}: {}",
            max_dist(&data, &expect_f)
        );

        let mut data = x;
        plan.process(&mut data, &mut scratch, Direction::Inverse);
        assert!(
            max_dist(&data, &expect_i) < tol,
            "inverse mismatch for n={n}"
        );
    }

    #[test]
    fn power_of_two_sizes() {
        for n in [1, 2, 4, 8, 16, 32, 64, 128] {
            check_against_naive(n);
        }
    }

    #[test]
    fn composite_good_sizes() {
        for n in [3, 5, 6, 7, 9, 10, 12, 15, 20, 24, 30, 45, 60, 90, 120] {
            check_against_naive(n);
        }
    }

    #[test]
    fn sizes_with_larger_direct_primes() {
        for n in [11, 13, 17, 22, 26, 33, 37, 74] {
            check_against_naive(n);
        }
    }

    #[test]
    fn roundtrip_recovers_input() {
        for n in [8, 12, 35, 120] {
            let x = ramp(n);
            let plan = MixedRadixPlan::new(n);
            let mut scratch = Vec::new();
            let mut data = x.clone();
            plan.process(&mut data, &mut scratch, Direction::Forward);
            plan.process(&mut data, &mut scratch, Direction::Inverse);
            for v in data.iter_mut() {
                *v /= n as f64;
            }
            assert!(max_dist(&data, &x) < 1e-10, "roundtrip failed for n={n}");
        }
    }

    #[test]
    fn linearity() {
        let n = 24;
        let a = ramp(n);
        let b: Vec<_> = ramp(n).iter().map(|v| v.mul_i()).collect();
        let plan = MixedRadixPlan::new(n);
        let mut scratch = Vec::new();
        let mut fa = a.clone();
        plan.process(&mut fa, &mut scratch, Direction::Forward);
        let mut fb = b.clone();
        plan.process(&mut fb, &mut scratch, Direction::Forward);
        let mut fab: Vec<_> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        plan.process(&mut fab, &mut scratch, Direction::Forward);
        let sum: Vec<_> = fa.iter().zip(&fb).map(|(x, y)| *x + *y).collect();
        assert!(max_dist(&fab, &sum) < 1e-9);
    }

    #[test]
    #[should_panic(expected = "buffer length mismatch")]
    fn wrong_length_panics() {
        let plan = MixedRadixPlan::new(8);
        let mut data = vec![Complex64::ZERO; 7];
        plan.process(&mut data, &mut Vec::new(), Direction::Forward);
    }

    #[test]
    #[should_panic(expected = "prime factor too large")]
    fn rejects_big_primes() {
        MixedRadixPlan::new(41);
    }
}
