//! Serial dense 3-D FFT (QE's `cfft3d`), used as the single-rank reference
//! the distributed pipeline is verified against.

use crate::batch::{cft_1z, cft_2xy};
use crate::complex::Complex64;
use crate::dft::Direction;
use crate::fft1d::Fft;

/// A plan for dense 3-D grids with layout `index = x + nx*(y + ny*z)`.
pub struct Fft3 {
    nx: usize,
    ny: usize,
    nz: usize,
    plan_x: Fft,
    plan_y: Fft,
    plan_z: Fft,
}

impl Fft3 {
    /// Builds a plan for an `nx * ny * nz` grid.
    pub fn new(nx: usize, ny: usize, nz: usize) -> Self {
        Fft3 {
            nx,
            ny,
            nz,
            plan_x: Fft::new(nx),
            plan_y: Fft::new(ny),
            plan_z: Fft::new(nz),
        }
    }

    /// Grid dimensions `(nx, ny, nz)`.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    /// Total number of grid points.
    pub fn volume(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// In-place 3-D transform. Forward (r→G) is scaled by `1/(nx*ny*nz)`
    /// following the QE convention; inverse (G→r) is unnormalised.
    pub fn process(&self, data: &mut [Complex64], dir: Direction) {
        assert_eq!(data.len(), self.volume(), "Fft3: buffer length mismatch");
        let mut scratch = Vec::new();
        // xy planes first (z-major layout makes each plane contiguous) ...
        cft_2xy(
            &self.plan_x,
            &self.plan_y,
            data,
            self.nz,
            self.nx,
            self.ny,
            dir,
            &mut scratch,
        );
        // ... then z columns, which are strided by nx*ny: gather/scatter.
        let stride = self.nx * self.ny;
        let mut col = vec![Complex64::ZERO; self.nz];
        let zscale = 1.0 / self.nz.max(1) as f64;
        for xy in 0..stride {
            for (z, slot) in col.iter_mut().enumerate() {
                *slot = data[xy + z * stride];
            }
            self.plan_z.process_with(&mut col, &mut scratch, dir);
            if dir == Direction::Forward {
                for v in col.iter_mut() {
                    *v = v.scale(zscale);
                }
            }
            for (z, &v) in col.iter().enumerate() {
                data[xy + z * stride] = v;
            }
        }
    }

    /// Forward (r→G) transform, scaled by `1/N`.
    pub fn forward(&self, data: &mut [Complex64]) {
        self.process(data, Direction::Forward);
    }

    /// Inverse (G→r) transform, unnormalised.
    pub fn inverse(&self, data: &mut [Complex64]) {
        self.process(data, Direction::Inverse);
    }

    /// Batched 1-D transforms along z for `nsl` contiguous sticks; see
    /// [`crate::batch::cft_1z`].
    pub fn z_sticks(
        &self,
        data: &mut [Complex64],
        nsl: usize,
        ldz: usize,
        dir: Direction,
        scratch: &mut Vec<Complex64>,
    ) {
        cft_1z(&self.plan_z, data, nsl, ldz, dir, scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::{c64, max_dist};
    use crate::dft::naive_dft_3d;

    fn ramp(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|i| c64((i as f64 * 0.17).sin(), (i as f64 * 0.23).cos()))
            .collect()
    }

    #[test]
    fn matches_naive_3d_forward() {
        let (nx, ny, nz) = (4, 3, 5);
        let x = ramp(nx * ny * nz);
        let plan = Fft3::new(nx, ny, nz);
        let mut data = x.clone();
        plan.forward(&mut data);
        let mut expect = naive_dft_3d(&x, nx, ny, nz, Direction::Forward);
        let n = (nx * ny * nz) as f64;
        for v in expect.iter_mut() {
            *v = v.scale(1.0 / n);
        }
        assert!(max_dist(&data, &expect) < 1e-10);
    }

    #[test]
    fn matches_naive_3d_inverse() {
        let (nx, ny, nz) = (3, 4, 2);
        let x = ramp(nx * ny * nz);
        let plan = Fft3::new(nx, ny, nz);
        let mut data = x.clone();
        plan.inverse(&mut data);
        let expect = naive_dft_3d(&x, nx, ny, nz, Direction::Inverse);
        assert!(max_dist(&data, &expect) < 1e-10);
    }

    #[test]
    fn qe_convention_roundtrip_is_identity() {
        // inverse(forward(x)) == x exactly because forward carries the 1/N.
        let (nx, ny, nz) = (6, 5, 4);
        let x = ramp(nx * ny * nz);
        let plan = Fft3::new(nx, ny, nz);
        let mut data = x.clone();
        plan.forward(&mut data);
        plan.inverse(&mut data);
        assert!(max_dist(&data, &x) < 1e-10);
    }

    #[test]
    fn good_grid_size_roundtrip() {
        let (nx, ny, nz) = (12, 12, 12);
        let x = ramp(nx * ny * nz);
        let plan = Fft3::new(nx, ny, nz);
        assert_eq!(plan.dims(), (12, 12, 12));
        assert_eq!(plan.volume(), 1728);
        let mut data = x.clone();
        plan.inverse(&mut data);
        plan.forward(&mut data);
        assert!(max_dist(&data, &x) < 1e-10);
    }
}
