//! Floating-point operation counts for the transforms in this crate.
//!
//! The KNL simulator converts these counts into instruction streams; they
//! only need to be *consistent* across sizes (relative weights of the Z-FFT,
//! XY-FFT and point-wise phases), not cycle-exact. Counts are derived from
//! the actual work the mixed-radix engine performs.

use crate::planner::{is_direct_size, radix_schedule};

/// Flops of one radix-`r` butterfly (complex adds count 2, complex
/// multiplies 6).
fn butterfly_flops(r: usize) -> f64 {
    match r {
        2 => 4.0,                  // 2 complex adds
        3 => 6.0 * 2.0 + 2.0 * 2.0, // optimised 3-point kernel
        4 => 8.0 * 2.0,            // 8 complex adds
        // Generic O(r^2) kernel: r^2 complex multiply-adds.
        r => (r * r) as f64 * 8.0,
    }
}

/// Flops of one unnormalised 1-D FFT of length `n`.
pub fn fft_flops(n: usize) -> f64 {
    if n <= 1 {
        return 0.0;
    }
    if is_direct_size(n) {
        let mut total = 0.0;
        let mut len = n;
        for r in radix_schedule(n) {
            let m = len / r;
            // n/len instances of this level, each with m combine iterations.
            let combines = (n / len) as f64 * m as f64;
            // (r-1) twiddle multiplies (6 flops) plus the butterfly.
            total += combines * ((r - 1) as f64 * 6.0 + butterfly_flops(r));
            len = m;
        }
        total
    } else {
        // Bluestein: three inner FFTs of length m plus three point-wise
        // complex multiply passes.
        let m = (2 * n - 1).next_power_of_two();
        3.0 * fft_flops(m) + 6.0 * (2.0 * n as f64 + m as f64)
    }
}

/// Flops of `count` independent 1-D FFTs of length `n` (the Z-stick batch).
pub fn fft_z_batch_flops(n: usize, count: usize) -> f64 {
    count as f64 * fft_flops(n)
}

/// Flops of one 2-D `nx * ny` FFT (rows along x, columns along y).
pub fn fft_2d_flops(nx: usize, ny: usize) -> f64 {
    ny as f64 * fft_flops(nx) + nx as f64 * fft_flops(ny)
}

/// Flops of `planes` xy-plane transforms (the slab batch).
pub fn fft_xy_batch_flops(nx: usize, ny: usize, planes: usize) -> f64 {
    planes as f64 * fft_2d_flops(nx, ny)
}

/// Flops of a dense 3-D FFT.
pub fn fft_3d_flops(nx: usize, ny: usize, nz: usize) -> f64 {
    fft_xy_batch_flops(nx, ny, nz) + fft_z_batch_flops(nz, nx * ny)
}

/// Flops of a point-wise complex multiply over `n` points (the VOFR step:
/// psi(r) *= V(r)).
pub fn pointwise_mul_flops(n: usize) -> f64 {
    6.0 * n as f64
}

/// "Flops"-equivalent cost of moving `n` complex values through a pack /
/// unpack / scatter copy loop (2 loads + 2 stores per point, weighted as 4).
pub fn copy_flops(n: usize) -> f64 {
    4.0 * n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_for_trivial_sizes() {
        assert_eq!(fft_flops(0), 0.0);
        assert_eq!(fft_flops(1), 0.0);
    }

    #[test]
    fn close_to_5nlogn_for_powers_of_two() {
        for n in [64usize, 256, 1024] {
            let ref_count = 5.0 * n as f64 * (n as f64).log2();
            let got = fft_flops(n);
            let ratio = got / ref_count;
            // Radix-4 makes us cheaper than the radix-2 textbook count, but
            // within a small constant factor.
            assert!(
                (0.5..1.5).contains(&ratio),
                "n={n}: got {got}, 5nlogn {ref_count}, ratio {ratio}"
            );
        }
    }

    #[test]
    fn monotone_along_doubling_chain() {
        // FFT cost is not monotone across arbitrary neighbouring sizes (a
        // radix-5 stage costs more per point than radix-4), but doubling a
        // size must always cost more than twice as much.
        for base in [3usize, 4, 5, 6, 15] {
            let mut n = base;
            for _ in 0..5 {
                assert!(
                    fft_flops(2 * n) > 2.0 * fft_flops(n),
                    "doubling {n} did not increase per-point cost"
                );
                n *= 2;
            }
        }
    }

    #[test]
    fn bluestein_costs_more_than_direct_neighbour() {
        assert!(fft_flops(41) > fft_flops(40));
        assert!(fft_flops(41) > fft_flops(45));
    }

    #[test]
    fn composite_counts_compose() {
        let (nx, ny, nz) = (12, 10, 8);
        assert_eq!(
            fft_3d_flops(nx, ny, nz),
            fft_xy_batch_flops(nx, ny, nz) + fft_z_batch_flops(nz, nx * ny)
        );
        assert_eq!(fft_2d_flops(4, 6), 6.0 * fft_flops(4) + 4.0 * fft_flops(6));
        assert_eq!(fft_z_batch_flops(16, 10), 10.0 * fft_flops(16));
    }

    #[test]
    fn pointwise_and_copy_scale_linearly() {
        assert_eq!(pointwise_mul_flops(10) * 2.0, pointwise_mul_flops(20));
        assert_eq!(copy_flops(10) * 3.0, copy_flops(30));
    }
}
