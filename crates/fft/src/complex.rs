//! Minimal double-precision complex arithmetic.
//!
//! The workspace deliberately avoids external numeric crates; everything the
//! FFT engine and the plane-wave machinery need from a complex type lives
//! here. The layout is `repr(C)` so a `&[Complex64]` can be reinterpreted as
//! an interleaved re/im buffer when exchanging data through the virtual MPI
//! layer.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// Shorthand constructor, mirroring `num_complex::Complex64::new`.
#[inline]
pub const fn c64(re: f64, im: f64) -> Complex64 {
    Complex64 { re, im }
}

impl Complex64 {
    /// The additive identity.
    pub const ZERO: Complex64 = c64(0.0, 0.0);
    /// The multiplicative identity.
    pub const ONE: Complex64 = c64(1.0, 0.0);
    /// The imaginary unit.
    pub const I: Complex64 = c64(0.0, 1.0);

    /// Creates a new complex number.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        c64(re, im)
    }

    /// Builds `r * e^{i theta}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        c64(r * theta.cos(), r * theta.sin())
    }

    /// `e^{i theta}` — a point on the unit circle.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        c64(self.re, -self.im)
    }

    /// Squared magnitude `re^2 + im^2`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument in `(-pi, pi]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        c64(self.re * s, self.im * s)
    }

    /// Multiplication by `i` without a full complex multiply.
    #[inline]
    pub fn mul_i(self) -> Self {
        c64(-self.im, self.re)
    }

    /// Multiplication by `-i` without a full complex multiply.
    #[inline]
    pub fn mul_neg_i(self) -> Self {
        c64(self.im, -self.re)
    }

    /// Complex exponential `e^{self}`.
    #[inline]
    pub fn exp(self) -> Self {
        Self::from_polar(self.re.exp(), self.im)
    }

    /// Multiplicative inverse. Returns NaNs for zero, like `1.0 / 0.0`.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        c64(self.re / d, -self.im / d)
    }

    /// True when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Absolute distance to `other`; convenient for test tolerances.
    #[inline]
    pub fn dist(self, other: Self) -> f64 {
        (self - other).abs()
    }
}

impl Add for Complex64 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        c64(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        c64(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        c64(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Mul<f64> for Complex64 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        self.scale(rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl Div for Complex64 {
    type Output = Self;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w == z * w^-1
    fn div(self, rhs: Self) -> Self {
        self * rhs.inv()
    }
}

impl Div<f64> for Complex64 {
    type Output = Self;
    #[inline]
    fn div(self, rhs: f64) -> Self {
        c64(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex64 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        c64(-self.re, -self.im)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl MulAssign<f64> for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: f64) {
        self.re *= rhs;
        self.im *= rhs;
    }
}

impl DivAssign<f64> for Complex64 {
    #[inline]
    fn div_assign(&mut self, rhs: f64) {
        self.re /= rhs;
        self.im /= rhs;
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |a, b| a + b)
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        c64(re, 0.0)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

/// Lets `Complex64` buffers travel through the checksummed alltoall family
/// of `fftx-vmpi`. The element is 128 bits, so the 64-bit wire image folds
/// the two halves through a splitmix finalizer with distinct salts — a
/// single-bit flip in either component (or a re/im swap) changes the image
/// with overwhelming probability.
impl fftx_vmpi::Checksum for Complex64 {
    fn image(&self) -> u64 {
        #[inline]
        fn mix(mut z: u64) -> u64 {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        mix(self.re.to_bits() ^ 0xA076_1D64_78BD_642F)
            .wrapping_add(mix(self.im.to_bits() ^ 0xE703_7ED1_A0B4_28DB))
    }

    fn flip_bit(&mut self, bit: u32) {
        // Bits 0–63 strike the real part, 64–127 the imaginary part.
        let b = bit % 128;
        if b < 64 {
            fftx_vmpi::Checksum::flip_bit(&mut self.re, b);
        } else {
            fftx_vmpi::Checksum::flip_bit(&mut self.im, b - 64);
        }
    }
}

/// Maximum absolute component-wise deviation between two complex slices.
pub fn max_dist(a: &[Complex64], b: &[Complex64]) -> f64 {
    assert_eq!(a.len(), b.len(), "max_dist: length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| x.dist(*y))
        .fold(0.0_f64, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    const EPS: f64 = 1e-12;

    #[test]
    fn constructors_and_constants() {
        assert_eq!(Complex64::ZERO, c64(0.0, 0.0));
        assert_eq!(Complex64::ONE, c64(1.0, 0.0));
        assert_eq!(Complex64::I, c64(0.0, 1.0));
        assert_eq!(Complex64::new(1.5, -2.5), c64(1.5, -2.5));
        assert_eq!(Complex64::from(3.0), c64(3.0, 0.0));
    }

    #[test]
    fn arithmetic_identities() {
        let a = c64(1.0, 2.0);
        let b = c64(-3.0, 0.5);
        assert_eq!(a + b, c64(-2.0, 2.5));
        assert_eq!(a - b, c64(4.0, 1.5));
        // (1+2i)(-3+0.5i) = -3 + 0.5i - 6i + i^2 = -4 - 5.5i
        assert_eq!(a * b, c64(-4.0, -5.5));
        assert_eq!(-a, c64(-1.0, -2.0));
        assert!((a / a).dist(Complex64::ONE) < EPS);
        assert!((a * a.inv()).dist(Complex64::ONE) < EPS);
    }

    #[test]
    fn assign_ops() {
        let mut a = c64(1.0, 1.0);
        a += c64(1.0, 0.0);
        assert_eq!(a, c64(2.0, 1.0));
        a -= c64(0.0, 1.0);
        assert_eq!(a, c64(2.0, 0.0));
        a *= c64(0.0, 1.0);
        assert_eq!(a, c64(0.0, 2.0));
        a *= 2.0;
        assert_eq!(a, c64(0.0, 4.0));
        a /= 4.0;
        assert_eq!(a, c64(0.0, 1.0));
    }

    #[test]
    fn polar_and_exp() {
        let z = Complex64::from_polar(2.0, PI / 2.0);
        assert!(z.dist(c64(0.0, 2.0)) < EPS);
        assert!((Complex64::cis(PI)).dist(c64(-1.0, 0.0)) < EPS);
        // e^{i pi} = -1
        let e = c64(0.0, PI).exp();
        assert!(e.dist(c64(-1.0, 0.0)) < EPS);
        // |e^{x+iy}| = e^x
        let e2 = c64(1.0, 0.3).exp();
        assert!((e2.abs() - 1.0_f64.exp()).abs() < EPS);
    }

    #[test]
    fn conj_norm_arg() {
        let a = c64(3.0, -4.0);
        assert_eq!(a.conj(), c64(3.0, 4.0));
        assert_eq!(a.norm_sqr(), 25.0);
        assert_eq!(a.abs(), 5.0);
        assert!((c64(0.0, 1.0).arg() - PI / 2.0).abs() < EPS);
        assert!((a * a.conj()).dist(c64(25.0, 0.0)) < EPS);
    }

    #[test]
    fn mul_i_shortcuts() {
        let a = c64(1.25, -0.5);
        assert_eq!(a.mul_i(), a * Complex64::I);
        assert_eq!(a.mul_neg_i(), a * c64(0.0, -1.0));
    }

    #[test]
    fn sum_and_scale() {
        let v = [c64(1.0, 1.0), c64(2.0, -1.0), c64(-0.5, 0.25)];
        let s: Complex64 = v.iter().copied().sum();
        assert!(s.dist(c64(2.5, 0.25)) < EPS);
        assert_eq!(c64(1.0, -2.0).scale(2.0), c64(2.0, -4.0));
        assert_eq!(2.0 * c64(1.0, -2.0), c64(2.0, -4.0));
        assert_eq!(c64(2.0, -4.0) / 2.0, c64(1.0, -2.0));
    }

    #[test]
    fn max_dist_reports_worst_pair() {
        let a = [c64(0.0, 0.0), c64(1.0, 0.0)];
        let b = [c64(0.0, 0.1), c64(1.0, 0.0)];
        assert!((max_dist(&a, &b) - 0.1).abs() < EPS);
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(format!("{}", c64(1.0, 2.0)), "1+2i");
        assert_eq!(format!("{}", c64(1.0, -2.0)), "1-2i");
    }

    #[test]
    fn checksum_image_separates_components_and_flips_both_halves() {
        use fftx_vmpi::Checksum;
        let a = c64(1.0, 2.0);
        assert_eq!(a.image(), c64(1.0, 2.0).image(), "image is pure");
        assert_ne!(a.image(), c64(2.0, 1.0).image(), "re/im swap must differ");
        // Every bit of either component changes the image, and flips are
        // involutions.
        for bit in 0..128 {
            let mut z = c64(0.5, -3.25);
            z.flip_bit(bit);
            assert_ne!(z.image(), c64(0.5, -3.25).image(), "bit {bit}");
            assert_ne!(z, c64(0.5, -3.25));
            z.flip_bit(bit);
            assert_eq!(z, c64(0.5, -3.25));
        }
        // Bit 64 strikes the imaginary part, bit 0 the real part.
        let mut z = Complex64::ZERO;
        z.flip_bit(64);
        assert_eq!(z.re, 0.0);
        assert_ne!(z.im.to_bits(), 0);
    }
}
