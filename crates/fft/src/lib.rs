//! # fftx-fft
//!
//! From-scratch FFT engine for the FFTXlib-on-KNL reproduction: complex
//! arithmetic, a mixed-radix Cooley–Tukey kernel with specialised 2/3/4
//! butterflies, Bluestein for arbitrary lengths, the batched strided entry
//! points FFTXlib's `fft_scalar` module exposes (`cft_1z`, `cft_2xy`), a
//! dense 3-D reference transform, and an operation-count model feeding the
//! KNL simulator.
//!
//! Conventions (matching Quantum ESPRESSO):
//! * `Direction::Forward` = negative exponent = r-space → G-space, and the
//!   batched/3-D wrappers scale it by `1/N`;
//! * `Direction::Inverse` = positive exponent = G-space → r-space,
//!   unnormalised.

#![warn(missing_docs)]

pub mod batch;
pub mod bluestein;
pub mod cache;
pub mod complex;
pub mod dft;
pub mod fft1d;
pub mod fft3d;
pub mod kernel;
pub mod opcount;
pub mod planner;

pub use batch::{cft_1z, cft_2xy, cft_2xy_buf};
pub use cache::cached_plan;
pub use complex::{c64, max_dist, Complex64};
pub use dft::{naive_dft, naive_dft_3d, Direction};
pub use fft1d::{scale_in_place, Fft};
pub use fft3d::Fft3;
pub use planner::{good_fft_order, is_good_size};
