//! Process-wide FFT plan cache.
//!
//! Building an [`Fft`] derives twiddle tables (and, for Bluestein sizes, a
//! whole convolution sub-plan) — work that FFTW-style libraries do once per
//! size in `plan` and reuse in every `execute`. The execution engines call
//! the pipeline thousands of times on a handful of sizes (nr1, nr2, nr3),
//! so plans are interned here: the first request for a size pays the
//! construction cost, every later request — from any rank thread or task
//! worker — shares the same immutable plan.
//!
//! [`Fft::process_with`] takes `&self`, so one cached plan is safely used
//! by many threads concurrently; per-call state lives in the caller's
//! scratch buffer.

use crate::fft1d::Fft;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

static CACHE: OnceLock<Mutex<HashMap<usize, Arc<Fft>>>> = OnceLock::new();

/// Returns the shared plan for length `n`, constructing and interning it on
/// first use.
pub fn cached_plan(n: usize) -> Arc<Fft> {
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().unwrap_or_else(|e| e.into_inner());
    Arc::clone(map.entry(n).or_insert_with(|| Arc::new(Fft::new(n))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::{c64, max_dist};
    use crate::dft::{naive_dft, Direction};

    #[test]
    fn cached_plans_are_shared_per_size() {
        let a = cached_plan(24);
        let b = cached_plan(24);
        assert!(Arc::ptr_eq(&a, &b), "same size must intern to one plan");
        let c = cached_plan(25);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(a.len(), 24);
        assert_eq!(c.len(), 25);
    }

    #[test]
    fn cached_plan_transforms_like_a_fresh_one() {
        let plan = cached_plan(12);
        let mut data: Vec<_> = (0..12).map(|i| c64(i as f64, -(i as f64))).collect();
        let expect = naive_dft(&data, Direction::Forward);
        let mut scratch = Vec::new();
        plan.process_with(&mut data, &mut scratch, Direction::Forward);
        assert!(max_dist(&data, &expect) < 1e-10);
    }

    #[test]
    fn cached_plans_are_thread_safe() {
        let handles: Vec<_> = (0..8)
            .map(|t| {
                std::thread::spawn(move || {
                    let plan = cached_plan(16 + (t % 3));
                    let mut data = vec![c64(1.0, 0.0); plan.len()];
                    let mut scratch = Vec::new();
                    plan.process_with(&mut data, &mut scratch, Direction::Forward);
                    data[0]
                })
            })
            .collect();
        for h in handles {
            h.join().expect("no panics");
        }
    }
}
