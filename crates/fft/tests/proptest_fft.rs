//! Property-based tests for the FFT engine: every size class against the
//! naive DFT oracle, plus algebraic invariants (round trip, linearity,
//! Parseval, shift theorem).

use fftx_fft::complex::{c64, max_dist, Complex64};
use fftx_fft::dft::{naive_dft, Direction};
use fftx_fft::fft1d::{scale_in_place, Fft};
use fftx_fft::planner::{factorize, good_fft_order, is_good_size};
use proptest::prelude::*;

fn complex_vec(n: usize) -> impl Strategy<Value = Vec<Complex64>> {
    proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), n..=n)
        .prop_map(|v| v.into_iter().map(|(re, im)| c64(re, im)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fft_matches_naive_dft(n in 1usize..200, seed in 0u64..1000) {
        let x: Vec<Complex64> = (0..n)
            .map(|i| {
                let t = (i as u64).wrapping_mul(seed.wrapping_add(1)) as f64;
                c64((t * 0.001).sin(), (t * 0.0007).cos())
            })
            .collect();
        let plan = Fft::new(n);
        for dir in [Direction::Forward, Direction::Inverse] {
            let expect = naive_dft(&x, dir);
            let mut data = x.clone();
            plan.process(&mut data, dir);
            prop_assert!(max_dist(&data, &expect) < 1e-7 * n as f64,
                "n={n} dir={dir:?} err={}", max_dist(&data, &expect));
        }
    }

    #[test]
    fn roundtrip_identity(x in (1usize..256).prop_flat_map(complex_vec)) {
        let n = x.len();
        let plan = Fft::new(n);
        let mut data = x.clone();
        plan.forward(&mut data);
        plan.inverse(&mut data);
        scale_in_place(&mut data, 1.0 / n as f64);
        prop_assert!(max_dist(&data, &x) < 1e-8);
    }

    #[test]
    fn linearity(pair in (2usize..128).prop_flat_map(|n| (complex_vec(n), complex_vec(n))),
                 a in -2.0f64..2.0) {
        let (x, y) = pair;
        let n = x.len();
        let plan = Fft::new(n);
        let mut fx = x.clone();
        plan.forward(&mut fx);
        let mut fy = y.clone();
        plan.forward(&mut fy);
        let mut fz: Vec<Complex64> = x.iter().zip(&y).map(|(u, v)| u.scale(a) + *v).collect();
        plan.forward(&mut fz);
        let combined: Vec<Complex64> = fx.iter().zip(&fy).map(|(u, v)| u.scale(a) + *v).collect();
        prop_assert!(max_dist(&fz, &combined) < 1e-8 * n as f64);
    }

    #[test]
    fn parseval(x in (2usize..128).prop_flat_map(complex_vec)) {
        let n = x.len();
        let plan = Fft::new(n);
        let mut fx = x.clone();
        plan.forward(&mut fx);
        let e_time: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let e_freq: f64 = fx.iter().map(|v| v.norm_sqr()).sum();
        // Unnormalised forward: sum |X|^2 = n * sum |x|^2.
        prop_assert!((e_freq - n as f64 * e_time).abs() < 1e-7 * (e_freq.abs() + 1.0));
    }

    #[test]
    fn circular_shift_theorem(x in (4usize..96).prop_flat_map(complex_vec), s in 0usize..96) {
        let n = x.len();
        let s = s % n;
        let plan = Fft::new(n);
        let mut fx = x.clone();
        plan.forward(&mut fx);
        let shifted: Vec<Complex64> = (0..n).map(|i| x[(i + s) % n]).collect();
        let mut fshift = shifted;
        plan.forward(&mut fshift);
        // DFT(x[(i+s) mod n])[k] = X[k] * e^{-2 pi i (-s) k / n}^{-1} — with
        // the forward sign convention, shift by +s multiplies by e^{+2pi i s k/n}.
        for k in 0..n {
            let w = Complex64::cis(2.0 * std::f64::consts::PI * ((s * k) % n) as f64 / n as f64);
            let expect = fx[k] * w;
            prop_assert!(fshift[k].dist(expect) < 1e-7 * n as f64,
                "k={k} s={s} n={n}");
        }
    }

    #[test]
    fn factorize_is_sound(n in 2usize..100_000) {
        let f = factorize(n);
        prop_assert_eq!(f.iter().product::<usize>(), n);
        for w in f.windows(2) {
            prop_assert!(w[0] <= w[1], "factors not sorted");
        }
        for &p in &f {
            // Each reported factor is prime.
            prop_assert!((2..p).take_while(|d| d * d <= p).all(|d| p % d != 0));
        }
    }

    #[test]
    fn good_fft_order_is_minimal_good(n in 1usize..5000) {
        let g = good_fft_order(n);
        prop_assert!(g >= n);
        prop_assert!(is_good_size(g));
        for m in n..g {
            prop_assert!(!is_good_size(m), "{m} was good but skipped");
        }
    }
}
