/root/repo/target/debug/deps/verify_taskmodes-3cdd4a7ff22cf46f.d: crates/core/tests/verify_taskmodes.rs

/root/repo/target/debug/deps/verify_taskmodes-3cdd4a7ff22cf46f: crates/core/tests/verify_taskmodes.rs

crates/core/tests/verify_taskmodes.rs:
