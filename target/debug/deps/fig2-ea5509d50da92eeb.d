/root/repo/target/debug/deps/fig2-ea5509d50da92eeb.d: crates/bench/src/bin/fig2.rs

/root/repo/target/debug/deps/fig2-ea5509d50da92eeb: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
