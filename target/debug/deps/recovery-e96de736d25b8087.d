/root/repo/target/debug/deps/recovery-e96de736d25b8087.d: crates/bench/src/bin/recovery.rs

/root/repo/target/debug/deps/recovery-e96de736d25b8087: crates/bench/src/bin/recovery.rs

crates/bench/src/bin/recovery.rs:
