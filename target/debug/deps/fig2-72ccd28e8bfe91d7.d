/root/repo/target/debug/deps/fig2-72ccd28e8bfe91d7.d: crates/bench/src/bin/fig2.rs

/root/repo/target/debug/deps/fig2-72ccd28e8bfe91d7: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
