/root/repo/target/debug/deps/fftx-f6422c7315507aaf.d: src/bin/fftx.rs Cargo.toml

/root/repo/target/debug/deps/libfftx-f6422c7315507aaf.rmeta: src/bin/fftx.rs Cargo.toml

src/bin/fftx.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
