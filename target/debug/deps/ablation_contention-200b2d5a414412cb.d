/root/repo/target/debug/deps/ablation_contention-200b2d5a414412cb.d: crates/bench/src/bin/ablation_contention.rs

/root/repo/target/debug/deps/ablation_contention-200b2d5a414412cb: crates/bench/src/bin/ablation_contention.rs

crates/bench/src/bin/ablation_contention.rs:
