/root/repo/target/debug/deps/resilience-9fe697b90b6a83a6.d: crates/bench/src/bin/resilience.rs Cargo.toml

/root/repo/target/debug/deps/libresilience-9fe697b90b6a83a6.rmeta: crates/bench/src/bin/resilience.rs Cargo.toml

crates/bench/src/bin/resilience.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
