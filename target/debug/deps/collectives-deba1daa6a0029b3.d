/root/repo/target/debug/deps/collectives-deba1daa6a0029b3.d: crates/bench/benches/collectives.rs Cargo.toml

/root/repo/target/debug/deps/libcollectives-deba1daa6a0029b3.rmeta: crates/bench/benches/collectives.rs Cargo.toml

crates/bench/benches/collectives.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
