/root/repo/target/debug/deps/proptest_steps-f5d3294196e566b3.d: crates/core/tests/proptest_steps.rs

/root/repo/target/debug/deps/proptest_steps-f5d3294196e566b3: crates/core/tests/proptest_steps.rs

crates/core/tests/proptest_steps.rs:
