/root/repo/target/debug/deps/modeled_pipeline-27a9a3e4728976ee.d: tests/modeled_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libmodeled_pipeline-27a9a3e4728976ee.rmeta: tests/modeled_pipeline.rs Cargo.toml

tests/modeled_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
