/root/repo/target/debug/deps/hardening-662b452e4d045e74.d: crates/taskrt/tests/hardening.rs Cargo.toml

/root/repo/target/debug/deps/libhardening-662b452e4d045e74.rmeta: crates/taskrt/tests/hardening.rs Cargo.toml

crates/taskrt/tests/hardening.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
