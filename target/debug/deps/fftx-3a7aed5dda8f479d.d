/root/repo/target/debug/deps/fftx-3a7aed5dda8f479d.d: src/bin/fftx.rs Cargo.toml

/root/repo/target/debug/deps/libfftx-3a7aed5dda8f479d.rmeta: src/bin/fftx.rs Cargo.toml

src/bin/fftx.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
