/root/repo/target/debug/deps/fftx-aa8200d9ad32ab7e.d: src/bin/fftx.rs

/root/repo/target/debug/deps/fftx-aa8200d9ad32ab7e: src/bin/fftx.rs

src/bin/fftx.rs:
