/root/repo/target/debug/deps/fftx_taskrt-4a323ffbb1588c69.d: crates/taskrt/src/lib.rs crates/taskrt/src/error.rs crates/taskrt/src/handle.rs crates/taskrt/src/runtime.rs Cargo.toml

/root/repo/target/debug/deps/libfftx_taskrt-4a323ffbb1588c69.rmeta: crates/taskrt/src/lib.rs crates/taskrt/src/error.rs crates/taskrt/src/handle.rs crates/taskrt/src/runtime.rs Cargo.toml

crates/taskrt/src/lib.rs:
crates/taskrt/src/error.rs:
crates/taskrt/src/handle.rs:
crates/taskrt/src/runtime.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
