/root/repo/target/debug/deps/future_overlap-9be85b7919bd6848.d: crates/bench/src/bin/future_overlap.rs Cargo.toml

/root/repo/target/debug/deps/libfuture_overlap-9be85b7919bd6848.rmeta: crates/bench/src/bin/future_overlap.rs Cargo.toml

crates/bench/src/bin/future_overlap.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
