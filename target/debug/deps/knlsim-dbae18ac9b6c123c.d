/root/repo/target/debug/deps/knlsim-dbae18ac9b6c123c.d: crates/bench/benches/knlsim.rs Cargo.toml

/root/repo/target/debug/deps/libknlsim-dbae18ac9b6c123c.rmeta: crates/bench/benches/knlsim.rs Cargo.toml

crates/bench/benches/knlsim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
