/root/repo/target/debug/deps/fftx_bench-7e8359d1e6a9296a.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfftx_bench-7e8359d1e6a9296a.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
