/root/repo/target/debug/deps/nonblocking-058d853068cbcd6c.d: crates/vmpi/tests/nonblocking.rs

/root/repo/target/debug/deps/nonblocking-058d853068cbcd6c: crates/vmpi/tests/nonblocking.rs

crates/vmpi/tests/nonblocking.rs:
