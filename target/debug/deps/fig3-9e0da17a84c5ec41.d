/root/repo/target/debug/deps/fig3-9e0da17a84c5ec41.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-9e0da17a84c5ec41: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
