/root/repo/target/debug/deps/proptest_chaos-c311c3829b832524.d: crates/core/tests/proptest_chaos.rs

/root/repo/target/debug/deps/proptest_chaos-c311c3829b832524: crates/core/tests/proptest_chaos.rs

crates/core/tests/proptest_chaos.rs:
