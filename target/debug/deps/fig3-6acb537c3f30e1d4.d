/root/repo/target/debug/deps/fig3-6acb537c3f30e1d4.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-6acb537c3f30e1d4: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
