/root/repo/target/debug/deps/fftx_fft-6988482d0cad8e63.d: crates/fft/src/lib.rs crates/fft/src/batch.rs crates/fft/src/bluestein.rs crates/fft/src/cache.rs crates/fft/src/complex.rs crates/fft/src/dft.rs crates/fft/src/fft1d.rs crates/fft/src/fft3d.rs crates/fft/src/kernel.rs crates/fft/src/opcount.rs crates/fft/src/planner.rs

/root/repo/target/debug/deps/fftx_fft-6988482d0cad8e63: crates/fft/src/lib.rs crates/fft/src/batch.rs crates/fft/src/bluestein.rs crates/fft/src/cache.rs crates/fft/src/complex.rs crates/fft/src/dft.rs crates/fft/src/fft1d.rs crates/fft/src/fft3d.rs crates/fft/src/kernel.rs crates/fft/src/opcount.rs crates/fft/src/planner.rs

crates/fft/src/lib.rs:
crates/fft/src/batch.rs:
crates/fft/src/bluestein.rs:
crates/fft/src/cache.rs:
crates/fft/src/complex.rs:
crates/fft/src/dft.rs:
crates/fft/src/fft1d.rs:
crates/fft/src/fft3d.rs:
crates/fft/src/kernel.rs:
crates/fft/src/opcount.rs:
crates/fft/src/planner.rs:
