/root/repo/target/debug/deps/verify_taskmodes-34eb2065a84f974a.d: crates/core/tests/verify_taskmodes.rs Cargo.toml

/root/repo/target/debug/deps/libverify_taskmodes-34eb2065a84f974a.rmeta: crates/core/tests/verify_taskmodes.rs Cargo.toml

crates/core/tests/verify_taskmodes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
