/root/repo/target/debug/deps/table1-b7c9539d134b6623.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-b7c9539d134b6623: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
