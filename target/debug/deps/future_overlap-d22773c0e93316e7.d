/root/repo/target/debug/deps/future_overlap-d22773c0e93316e7.d: crates/bench/src/bin/future_overlap.rs

/root/repo/target/debug/deps/future_overlap-d22773c0e93316e7: crates/bench/src/bin/future_overlap.rs

crates/bench/src/bin/future_overlap.rs:
