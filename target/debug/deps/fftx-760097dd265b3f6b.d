/root/repo/target/debug/deps/fftx-760097dd265b3f6b.d: src/bin/fftx.rs

/root/repo/target/debug/deps/fftx-760097dd265b3f6b: src/bin/fftx.rs

src/bin/fftx.rs:
