/root/repo/target/debug/deps/fftx_bench-8cbeca99bd8c4771.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/fftx_bench-8cbeca99bd8c4771: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
