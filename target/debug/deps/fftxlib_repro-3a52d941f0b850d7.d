/root/repo/target/debug/deps/fftxlib_repro-3a52d941f0b850d7.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfftxlib_repro-3a52d941f0b850d7.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
