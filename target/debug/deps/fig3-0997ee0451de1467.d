/root/repo/target/debug/deps/fig3-0997ee0451de1467.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-0997ee0451de1467: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
