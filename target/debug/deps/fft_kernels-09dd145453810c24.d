/root/repo/target/debug/deps/fft_kernels-09dd145453810c24.d: crates/bench/benches/fft_kernels.rs Cargo.toml

/root/repo/target/debug/deps/libfft_kernels-09dd145453810c24.rmeta: crates/bench/benches/fft_kernels.rs Cargo.toml

crates/bench/benches/fft_kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
