/root/repo/target/debug/deps/ablation_grain-0b8d58cb491044f8.d: crates/bench/src/bin/ablation_grain.rs

/root/repo/target/debug/deps/ablation_grain-0b8d58cb491044f8: crates/bench/src/bin/ablation_grain.rs

crates/bench/src/bin/ablation_grain.rs:
