/root/repo/target/debug/deps/future_overlap-96cbac62c5b70ec4.d: crates/bench/src/bin/future_overlap.rs Cargo.toml

/root/repo/target/debug/deps/libfuture_overlap-96cbac62c5b70ec4.rmeta: crates/bench/src/bin/future_overlap.rs Cargo.toml

crates/bench/src/bin/future_overlap.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
