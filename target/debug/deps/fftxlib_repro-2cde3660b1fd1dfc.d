/root/repo/target/debug/deps/fftxlib_repro-2cde3660b1fd1dfc.d: src/lib.rs

/root/repo/target/debug/deps/libfftxlib_repro-2cde3660b1fd1dfc.rlib: src/lib.rs

/root/repo/target/debug/deps/libfftxlib_repro-2cde3660b1fd1dfc.rmeta: src/lib.rs

src/lib.rs:
