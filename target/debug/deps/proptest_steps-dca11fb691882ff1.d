/root/repo/target/debug/deps/proptest_steps-dca11fb691882ff1.d: crates/core/tests/proptest_steps.rs

/root/repo/target/debug/deps/proptest_steps-dca11fb691882ff1: crates/core/tests/proptest_steps.rs

crates/core/tests/proptest_steps.rs:
