/root/repo/target/debug/deps/future_overlap-9dbb34d6b23d3b80.d: crates/bench/src/bin/future_overlap.rs

/root/repo/target/debug/deps/future_overlap-9dbb34d6b23d3b80: crates/bench/src/bin/future_overlap.rs

crates/bench/src/bin/future_overlap.rs:
