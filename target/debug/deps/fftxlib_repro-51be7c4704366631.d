/root/repo/target/debug/deps/fftxlib_repro-51be7c4704366631.d: src/lib.rs

/root/repo/target/debug/deps/libfftxlib_repro-51be7c4704366631.rlib: src/lib.rs

/root/repo/target/debug/deps/libfftxlib_repro-51be7c4704366631.rmeta: src/lib.rs

src/lib.rs:
