/root/repo/target/debug/deps/future_overlap-34f7b2d11e0f5647.d: crates/bench/src/bin/future_overlap.rs

/root/repo/target/debug/deps/future_overlap-34f7b2d11e0f5647: crates/bench/src/bin/future_overlap.rs

crates/bench/src/bin/future_overlap.rs:
