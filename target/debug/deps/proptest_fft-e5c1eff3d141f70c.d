/root/repo/target/debug/deps/proptest_fft-e5c1eff3d141f70c.d: crates/fft/tests/proptest_fft.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_fft-e5c1eff3d141f70c.rmeta: crates/fft/tests/proptest_fft.rs Cargo.toml

crates/fft/tests/proptest_fft.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
