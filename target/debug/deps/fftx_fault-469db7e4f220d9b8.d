/root/repo/target/debug/deps/fftx_fault-469db7e4f220d9b8.d: crates/fault/src/lib.rs crates/fault/src/chaos.rs crates/fault/src/fatal.rs crates/fault/src/plan.rs

/root/repo/target/debug/deps/libfftx_fault-469db7e4f220d9b8.rlib: crates/fault/src/lib.rs crates/fault/src/chaos.rs crates/fault/src/fatal.rs crates/fault/src/plan.rs

/root/repo/target/debug/deps/libfftx_fault-469db7e4f220d9b8.rmeta: crates/fault/src/lib.rs crates/fault/src/chaos.rs crates/fault/src/fatal.rs crates/fault/src/plan.rs

crates/fault/src/lib.rs:
crates/fault/src/chaos.rs:
crates/fault/src/fatal.rs:
crates/fault/src/plan.rs:
