/root/repo/target/debug/deps/proptest_taskrt-1c30046763f8e315.d: crates/taskrt/tests/proptest_taskrt.rs

/root/repo/target/debug/deps/proptest_taskrt-1c30046763f8e315: crates/taskrt/tests/proptest_taskrt.rs

crates/taskrt/tests/proptest_taskrt.rs:
