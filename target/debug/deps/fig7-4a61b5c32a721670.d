/root/repo/target/debug/deps/fig7-4a61b5c32a721670.d: crates/bench/src/bin/fig7.rs Cargo.toml

/root/repo/target/debug/deps/libfig7-4a61b5c32a721670.rmeta: crates/bench/src/bin/fig7.rs Cargo.toml

crates/bench/src/bin/fig7.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
