/root/repo/target/debug/deps/collectives-d894d01eb76357fe.d: crates/vmpi/tests/collectives.rs

/root/repo/target/debug/deps/collectives-d894d01eb76357fe: crates/vmpi/tests/collectives.rs

crates/vmpi/tests/collectives.rs:
