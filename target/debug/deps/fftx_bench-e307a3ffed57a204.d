/root/repo/target/debug/deps/fftx_bench-e307a3ffed57a204.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfftx_bench-e307a3ffed57a204.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
