/root/repo/target/debug/deps/modeled_pipeline-d8c8fc30fe83ff62.d: tests/modeled_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libmodeled_pipeline-d8c8fc30fe83ff62.rmeta: tests/modeled_pipeline.rs Cargo.toml

tests/modeled_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
