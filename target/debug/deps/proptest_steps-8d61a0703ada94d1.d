/root/repo/target/debug/deps/proptest_steps-8d61a0703ada94d1.d: crates/core/tests/proptest_steps.rs

/root/repo/target/debug/deps/proptest_steps-8d61a0703ada94d1: crates/core/tests/proptest_steps.rs

crates/core/tests/proptest_steps.rs:
