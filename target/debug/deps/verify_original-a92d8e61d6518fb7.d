/root/repo/target/debug/deps/verify_original-a92d8e61d6518fb7.d: crates/core/tests/verify_original.rs Cargo.toml

/root/repo/target/debug/deps/libverify_original-a92d8e61d6518fb7.rmeta: crates/core/tests/verify_original.rs Cargo.toml

crates/core/tests/verify_original.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
