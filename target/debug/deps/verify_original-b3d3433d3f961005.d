/root/repo/target/debug/deps/verify_original-b3d3433d3f961005.d: crates/core/tests/verify_original.rs Cargo.toml

/root/repo/target/debug/deps/libverify_original-b3d3433d3f961005.rmeta: crates/core/tests/verify_original.rs Cargo.toml

crates/core/tests/verify_original.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
