/root/repo/target/debug/deps/fig7-0cb120ab12d83d33.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-0cb120ab12d83d33: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
