/root/repo/target/debug/deps/fftx_vmpi-6b8ef8a049d59228.d: crates/vmpi/src/lib.rs crates/vmpi/src/comm.rs crates/vmpi/src/error.rs crates/vmpi/src/world.rs

/root/repo/target/debug/deps/libfftx_vmpi-6b8ef8a049d59228.rlib: crates/vmpi/src/lib.rs crates/vmpi/src/comm.rs crates/vmpi/src/error.rs crates/vmpi/src/world.rs

/root/repo/target/debug/deps/libfftx_vmpi-6b8ef8a049d59228.rmeta: crates/vmpi/src/lib.rs crates/vmpi/src/comm.rs crates/vmpi/src/error.rs crates/vmpi/src/world.rs

crates/vmpi/src/lib.rs:
crates/vmpi/src/comm.rs:
crates/vmpi/src/error.rs:
crates/vmpi/src/world.rs:
