/root/repo/target/debug/deps/hardening-f9d7dc10962b5226.d: crates/taskrt/tests/hardening.rs

/root/repo/target/debug/deps/hardening-f9d7dc10962b5226: crates/taskrt/tests/hardening.rs

crates/taskrt/tests/hardening.rs:
