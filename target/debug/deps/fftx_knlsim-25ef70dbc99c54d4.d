/root/repo/target/debug/deps/fftx_knlsim-25ef70dbc99c54d4.d: crates/knlsim/src/lib.rs crates/knlsim/src/arch.rs crates/knlsim/src/des.rs crates/knlsim/src/model.rs crates/knlsim/src/program.rs

/root/repo/target/debug/deps/libfftx_knlsim-25ef70dbc99c54d4.rlib: crates/knlsim/src/lib.rs crates/knlsim/src/arch.rs crates/knlsim/src/des.rs crates/knlsim/src/model.rs crates/knlsim/src/program.rs

/root/repo/target/debug/deps/libfftx_knlsim-25ef70dbc99c54d4.rmeta: crates/knlsim/src/lib.rs crates/knlsim/src/arch.rs crates/knlsim/src/des.rs crates/knlsim/src/model.rs crates/knlsim/src/program.rs

crates/knlsim/src/lib.rs:
crates/knlsim/src/arch.rs:
crates/knlsim/src/des.rs:
crates/knlsim/src/model.rs:
crates/knlsim/src/program.rs:
