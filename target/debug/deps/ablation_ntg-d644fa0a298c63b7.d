/root/repo/target/debug/deps/ablation_ntg-d644fa0a298c63b7.d: crates/bench/src/bin/ablation_ntg.rs

/root/repo/target/debug/deps/ablation_ntg-d644fa0a298c63b7: crates/bench/src/bin/ablation_ntg.rs

crates/bench/src/bin/ablation_ntg.rs:
