/root/repo/target/debug/deps/ablation_grain-c6411036be7b6186.d: crates/bench/src/bin/ablation_grain.rs

/root/repo/target/debug/deps/ablation_grain-c6411036be7b6186: crates/bench/src/bin/ablation_grain.rs

crates/bench/src/bin/ablation_grain.rs:
