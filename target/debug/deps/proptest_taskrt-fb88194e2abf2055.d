/root/repo/target/debug/deps/proptest_taskrt-fb88194e2abf2055.d: crates/taskrt/tests/proptest_taskrt.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_taskrt-fb88194e2abf2055.rmeta: crates/taskrt/tests/proptest_taskrt.rs Cargo.toml

crates/taskrt/tests/proptest_taskrt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
