/root/repo/target/debug/deps/fftx_fault-0b5f8a14faeb54c5.d: crates/fault/src/lib.rs crates/fault/src/chaos.rs crates/fault/src/fatal.rs crates/fault/src/plan.rs

/root/repo/target/debug/deps/fftx_fault-0b5f8a14faeb54c5: crates/fault/src/lib.rs crates/fault/src/chaos.rs crates/fault/src/fatal.rs crates/fault/src/plan.rs

crates/fault/src/lib.rs:
crates/fault/src/chaos.rs:
crates/fault/src/fatal.rs:
crates/fault/src/plan.rs:
