/root/repo/target/debug/deps/verify_taskmodes-ee8de7af1fae5930.d: crates/core/tests/verify_taskmodes.rs

/root/repo/target/debug/deps/verify_taskmodes-ee8de7af1fae5930: crates/core/tests/verify_taskmodes.rs

crates/core/tests/verify_taskmodes.rs:
