/root/repo/target/debug/deps/fftx_vmpi-f0e53db967e80d38.d: crates/vmpi/src/lib.rs crates/vmpi/src/comm.rs crates/vmpi/src/world.rs

/root/repo/target/debug/deps/fftx_vmpi-f0e53db967e80d38: crates/vmpi/src/lib.rs crates/vmpi/src/comm.rs crates/vmpi/src/world.rs

crates/vmpi/src/lib.rs:
crates/vmpi/src/comm.rs:
crates/vmpi/src/world.rs:
