/root/repo/target/debug/deps/table1-863632110f3852ee.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-863632110f3852ee: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
