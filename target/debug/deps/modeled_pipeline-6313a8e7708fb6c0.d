/root/repo/target/debug/deps/modeled_pipeline-6313a8e7708fb6c0.d: tests/modeled_pipeline.rs

/root/repo/target/debug/deps/modeled_pipeline-6313a8e7708fb6c0: tests/modeled_pipeline.rs

tests/modeled_pipeline.rs:
