/root/repo/target/debug/deps/golden_bitwise-cd44f1f565add144.d: crates/core/tests/golden_bitwise.rs Cargo.toml

/root/repo/target/debug/deps/libgolden_bitwise-cd44f1f565add144.rmeta: crates/core/tests/golden_bitwise.rs Cargo.toml

crates/core/tests/golden_bitwise.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/core
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
