/root/repo/target/debug/deps/fftx-85a7d4662caed40b.d: src/bin/fftx.rs

/root/repo/target/debug/deps/fftx-85a7d4662caed40b: src/bin/fftx.rs

src/bin/fftx.rs:
