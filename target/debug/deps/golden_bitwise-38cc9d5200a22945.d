/root/repo/target/debug/deps/golden_bitwise-38cc9d5200a22945.d: crates/core/tests/golden_bitwise.rs

/root/repo/target/debug/deps/golden_bitwise-38cc9d5200a22945: crates/core/tests/golden_bitwise.rs

crates/core/tests/golden_bitwise.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/core
