/root/repo/target/debug/deps/fftx-60a325c949a5e9de.d: src/bin/fftx.rs Cargo.toml

/root/repo/target/debug/deps/libfftx-60a325c949a5e9de.rmeta: src/bin/fftx.rs Cargo.toml

src/bin/fftx.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
