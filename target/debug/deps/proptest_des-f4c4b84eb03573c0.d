/root/repo/target/debug/deps/proptest_des-f4c4b84eb03573c0.d: crates/knlsim/tests/proptest_des.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_des-f4c4b84eb03573c0.rmeta: crates/knlsim/tests/proptest_des.rs Cargo.toml

crates/knlsim/tests/proptest_des.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
