/root/repo/target/debug/deps/fftx_knlsim-86a41deeb5d7c9a4.d: crates/knlsim/src/lib.rs crates/knlsim/src/arch.rs crates/knlsim/src/des.rs crates/knlsim/src/model.rs crates/knlsim/src/program.rs

/root/repo/target/debug/deps/fftx_knlsim-86a41deeb5d7c9a4: crates/knlsim/src/lib.rs crates/knlsim/src/arch.rs crates/knlsim/src/des.rs crates/knlsim/src/model.rs crates/knlsim/src/program.rs

crates/knlsim/src/lib.rs:
crates/knlsim/src/arch.rs:
crates/knlsim/src/des.rs:
crates/knlsim/src/model.rs:
crates/knlsim/src/program.rs:
