/root/repo/target/debug/deps/fftx_bench-b1442be29d5c92d2.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libfftx_bench-b1442be29d5c92d2.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libfftx_bench-b1442be29d5c92d2.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
