/root/repo/target/debug/deps/fftx_bench-ca46db0e34cda332.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/fftx_bench-ca46db0e34cda332: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
