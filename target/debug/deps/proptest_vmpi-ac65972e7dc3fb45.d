/root/repo/target/debug/deps/proptest_vmpi-ac65972e7dc3fb45.d: crates/vmpi/tests/proptest_vmpi.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_vmpi-ac65972e7dc3fb45.rmeta: crates/vmpi/tests/proptest_vmpi.rs Cargo.toml

crates/vmpi/tests/proptest_vmpi.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
