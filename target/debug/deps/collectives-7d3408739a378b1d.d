/root/repo/target/debug/deps/collectives-7d3408739a378b1d.d: crates/vmpi/tests/collectives.rs

/root/repo/target/debug/deps/collectives-7d3408739a378b1d: crates/vmpi/tests/collectives.rs

crates/vmpi/tests/collectives.rs:
