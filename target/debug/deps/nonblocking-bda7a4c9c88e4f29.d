/root/repo/target/debug/deps/nonblocking-bda7a4c9c88e4f29.d: crates/vmpi/tests/nonblocking.rs Cargo.toml

/root/repo/target/debug/deps/libnonblocking-bda7a4c9c88e4f29.rmeta: crates/vmpi/tests/nonblocking.rs Cargo.toml

crates/vmpi/tests/nonblocking.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
