/root/repo/target/debug/deps/table2-26372a41ee487750.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-26372a41ee487750: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
