/root/repo/target/debug/deps/fftx-dc1912d8c7162b15.d: src/bin/fftx.rs

/root/repo/target/debug/deps/fftx-dc1912d8c7162b15: src/bin/fftx.rs

src/bin/fftx.rs:
