/root/repo/target/debug/deps/fftx_knlsim-7230423b14742095.d: crates/knlsim/src/lib.rs crates/knlsim/src/arch.rs crates/knlsim/src/des.rs crates/knlsim/src/model.rs crates/knlsim/src/program.rs

/root/repo/target/debug/deps/fftx_knlsim-7230423b14742095: crates/knlsim/src/lib.rs crates/knlsim/src/arch.rs crates/knlsim/src/des.rs crates/knlsim/src/model.rs crates/knlsim/src/program.rs

crates/knlsim/src/lib.rs:
crates/knlsim/src/arch.rs:
crates/knlsim/src/des.rs:
crates/knlsim/src/model.rs:
crates/knlsim/src/program.rs:
