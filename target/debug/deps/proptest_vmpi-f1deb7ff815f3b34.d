/root/repo/target/debug/deps/proptest_vmpi-f1deb7ff815f3b34.d: crates/vmpi/tests/proptest_vmpi.rs

/root/repo/target/debug/deps/proptest_vmpi-f1deb7ff815f3b34: crates/vmpi/tests/proptest_vmpi.rs

crates/vmpi/tests/proptest_vmpi.rs:
