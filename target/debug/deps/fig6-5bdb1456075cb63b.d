/root/repo/target/debug/deps/fig6-5bdb1456075cb63b.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-5bdb1456075cb63b: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
