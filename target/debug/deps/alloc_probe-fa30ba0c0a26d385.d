/root/repo/target/debug/deps/alloc_probe-fa30ba0c0a26d385.d: crates/core/tests/alloc_probe.rs Cargo.toml

/root/repo/target/debug/deps/liballoc_probe-fa30ba0c0a26d385.rmeta: crates/core/tests/alloc_probe.rs Cargo.toml

crates/core/tests/alloc_probe.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/core
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
