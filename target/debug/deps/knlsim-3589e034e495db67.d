/root/repo/target/debug/deps/knlsim-3589e034e495db67.d: crates/bench/benches/knlsim.rs Cargo.toml

/root/repo/target/debug/deps/libknlsim-3589e034e495db67.rmeta: crates/bench/benches/knlsim.rs Cargo.toml

crates/bench/benches/knlsim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
