/root/repo/target/debug/deps/refactor-a2c068001f8c7257.d: crates/bench/src/bin/refactor.rs

/root/repo/target/debug/deps/refactor-a2c068001f8c7257: crates/bench/src/bin/refactor.rs

crates/bench/src/bin/refactor.rs:
