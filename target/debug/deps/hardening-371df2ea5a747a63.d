/root/repo/target/debug/deps/hardening-371df2ea5a747a63.d: crates/vmpi/tests/hardening.rs

/root/repo/target/debug/deps/hardening-371df2ea5a747a63: crates/vmpi/tests/hardening.rs

crates/vmpi/tests/hardening.rs:
