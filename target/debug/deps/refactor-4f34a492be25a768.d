/root/repo/target/debug/deps/refactor-4f34a492be25a768.d: crates/bench/src/bin/refactor.rs Cargo.toml

/root/repo/target/debug/deps/librefactor-4f34a492be25a768.rmeta: crates/bench/src/bin/refactor.rs Cargo.toml

crates/bench/src/bin/refactor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
