/root/repo/target/debug/deps/fftx_trace-b2d3c2c360eff7b7.d: crates/trace/src/lib.rs crates/trace/src/event.rs crates/trace/src/lane_ctx.rs crates/trace/src/histogram.rs crates/trace/src/paraver.rs crates/trace/src/pop.rs crates/trace/src/table.rs crates/trace/src/timeline.rs crates/trace/src/trace.rs

/root/repo/target/debug/deps/libfftx_trace-b2d3c2c360eff7b7.rlib: crates/trace/src/lib.rs crates/trace/src/event.rs crates/trace/src/lane_ctx.rs crates/trace/src/histogram.rs crates/trace/src/paraver.rs crates/trace/src/pop.rs crates/trace/src/table.rs crates/trace/src/timeline.rs crates/trace/src/trace.rs

/root/repo/target/debug/deps/libfftx_trace-b2d3c2c360eff7b7.rmeta: crates/trace/src/lib.rs crates/trace/src/event.rs crates/trace/src/lane_ctx.rs crates/trace/src/histogram.rs crates/trace/src/paraver.rs crates/trace/src/pop.rs crates/trace/src/table.rs crates/trace/src/timeline.rs crates/trace/src/trace.rs

crates/trace/src/lib.rs:
crates/trace/src/event.rs:
crates/trace/src/lane_ctx.rs:
crates/trace/src/histogram.rs:
crates/trace/src/paraver.rs:
crates/trace/src/pop.rs:
crates/trace/src/table.rs:
crates/trace/src/timeline.rs:
crates/trace/src/trace.rs:
