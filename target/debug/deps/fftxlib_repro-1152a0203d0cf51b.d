/root/repo/target/debug/deps/fftxlib_repro-1152a0203d0cf51b.d: src/lib.rs

/root/repo/target/debug/deps/fftxlib_repro-1152a0203d0cf51b: src/lib.rs

src/lib.rs:
