/root/repo/target/debug/deps/fftxlib_repro-154020055c358c25.d: src/lib.rs

/root/repo/target/debug/deps/libfftxlib_repro-154020055c358c25.rlib: src/lib.rs

/root/repo/target/debug/deps/libfftxlib_repro-154020055c358c25.rmeta: src/lib.rs

src/lib.rs:
