/root/repo/target/debug/deps/fig2-64ba32bce88f4376.d: crates/bench/src/bin/fig2.rs

/root/repo/target/debug/deps/fig2-64ba32bce88f4376: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
