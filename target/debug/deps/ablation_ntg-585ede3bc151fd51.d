/root/repo/target/debug/deps/ablation_ntg-585ede3bc151fd51.d: crates/bench/src/bin/ablation_ntg.rs

/root/repo/target/debug/deps/ablation_ntg-585ede3bc151fd51: crates/bench/src/bin/ablation_ntg.rs

crates/bench/src/bin/ablation_ntg.rs:
