/root/repo/target/debug/deps/fig7-dad0d92d5d687d87.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-dad0d92d5d687d87: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
