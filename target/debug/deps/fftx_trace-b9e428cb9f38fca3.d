/root/repo/target/debug/deps/fftx_trace-b9e428cb9f38fca3.d: crates/trace/src/lib.rs crates/trace/src/event.rs crates/trace/src/lane_ctx.rs crates/trace/src/histogram.rs crates/trace/src/paraver.rs crates/trace/src/pop.rs crates/trace/src/table.rs crates/trace/src/timeline.rs crates/trace/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libfftx_trace-b9e428cb9f38fca3.rmeta: crates/trace/src/lib.rs crates/trace/src/event.rs crates/trace/src/lane_ctx.rs crates/trace/src/histogram.rs crates/trace/src/paraver.rs crates/trace/src/pop.rs crates/trace/src/table.rs crates/trace/src/timeline.rs crates/trace/src/trace.rs Cargo.toml

crates/trace/src/lib.rs:
crates/trace/src/event.rs:
crates/trace/src/lane_ctx.rs:
crates/trace/src/histogram.rs:
crates/trace/src/paraver.rs:
crates/trace/src/pop.rs:
crates/trace/src/table.rs:
crates/trace/src/timeline.rs:
crates/trace/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
