/root/repo/target/debug/deps/arena_poison-0ea726eb1222f12f.d: crates/core/tests/arena_poison.rs

/root/repo/target/debug/deps/arena_poison-0ea726eb1222f12f: crates/core/tests/arena_poison.rs

crates/core/tests/arena_poison.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/core
