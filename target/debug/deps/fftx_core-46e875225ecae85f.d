/root/repo/target/debug/deps/fftx_core-46e875225ecae85f.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/modelplan.rs crates/core/src/original.rs crates/core/src/plan.rs crates/core/src/problem.rs crates/core/src/recorder.rs crates/core/src/recovery.rs crates/core/src/steps.rs crates/core/src/taskmodes.rs Cargo.toml

/root/repo/target/debug/deps/libfftx_core-46e875225ecae85f.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/modelplan.rs crates/core/src/original.rs crates/core/src/plan.rs crates/core/src/problem.rs crates/core/src/recorder.rs crates/core/src/recovery.rs crates/core/src/steps.rs crates/core/src/taskmodes.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/modelplan.rs:
crates/core/src/original.rs:
crates/core/src/plan.rs:
crates/core/src/problem.rs:
crates/core/src/recorder.rs:
crates/core/src/recovery.rs:
crates/core/src/steps.rs:
crates/core/src/taskmodes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
