/root/repo/target/debug/deps/fftx_knlsim-6253623b2a349530.d: crates/knlsim/src/lib.rs crates/knlsim/src/arch.rs crates/knlsim/src/des.rs crates/knlsim/src/model.rs crates/knlsim/src/program.rs Cargo.toml

/root/repo/target/debug/deps/libfftx_knlsim-6253623b2a349530.rmeta: crates/knlsim/src/lib.rs crates/knlsim/src/arch.rs crates/knlsim/src/des.rs crates/knlsim/src/model.rs crates/knlsim/src/program.rs Cargo.toml

crates/knlsim/src/lib.rs:
crates/knlsim/src/arch.rs:
crates/knlsim/src/des.rs:
crates/knlsim/src/model.rs:
crates/knlsim/src/program.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
