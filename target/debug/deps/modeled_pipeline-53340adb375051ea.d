/root/repo/target/debug/deps/modeled_pipeline-53340adb375051ea.d: tests/modeled_pipeline.rs

/root/repo/target/debug/deps/modeled_pipeline-53340adb375051ea: tests/modeled_pipeline.rs

tests/modeled_pipeline.rs:
