/root/repo/target/debug/deps/taskrt-f230938166905ca8.d: crates/bench/benches/taskrt.rs Cargo.toml

/root/repo/target/debug/deps/libtaskrt-f230938166905ca8.rmeta: crates/bench/benches/taskrt.rs Cargo.toml

crates/bench/benches/taskrt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
