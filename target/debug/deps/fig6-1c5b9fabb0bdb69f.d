/root/repo/target/debug/deps/fig6-1c5b9fabb0bdb69f.d: crates/bench/src/bin/fig6.rs Cargo.toml

/root/repo/target/debug/deps/libfig6-1c5b9fabb0bdb69f.rmeta: crates/bench/src/bin/fig6.rs Cargo.toml

crates/bench/src/bin/fig6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
