/root/repo/target/debug/deps/verify_original-2f39b768a040cd74.d: crates/core/tests/verify_original.rs

/root/repo/target/debug/deps/verify_original-2f39b768a040cd74: crates/core/tests/verify_original.rs

crates/core/tests/verify_original.rs:
