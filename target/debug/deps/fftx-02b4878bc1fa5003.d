/root/repo/target/debug/deps/fftx-02b4878bc1fa5003.d: src/bin/fftx.rs

/root/repo/target/debug/deps/fftx-02b4878bc1fa5003: src/bin/fftx.rs

src/bin/fftx.rs:
