/root/repo/target/debug/deps/ablation_grain-310c9a37d6aa9ca4.d: crates/bench/src/bin/ablation_grain.rs Cargo.toml

/root/repo/target/debug/deps/libablation_grain-310c9a37d6aa9ca4.rmeta: crates/bench/src/bin/ablation_grain.rs Cargo.toml

crates/bench/src/bin/ablation_grain.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
