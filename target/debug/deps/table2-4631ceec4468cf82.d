/root/repo/target/debug/deps/table2-4631ceec4468cf82.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-4631ceec4468cf82: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
