/root/repo/target/debug/deps/proptest-d946a7f4784f3aa6.d: shims/proptest/src/lib.rs shims/proptest/src/strategy.rs shims/proptest/src/collection.rs shims/proptest/src/test_runner.rs

/root/repo/target/debug/deps/proptest-d946a7f4784f3aa6: shims/proptest/src/lib.rs shims/proptest/src/strategy.rs shims/proptest/src/collection.rs shims/proptest/src/test_runner.rs

shims/proptest/src/lib.rs:
shims/proptest/src/strategy.rs:
shims/proptest/src/collection.rs:
shims/proptest/src/test_runner.rs:
