/root/repo/target/debug/deps/full_stack-8a9a6f9586ef5aa8.d: tests/full_stack.rs

/root/repo/target/debug/deps/full_stack-8a9a6f9586ef5aa8: tests/full_stack.rs

tests/full_stack.rs:
