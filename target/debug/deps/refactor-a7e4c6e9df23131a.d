/root/repo/target/debug/deps/refactor-a7e4c6e9df23131a.d: crates/bench/src/bin/refactor.rs Cargo.toml

/root/repo/target/debug/deps/librefactor-a7e4c6e9df23131a.rmeta: crates/bench/src/bin/refactor.rs Cargo.toml

crates/bench/src/bin/refactor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
