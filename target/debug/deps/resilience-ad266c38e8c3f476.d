/root/repo/target/debug/deps/resilience-ad266c38e8c3f476.d: crates/bench/src/bin/resilience.rs Cargo.toml

/root/repo/target/debug/deps/libresilience-ad266c38e8c3f476.rmeta: crates/bench/src/bin/resilience.rs Cargo.toml

crates/bench/src/bin/resilience.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
