/root/repo/target/debug/deps/fftx_bench-c5cc63750c874d0c.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfftx_bench-c5cc63750c874d0c.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
