/root/repo/target/debug/deps/proptest_chaos-33fd92b6ab26805c.d: crates/core/tests/proptest_chaos.rs

/root/repo/target/debug/deps/proptest_chaos-33fd92b6ab26805c: crates/core/tests/proptest_chaos.rs

crates/core/tests/proptest_chaos.rs:
