/root/repo/target/debug/deps/collectives-5bb92095de7e94b7.d: crates/vmpi/tests/collectives.rs Cargo.toml

/root/repo/target/debug/deps/libcollectives-5bb92095de7e94b7.rmeta: crates/vmpi/tests/collectives.rs Cargo.toml

crates/vmpi/tests/collectives.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
