/root/repo/target/debug/deps/fftx_vmpi-5d6c56a42fa0fb06.d: crates/vmpi/src/lib.rs crates/vmpi/src/comm.rs crates/vmpi/src/error.rs crates/vmpi/src/world.rs

/root/repo/target/debug/deps/fftx_vmpi-5d6c56a42fa0fb06: crates/vmpi/src/lib.rs crates/vmpi/src/comm.rs crates/vmpi/src/error.rs crates/vmpi/src/world.rs

crates/vmpi/src/lib.rs:
crates/vmpi/src/comm.rs:
crates/vmpi/src/error.rs:
crates/vmpi/src/world.rs:
