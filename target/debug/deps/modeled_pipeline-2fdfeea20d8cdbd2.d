/root/repo/target/debug/deps/modeled_pipeline-2fdfeea20d8cdbd2.d: tests/modeled_pipeline.rs

/root/repo/target/debug/deps/modeled_pipeline-2fdfeea20d8cdbd2: tests/modeled_pipeline.rs

tests/modeled_pipeline.rs:
