/root/repo/target/debug/deps/fftx_bench-7aacb4e64e766635.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libfftx_bench-7aacb4e64e766635.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libfftx_bench-7aacb4e64e766635.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
