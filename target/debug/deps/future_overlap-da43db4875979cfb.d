/root/repo/target/debug/deps/future_overlap-da43db4875979cfb.d: crates/bench/src/bin/future_overlap.rs Cargo.toml

/root/repo/target/debug/deps/libfuture_overlap-da43db4875979cfb.rmeta: crates/bench/src/bin/future_overlap.rs Cargo.toml

crates/bench/src/bin/future_overlap.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
