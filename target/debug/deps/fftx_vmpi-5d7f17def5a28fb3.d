/root/repo/target/debug/deps/fftx_vmpi-5d7f17def5a28fb3.d: crates/vmpi/src/lib.rs crates/vmpi/src/comm.rs crates/vmpi/src/world.rs

/root/repo/target/debug/deps/libfftx_vmpi-5d7f17def5a28fb3.rlib: crates/vmpi/src/lib.rs crates/vmpi/src/comm.rs crates/vmpi/src/world.rs

/root/repo/target/debug/deps/libfftx_vmpi-5d7f17def5a28fb3.rmeta: crates/vmpi/src/lib.rs crates/vmpi/src/comm.rs crates/vmpi/src/world.rs

crates/vmpi/src/lib.rs:
crates/vmpi/src/comm.rs:
crates/vmpi/src/world.rs:
