/root/repo/target/debug/deps/fftxlib_repro-cc4a641f4174b37a.d: src/lib.rs

/root/repo/target/debug/deps/fftxlib_repro-cc4a641f4174b37a: src/lib.rs

src/lib.rs:
