/root/repo/target/debug/deps/resilience-5c9a8f2fd4be52b8.d: crates/bench/src/bin/resilience.rs

/root/repo/target/debug/deps/resilience-5c9a8f2fd4be52b8: crates/bench/src/bin/resilience.rs

crates/bench/src/bin/resilience.rs:
