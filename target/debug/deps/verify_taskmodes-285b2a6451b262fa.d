/root/repo/target/debug/deps/verify_taskmodes-285b2a6451b262fa.d: crates/core/tests/verify_taskmodes.rs

/root/repo/target/debug/deps/verify_taskmodes-285b2a6451b262fa: crates/core/tests/verify_taskmodes.rs

crates/core/tests/verify_taskmodes.rs:
