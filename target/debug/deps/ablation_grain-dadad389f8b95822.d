/root/repo/target/debug/deps/ablation_grain-dadad389f8b95822.d: crates/bench/src/bin/ablation_grain.rs

/root/repo/target/debug/deps/ablation_grain-dadad389f8b95822: crates/bench/src/bin/ablation_grain.rs

crates/bench/src/bin/ablation_grain.rs:
