/root/repo/target/debug/deps/proptest_des-468faea08e1d8251.d: crates/knlsim/tests/proptest_des.rs

/root/repo/target/debug/deps/proptest_des-468faea08e1d8251: crates/knlsim/tests/proptest_des.rs

crates/knlsim/tests/proptest_des.rs:
