/root/repo/target/debug/deps/miniapp-60b8f5856e23ff92.d: crates/bench/benches/miniapp.rs Cargo.toml

/root/repo/target/debug/deps/libminiapp-60b8f5856e23ff92.rmeta: crates/bench/benches/miniapp.rs Cargo.toml

crates/bench/benches/miniapp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
