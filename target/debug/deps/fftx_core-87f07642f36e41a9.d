/root/repo/target/debug/deps/fftx_core-87f07642f36e41a9.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/modelplan.rs crates/core/src/original.rs crates/core/src/plan.rs crates/core/src/problem.rs crates/core/src/recorder.rs crates/core/src/recovery.rs crates/core/src/steps.rs crates/core/src/taskmodes.rs

/root/repo/target/debug/deps/fftx_core-87f07642f36e41a9: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/modelplan.rs crates/core/src/original.rs crates/core/src/plan.rs crates/core/src/problem.rs crates/core/src/recorder.rs crates/core/src/recovery.rs crates/core/src/steps.rs crates/core/src/taskmodes.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/modelplan.rs:
crates/core/src/original.rs:
crates/core/src/plan.rs:
crates/core/src/problem.rs:
crates/core/src/recorder.rs:
crates/core/src/recovery.rs:
crates/core/src/steps.rs:
crates/core/src/taskmodes.rs:
