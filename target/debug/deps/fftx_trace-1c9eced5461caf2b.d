/root/repo/target/debug/deps/fftx_trace-1c9eced5461caf2b.d: crates/trace/src/lib.rs crates/trace/src/event.rs crates/trace/src/lane_ctx.rs crates/trace/src/histogram.rs crates/trace/src/paraver.rs crates/trace/src/pop.rs crates/trace/src/table.rs crates/trace/src/timeline.rs crates/trace/src/trace.rs

/root/repo/target/debug/deps/fftx_trace-1c9eced5461caf2b: crates/trace/src/lib.rs crates/trace/src/event.rs crates/trace/src/lane_ctx.rs crates/trace/src/histogram.rs crates/trace/src/paraver.rs crates/trace/src/pop.rs crates/trace/src/table.rs crates/trace/src/timeline.rs crates/trace/src/trace.rs

crates/trace/src/lib.rs:
crates/trace/src/event.rs:
crates/trace/src/lane_ctx.rs:
crates/trace/src/histogram.rs:
crates/trace/src/paraver.rs:
crates/trace/src/pop.rs:
crates/trace/src/table.rs:
crates/trace/src/timeline.rs:
crates/trace/src/trace.rs:
