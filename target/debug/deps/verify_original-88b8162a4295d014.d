/root/repo/target/debug/deps/verify_original-88b8162a4295d014.d: crates/core/tests/verify_original.rs

/root/repo/target/debug/deps/verify_original-88b8162a4295d014: crates/core/tests/verify_original.rs

crates/core/tests/verify_original.rs:
