/root/repo/target/debug/deps/fftx_core-d3f1dc39c13fdf95.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/modelplan.rs crates/core/src/original.rs crates/core/src/plan.rs crates/core/src/problem.rs crates/core/src/recorder.rs crates/core/src/recovery.rs crates/core/src/steps.rs crates/core/src/taskmodes.rs

/root/repo/target/debug/deps/libfftx_core-d3f1dc39c13fdf95.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/modelplan.rs crates/core/src/original.rs crates/core/src/plan.rs crates/core/src/problem.rs crates/core/src/recorder.rs crates/core/src/recovery.rs crates/core/src/steps.rs crates/core/src/taskmodes.rs

/root/repo/target/debug/deps/libfftx_core-d3f1dc39c13fdf95.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/modelplan.rs crates/core/src/original.rs crates/core/src/plan.rs crates/core/src/problem.rs crates/core/src/recorder.rs crates/core/src/recovery.rs crates/core/src/steps.rs crates/core/src/taskmodes.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/modelplan.rs:
crates/core/src/original.rs:
crates/core/src/plan.rs:
crates/core/src/problem.rs:
crates/core/src/recorder.rs:
crates/core/src/recovery.rs:
crates/core/src/steps.rs:
crates/core/src/taskmodes.rs:
