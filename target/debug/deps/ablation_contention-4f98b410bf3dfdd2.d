/root/repo/target/debug/deps/ablation_contention-4f98b410bf3dfdd2.d: crates/bench/src/bin/ablation_contention.rs

/root/repo/target/debug/deps/ablation_contention-4f98b410bf3dfdd2: crates/bench/src/bin/ablation_contention.rs

crates/bench/src/bin/ablation_contention.rs:
