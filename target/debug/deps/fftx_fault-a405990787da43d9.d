/root/repo/target/debug/deps/fftx_fault-a405990787da43d9.d: crates/fault/src/lib.rs crates/fault/src/chaos.rs crates/fault/src/fatal.rs crates/fault/src/plan.rs Cargo.toml

/root/repo/target/debug/deps/libfftx_fault-a405990787da43d9.rmeta: crates/fault/src/lib.rs crates/fault/src/chaos.rs crates/fault/src/fatal.rs crates/fault/src/plan.rs Cargo.toml

crates/fault/src/lib.rs:
crates/fault/src/chaos.rs:
crates/fault/src/fatal.rs:
crates/fault/src/plan.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
