/root/repo/target/debug/deps/fftx_vmpi-28c7a7452d643692.d: crates/vmpi/src/lib.rs crates/vmpi/src/comm.rs crates/vmpi/src/error.rs crates/vmpi/src/world.rs Cargo.toml

/root/repo/target/debug/deps/libfftx_vmpi-28c7a7452d643692.rmeta: crates/vmpi/src/lib.rs crates/vmpi/src/comm.rs crates/vmpi/src/error.rs crates/vmpi/src/world.rs Cargo.toml

crates/vmpi/src/lib.rs:
crates/vmpi/src/comm.rs:
crates/vmpi/src/error.rs:
crates/vmpi/src/world.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
