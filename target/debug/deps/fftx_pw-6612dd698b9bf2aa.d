/root/repo/target/debug/deps/fftx_pw-6612dd698b9bf2aa.d: crates/pw/src/lib.rs crates/pw/src/cell.rs crates/pw/src/gamma.rs crates/pw/src/grid.rs crates/pw/src/gvec.rs crates/pw/src/layout.rs crates/pw/src/potential.rs crates/pw/src/reference.rs crates/pw/src/sticks.rs crates/pw/src/wave.rs Cargo.toml

/root/repo/target/debug/deps/libfftx_pw-6612dd698b9bf2aa.rmeta: crates/pw/src/lib.rs crates/pw/src/cell.rs crates/pw/src/gamma.rs crates/pw/src/grid.rs crates/pw/src/gvec.rs crates/pw/src/layout.rs crates/pw/src/potential.rs crates/pw/src/reference.rs crates/pw/src/sticks.rs crates/pw/src/wave.rs Cargo.toml

crates/pw/src/lib.rs:
crates/pw/src/cell.rs:
crates/pw/src/gamma.rs:
crates/pw/src/grid.rs:
crates/pw/src/gvec.rs:
crates/pw/src/layout.rs:
crates/pw/src/potential.rs:
crates/pw/src/reference.rs:
crates/pw/src/sticks.rs:
crates/pw/src/wave.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
