/root/repo/target/debug/deps/fftx_taskrt-e2f43d448f98b113.d: crates/taskrt/src/lib.rs crates/taskrt/src/error.rs crates/taskrt/src/handle.rs crates/taskrt/src/runtime.rs

/root/repo/target/debug/deps/libfftx_taskrt-e2f43d448f98b113.rlib: crates/taskrt/src/lib.rs crates/taskrt/src/error.rs crates/taskrt/src/handle.rs crates/taskrt/src/runtime.rs

/root/repo/target/debug/deps/libfftx_taskrt-e2f43d448f98b113.rmeta: crates/taskrt/src/lib.rs crates/taskrt/src/error.rs crates/taskrt/src/handle.rs crates/taskrt/src/runtime.rs

crates/taskrt/src/lib.rs:
crates/taskrt/src/error.rs:
crates/taskrt/src/handle.rs:
crates/taskrt/src/runtime.rs:
