/root/repo/target/debug/deps/fig7-7a4164addfa5b410.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-7a4164addfa5b410: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
