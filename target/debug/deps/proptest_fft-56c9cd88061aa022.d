/root/repo/target/debug/deps/proptest_fft-56c9cd88061aa022.d: crates/fft/tests/proptest_fft.rs

/root/repo/target/debug/deps/proptest_fft-56c9cd88061aa022: crates/fft/tests/proptest_fft.rs

crates/fft/tests/proptest_fft.rs:
