/root/repo/target/debug/deps/recovery-d8d1baea71eb8e07.d: crates/bench/src/bin/recovery.rs Cargo.toml

/root/repo/target/debug/deps/librecovery-d8d1baea71eb8e07.rmeta: crates/bench/src/bin/recovery.rs Cargo.toml

crates/bench/src/bin/recovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
