/root/repo/target/debug/deps/resilience-a554c93e3dcb522f.d: crates/bench/src/bin/resilience.rs

/root/repo/target/debug/deps/resilience-a554c93e3dcb522f: crates/bench/src/bin/resilience.rs

crates/bench/src/bin/resilience.rs:
