/root/repo/target/debug/deps/proptest_chaos-4546766fbef3fbd2.d: crates/core/tests/proptest_chaos.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_chaos-4546766fbef3fbd2.rmeta: crates/core/tests/proptest_chaos.rs Cargo.toml

crates/core/tests/proptest_chaos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
