/root/repo/target/debug/deps/full_stack-6e3e79c3aa1a63b3.d: tests/full_stack.rs

/root/repo/target/debug/deps/full_stack-6e3e79c3aa1a63b3: tests/full_stack.rs

tests/full_stack.rs:
