/root/repo/target/debug/deps/fftx_knlsim-d753573b44b712cf.d: crates/knlsim/src/lib.rs crates/knlsim/src/arch.rs crates/knlsim/src/des.rs crates/knlsim/src/model.rs crates/knlsim/src/program.rs Cargo.toml

/root/repo/target/debug/deps/libfftx_knlsim-d753573b44b712cf.rmeta: crates/knlsim/src/lib.rs crates/knlsim/src/arch.rs crates/knlsim/src/des.rs crates/knlsim/src/model.rs crates/knlsim/src/program.rs Cargo.toml

crates/knlsim/src/lib.rs:
crates/knlsim/src/arch.rs:
crates/knlsim/src/des.rs:
crates/knlsim/src/model.rs:
crates/knlsim/src/program.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
