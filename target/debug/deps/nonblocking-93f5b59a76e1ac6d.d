/root/repo/target/debug/deps/nonblocking-93f5b59a76e1ac6d.d: crates/vmpi/tests/nonblocking.rs

/root/repo/target/debug/deps/nonblocking-93f5b59a76e1ac6d: crates/vmpi/tests/nonblocking.rs

crates/vmpi/tests/nonblocking.rs:
