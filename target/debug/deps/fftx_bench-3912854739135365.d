/root/repo/target/debug/deps/fftx_bench-3912854739135365.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/fftx_bench-3912854739135365: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
