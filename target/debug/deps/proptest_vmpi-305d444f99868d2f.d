/root/repo/target/debug/deps/proptest_vmpi-305d444f99868d2f.d: crates/vmpi/tests/proptest_vmpi.rs

/root/repo/target/debug/deps/proptest_vmpi-305d444f99868d2f: crates/vmpi/tests/proptest_vmpi.rs

crates/vmpi/tests/proptest_vmpi.rs:
