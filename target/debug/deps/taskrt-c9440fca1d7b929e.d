/root/repo/target/debug/deps/taskrt-c9440fca1d7b929e.d: crates/bench/benches/taskrt.rs Cargo.toml

/root/repo/target/debug/deps/libtaskrt-c9440fca1d7b929e.rmeta: crates/bench/benches/taskrt.rs Cargo.toml

crates/bench/benches/taskrt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
