/root/repo/target/debug/deps/collectives-bf9755897f79525a.d: crates/bench/benches/collectives.rs Cargo.toml

/root/repo/target/debug/deps/libcollectives-bf9755897f79525a.rmeta: crates/bench/benches/collectives.rs Cargo.toml

crates/bench/benches/collectives.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
