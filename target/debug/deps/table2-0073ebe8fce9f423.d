/root/repo/target/debug/deps/table2-0073ebe8fce9f423.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-0073ebe8fce9f423: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
