/root/repo/target/debug/deps/ablation_ntg-2e635d0f125563e0.d: crates/bench/src/bin/ablation_ntg.rs Cargo.toml

/root/repo/target/debug/deps/libablation_ntg-2e635d0f125563e0.rmeta: crates/bench/src/bin/ablation_ntg.rs Cargo.toml

crates/bench/src/bin/ablation_ntg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
