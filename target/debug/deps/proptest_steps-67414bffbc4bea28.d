/root/repo/target/debug/deps/proptest_steps-67414bffbc4bea28.d: crates/core/tests/proptest_steps.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_steps-67414bffbc4bea28.rmeta: crates/core/tests/proptest_steps.rs Cargo.toml

crates/core/tests/proptest_steps.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
