/root/repo/target/debug/deps/fftx-56aee2a534db97ed.d: src/bin/fftx.rs

/root/repo/target/debug/deps/fftx-56aee2a534db97ed: src/bin/fftx.rs

src/bin/fftx.rs:
