/root/repo/target/debug/deps/fftxlib_repro-eeefa3e8362c21a2.d: src/lib.rs

/root/repo/target/debug/deps/fftxlib_repro-eeefa3e8362c21a2: src/lib.rs

src/lib.rs:
