/root/repo/target/debug/deps/resilience-cb43db24dca8eb24.d: crates/bench/src/bin/resilience.rs Cargo.toml

/root/repo/target/debug/deps/libresilience-cb43db24dca8eb24.rmeta: crates/bench/src/bin/resilience.rs Cargo.toml

crates/bench/src/bin/resilience.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
