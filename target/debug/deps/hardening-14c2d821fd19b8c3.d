/root/repo/target/debug/deps/hardening-14c2d821fd19b8c3.d: crates/vmpi/tests/hardening.rs Cargo.toml

/root/repo/target/debug/deps/libhardening-14c2d821fd19b8c3.rmeta: crates/vmpi/tests/hardening.rs Cargo.toml

crates/vmpi/tests/hardening.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
