/root/repo/target/debug/deps/proptest_des-3b22da30db892264.d: crates/knlsim/tests/proptest_des.rs

/root/repo/target/debug/deps/proptest_des-3b22da30db892264: crates/knlsim/tests/proptest_des.rs

crates/knlsim/tests/proptest_des.rs:
