/root/repo/target/debug/deps/ablation_ntg-26439adefedc3b5a.d: crates/bench/src/bin/ablation_ntg.rs

/root/repo/target/debug/deps/ablation_ntg-26439adefedc3b5a: crates/bench/src/bin/ablation_ntg.rs

crates/bench/src/bin/ablation_ntg.rs:
