/root/repo/target/debug/deps/fftx_knlsim-f3744d1cb99cb2e3.d: crates/knlsim/src/lib.rs crates/knlsim/src/arch.rs crates/knlsim/src/des.rs crates/knlsim/src/model.rs crates/knlsim/src/program.rs

/root/repo/target/debug/deps/libfftx_knlsim-f3744d1cb99cb2e3.rlib: crates/knlsim/src/lib.rs crates/knlsim/src/arch.rs crates/knlsim/src/des.rs crates/knlsim/src/model.rs crates/knlsim/src/program.rs

/root/repo/target/debug/deps/libfftx_knlsim-f3744d1cb99cb2e3.rmeta: crates/knlsim/src/lib.rs crates/knlsim/src/arch.rs crates/knlsim/src/des.rs crates/knlsim/src/model.rs crates/knlsim/src/program.rs

crates/knlsim/src/lib.rs:
crates/knlsim/src/arch.rs:
crates/knlsim/src/des.rs:
crates/knlsim/src/model.rs:
crates/knlsim/src/program.rs:
