/root/repo/target/debug/deps/verify_taskmodes-01a769a2653b3944.d: crates/core/tests/verify_taskmodes.rs Cargo.toml

/root/repo/target/debug/deps/libverify_taskmodes-01a769a2653b3944.rmeta: crates/core/tests/verify_taskmodes.rs Cargo.toml

crates/core/tests/verify_taskmodes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
