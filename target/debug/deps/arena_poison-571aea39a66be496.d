/root/repo/target/debug/deps/arena_poison-571aea39a66be496.d: crates/core/tests/arena_poison.rs Cargo.toml

/root/repo/target/debug/deps/libarena_poison-571aea39a66be496.rmeta: crates/core/tests/arena_poison.rs Cargo.toml

crates/core/tests/arena_poison.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/core
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
