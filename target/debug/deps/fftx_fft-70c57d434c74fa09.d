/root/repo/target/debug/deps/fftx_fft-70c57d434c74fa09.d: crates/fft/src/lib.rs crates/fft/src/batch.rs crates/fft/src/bluestein.rs crates/fft/src/cache.rs crates/fft/src/complex.rs crates/fft/src/dft.rs crates/fft/src/fft1d.rs crates/fft/src/fft3d.rs crates/fft/src/kernel.rs crates/fft/src/opcount.rs crates/fft/src/planner.rs Cargo.toml

/root/repo/target/debug/deps/libfftx_fft-70c57d434c74fa09.rmeta: crates/fft/src/lib.rs crates/fft/src/batch.rs crates/fft/src/bluestein.rs crates/fft/src/cache.rs crates/fft/src/complex.rs crates/fft/src/dft.rs crates/fft/src/fft1d.rs crates/fft/src/fft3d.rs crates/fft/src/kernel.rs crates/fft/src/opcount.rs crates/fft/src/planner.rs Cargo.toml

crates/fft/src/lib.rs:
crates/fft/src/batch.rs:
crates/fft/src/bluestein.rs:
crates/fft/src/cache.rs:
crates/fft/src/complex.rs:
crates/fft/src/dft.rs:
crates/fft/src/fft1d.rs:
crates/fft/src/fft3d.rs:
crates/fft/src/kernel.rs:
crates/fft/src/opcount.rs:
crates/fft/src/planner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
