/root/repo/target/debug/deps/fftxlib_repro-95bdb129a9d211ea.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfftxlib_repro-95bdb129a9d211ea.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
