/root/repo/target/debug/deps/fftx_bench-15d92ffc198c4c0a.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfftx_bench-15d92ffc198c4c0a.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
