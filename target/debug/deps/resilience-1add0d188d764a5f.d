/root/repo/target/debug/deps/resilience-1add0d188d764a5f.d: crates/bench/src/bin/resilience.rs Cargo.toml

/root/repo/target/debug/deps/libresilience-1add0d188d764a5f.rmeta: crates/bench/src/bin/resilience.rs Cargo.toml

crates/bench/src/bin/resilience.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
