/root/repo/target/debug/deps/ablation_grain-77e86257b340797e.d: crates/bench/src/bin/ablation_grain.rs Cargo.toml

/root/repo/target/debug/deps/libablation_grain-77e86257b340797e.rmeta: crates/bench/src/bin/ablation_grain.rs Cargo.toml

crates/bench/src/bin/ablation_grain.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
