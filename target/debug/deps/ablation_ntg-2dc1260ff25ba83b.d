/root/repo/target/debug/deps/ablation_ntg-2dc1260ff25ba83b.d: crates/bench/src/bin/ablation_ntg.rs Cargo.toml

/root/repo/target/debug/deps/libablation_ntg-2dc1260ff25ba83b.rmeta: crates/bench/src/bin/ablation_ntg.rs Cargo.toml

crates/bench/src/bin/ablation_ntg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
