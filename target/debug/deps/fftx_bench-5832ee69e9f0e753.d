/root/repo/target/debug/deps/fftx_bench-5832ee69e9f0e753.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libfftx_bench-5832ee69e9f0e753.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libfftx_bench-5832ee69e9f0e753.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
