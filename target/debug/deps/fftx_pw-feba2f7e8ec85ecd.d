/root/repo/target/debug/deps/fftx_pw-feba2f7e8ec85ecd.d: crates/pw/src/lib.rs crates/pw/src/cell.rs crates/pw/src/gamma.rs crates/pw/src/grid.rs crates/pw/src/gvec.rs crates/pw/src/layout.rs crates/pw/src/potential.rs crates/pw/src/reference.rs crates/pw/src/sticks.rs crates/pw/src/wave.rs

/root/repo/target/debug/deps/libfftx_pw-feba2f7e8ec85ecd.rlib: crates/pw/src/lib.rs crates/pw/src/cell.rs crates/pw/src/gamma.rs crates/pw/src/grid.rs crates/pw/src/gvec.rs crates/pw/src/layout.rs crates/pw/src/potential.rs crates/pw/src/reference.rs crates/pw/src/sticks.rs crates/pw/src/wave.rs

/root/repo/target/debug/deps/libfftx_pw-feba2f7e8ec85ecd.rmeta: crates/pw/src/lib.rs crates/pw/src/cell.rs crates/pw/src/gamma.rs crates/pw/src/grid.rs crates/pw/src/gvec.rs crates/pw/src/layout.rs crates/pw/src/potential.rs crates/pw/src/reference.rs crates/pw/src/sticks.rs crates/pw/src/wave.rs

crates/pw/src/lib.rs:
crates/pw/src/cell.rs:
crates/pw/src/gamma.rs:
crates/pw/src/grid.rs:
crates/pw/src/gvec.rs:
crates/pw/src/layout.rs:
crates/pw/src/potential.rs:
crates/pw/src/reference.rs:
crates/pw/src/sticks.rs:
crates/pw/src/wave.rs:
