/root/repo/target/debug/deps/recovery-1b81d52d4007f757.d: crates/bench/src/bin/recovery.rs Cargo.toml

/root/repo/target/debug/deps/librecovery-1b81d52d4007f757.rmeta: crates/bench/src/bin/recovery.rs Cargo.toml

crates/bench/src/bin/recovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
