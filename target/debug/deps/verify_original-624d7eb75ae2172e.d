/root/repo/target/debug/deps/verify_original-624d7eb75ae2172e.d: crates/core/tests/verify_original.rs

/root/repo/target/debug/deps/verify_original-624d7eb75ae2172e: crates/core/tests/verify_original.rs

crates/core/tests/verify_original.rs:
