/root/repo/target/debug/deps/fftx_taskrt-e9e2a43f8745991c.d: crates/taskrt/src/lib.rs crates/taskrt/src/error.rs crates/taskrt/src/handle.rs crates/taskrt/src/runtime.rs

/root/repo/target/debug/deps/fftx_taskrt-e9e2a43f8745991c: crates/taskrt/src/lib.rs crates/taskrt/src/error.rs crates/taskrt/src/handle.rs crates/taskrt/src/runtime.rs

crates/taskrt/src/lib.rs:
crates/taskrt/src/error.rs:
crates/taskrt/src/handle.rs:
crates/taskrt/src/runtime.rs:
