/root/repo/target/debug/deps/full_stack-a5e57263ff40345e.d: tests/full_stack.rs

/root/repo/target/debug/deps/full_stack-a5e57263ff40345e: tests/full_stack.rs

tests/full_stack.rs:
