/root/repo/target/debug/deps/fig6-ad2e7b93755dccc6.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-ad2e7b93755dccc6: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
