/root/repo/target/debug/deps/table1-ba58ef75ca71e380.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-ba58ef75ca71e380: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
