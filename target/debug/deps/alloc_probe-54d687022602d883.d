/root/repo/target/debug/deps/alloc_probe-54d687022602d883.d: crates/core/tests/alloc_probe.rs

/root/repo/target/debug/deps/alloc_probe-54d687022602d883: crates/core/tests/alloc_probe.rs

crates/core/tests/alloc_probe.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/core
