/root/repo/target/debug/deps/fig6-e2b0128a2a6b6924.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-e2b0128a2a6b6924: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
