/root/repo/target/debug/deps/ablation_contention-dd1d8fdf4682c03f.d: crates/bench/src/bin/ablation_contention.rs

/root/repo/target/debug/deps/ablation_contention-dd1d8fdf4682c03f: crates/bench/src/bin/ablation_contention.rs

crates/bench/src/bin/ablation_contention.rs:
