/root/repo/target/debug/deps/fftxlib_repro-e4537c3594b3b52e.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfftxlib_repro-e4537c3594b3b52e.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
