/root/repo/target/debug/examples/ompss_pipeline-2d701213cb35dd76.d: examples/ompss_pipeline.rs

/root/repo/target/debug/examples/ompss_pipeline-2d701213cb35dd76: examples/ompss_pipeline.rs

examples/ompss_pipeline.rs:
