/root/repo/target/debug/examples/knl_scaling-27bfcadae0f6e313.d: examples/knl_scaling.rs

/root/repo/target/debug/examples/knl_scaling-27bfcadae0f6e313: examples/knl_scaling.rs

examples/knl_scaling.rs:
