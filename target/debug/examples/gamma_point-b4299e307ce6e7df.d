/root/repo/target/debug/examples/gamma_point-b4299e307ce6e7df.d: examples/gamma_point.rs Cargo.toml

/root/repo/target/debug/examples/libgamma_point-b4299e307ce6e7df.rmeta: examples/gamma_point.rs Cargo.toml

examples/gamma_point.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
