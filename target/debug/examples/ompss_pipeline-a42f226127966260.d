/root/repo/target/debug/examples/ompss_pipeline-a42f226127966260.d: examples/ompss_pipeline.rs Cargo.toml

/root/repo/target/debug/examples/libompss_pipeline-a42f226127966260.rmeta: examples/ompss_pipeline.rs Cargo.toml

examples/ompss_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
