/root/repo/target/debug/examples/quickstart-b5465085f8d41257.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-b5465085f8d41257: examples/quickstart.rs

examples/quickstart.rs:
