/root/repo/target/debug/examples/knl_scaling-1ba025f34ece8ff9.d: examples/knl_scaling.rs

/root/repo/target/debug/examples/knl_scaling-1ba025f34ece8ff9: examples/knl_scaling.rs

examples/knl_scaling.rs:
