/root/repo/target/debug/examples/task_groups-00ac6090fdfe8d17.d: examples/task_groups.rs

/root/repo/target/debug/examples/task_groups-00ac6090fdfe8d17: examples/task_groups.rs

examples/task_groups.rs:
