/root/repo/target/debug/examples/ompss_pipeline-60d47d79c29960a6.d: examples/ompss_pipeline.rs

/root/repo/target/debug/examples/ompss_pipeline-60d47d79c29960a6: examples/ompss_pipeline.rs

examples/ompss_pipeline.rs:
