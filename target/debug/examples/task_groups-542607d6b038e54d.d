/root/repo/target/debug/examples/task_groups-542607d6b038e54d.d: examples/task_groups.rs

/root/repo/target/debug/examples/task_groups-542607d6b038e54d: examples/task_groups.rs

examples/task_groups.rs:
