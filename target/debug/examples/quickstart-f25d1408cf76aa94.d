/root/repo/target/debug/examples/quickstart-f25d1408cf76aa94.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-f25d1408cf76aa94: examples/quickstart.rs

examples/quickstart.rs:
