/root/repo/target/debug/examples/gamma_point-0d78ea43aa067afa.d: examples/gamma_point.rs

/root/repo/target/debug/examples/gamma_point-0d78ea43aa067afa: examples/gamma_point.rs

examples/gamma_point.rs:
