/root/repo/target/debug/examples/gamma_point-9efc17bfe285df29.d: examples/gamma_point.rs

/root/repo/target/debug/examples/gamma_point-9efc17bfe285df29: examples/gamma_point.rs

examples/gamma_point.rs:
