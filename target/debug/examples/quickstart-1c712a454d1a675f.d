/root/repo/target/debug/examples/quickstart-1c712a454d1a675f.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-1c712a454d1a675f.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
