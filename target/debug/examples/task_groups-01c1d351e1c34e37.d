/root/repo/target/debug/examples/task_groups-01c1d351e1c34e37.d: examples/task_groups.rs Cargo.toml

/root/repo/target/debug/examples/libtask_groups-01c1d351e1c34e37.rmeta: examples/task_groups.rs Cargo.toml

examples/task_groups.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
