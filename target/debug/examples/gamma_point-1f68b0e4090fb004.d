/root/repo/target/debug/examples/gamma_point-1f68b0e4090fb004.d: examples/gamma_point.rs

/root/repo/target/debug/examples/gamma_point-1f68b0e4090fb004: examples/gamma_point.rs

examples/gamma_point.rs:
