/root/repo/target/debug/examples/task_groups-a4fadbcd21051c0c.d: examples/task_groups.rs

/root/repo/target/debug/examples/task_groups-a4fadbcd21051c0c: examples/task_groups.rs

examples/task_groups.rs:
