/root/repo/target/debug/examples/ompss_pipeline-5b5f0a23c283f5db.d: examples/ompss_pipeline.rs

/root/repo/target/debug/examples/ompss_pipeline-5b5f0a23c283f5db: examples/ompss_pipeline.rs

examples/ompss_pipeline.rs:
