/root/repo/target/debug/examples/gamma_point-0e3228e94409de48.d: examples/gamma_point.rs Cargo.toml

/root/repo/target/debug/examples/libgamma_point-0e3228e94409de48.rmeta: examples/gamma_point.rs Cargo.toml

examples/gamma_point.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
