/root/repo/target/debug/examples/knl_scaling-7583e3385f4a0af8.d: examples/knl_scaling.rs

/root/repo/target/debug/examples/knl_scaling-7583e3385f4a0af8: examples/knl_scaling.rs

examples/knl_scaling.rs:
