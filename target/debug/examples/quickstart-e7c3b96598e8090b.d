/root/repo/target/debug/examples/quickstart-e7c3b96598e8090b.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-e7c3b96598e8090b: examples/quickstart.rs

examples/quickstart.rs:
