/root/repo/target/debug/examples/knl_scaling-95169c24c1681097.d: examples/knl_scaling.rs Cargo.toml

/root/repo/target/debug/examples/libknl_scaling-95169c24c1681097.rmeta: examples/knl_scaling.rs Cargo.toml

examples/knl_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
