/root/repo/target/debug/examples/knl_scaling-de0f7e2ccece5285.d: examples/knl_scaling.rs Cargo.toml

/root/repo/target/debug/examples/libknl_scaling-de0f7e2ccece5285.rmeta: examples/knl_scaling.rs Cargo.toml

examples/knl_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
