/root/repo/target/release/examples/verify_probe-f86462ea53f6b9ba.d: crates/taskrt/examples/verify_probe.rs

/root/repo/target/release/examples/verify_probe-f86462ea53f6b9ba: crates/taskrt/examples/verify_probe.rs

crates/taskrt/examples/verify_probe.rs:
