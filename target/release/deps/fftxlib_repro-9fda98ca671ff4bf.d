/root/repo/target/release/deps/fftxlib_repro-9fda98ca671ff4bf.d: src/lib.rs

/root/repo/target/release/deps/libfftxlib_repro-9fda98ca671ff4bf.rlib: src/lib.rs

/root/repo/target/release/deps/libfftxlib_repro-9fda98ca671ff4bf.rmeta: src/lib.rs

src/lib.rs:
