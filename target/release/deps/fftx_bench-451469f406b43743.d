/root/repo/target/release/deps/fftx_bench-451469f406b43743.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libfftx_bench-451469f406b43743.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libfftx_bench-451469f406b43743.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
