/root/repo/target/release/deps/collectives-eed83916b6d81f99.d: crates/vmpi/tests/collectives.rs

/root/repo/target/release/deps/collectives-eed83916b6d81f99: crates/vmpi/tests/collectives.rs

crates/vmpi/tests/collectives.rs:
