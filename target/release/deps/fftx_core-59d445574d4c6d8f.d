/root/repo/target/release/deps/fftx_core-59d445574d4c6d8f.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/modelplan.rs crates/core/src/original.rs crates/core/src/problem.rs crates/core/src/recorder.rs crates/core/src/steps.rs crates/core/src/taskmodes.rs

/root/repo/target/release/deps/libfftx_core-59d445574d4c6d8f.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/modelplan.rs crates/core/src/original.rs crates/core/src/problem.rs crates/core/src/recorder.rs crates/core/src/steps.rs crates/core/src/taskmodes.rs

/root/repo/target/release/deps/libfftx_core-59d445574d4c6d8f.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/modelplan.rs crates/core/src/original.rs crates/core/src/problem.rs crates/core/src/recorder.rs crates/core/src/steps.rs crates/core/src/taskmodes.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/modelplan.rs:
crates/core/src/original.rs:
crates/core/src/problem.rs:
crates/core/src/recorder.rs:
crates/core/src/steps.rs:
crates/core/src/taskmodes.rs:
