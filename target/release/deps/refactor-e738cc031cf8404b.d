/root/repo/target/release/deps/refactor-e738cc031cf8404b.d: crates/bench/src/bin/refactor.rs

/root/repo/target/release/deps/refactor-e738cc031cf8404b: crates/bench/src/bin/refactor.rs

crates/bench/src/bin/refactor.rs:
