/root/repo/target/release/deps/resilience-89da69857c667076.d: crates/bench/src/bin/resilience.rs

/root/repo/target/release/deps/resilience-89da69857c667076: crates/bench/src/bin/resilience.rs

crates/bench/src/bin/resilience.rs:
