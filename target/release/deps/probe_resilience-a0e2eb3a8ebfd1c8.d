/root/repo/target/release/deps/probe_resilience-a0e2eb3a8ebfd1c8.d: crates/bench/src/bin/probe_resilience.rs

/root/repo/target/release/deps/probe_resilience-a0e2eb3a8ebfd1c8: crates/bench/src/bin/probe_resilience.rs

crates/bench/src/bin/probe_resilience.rs:
