/root/repo/target/release/deps/fftx_core-4e46190d9b265f5a.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/modelplan.rs crates/core/src/original.rs crates/core/src/plan.rs crates/core/src/problem.rs crates/core/src/recorder.rs crates/core/src/recovery.rs crates/core/src/steps.rs crates/core/src/taskmodes.rs

/root/repo/target/release/deps/libfftx_core-4e46190d9b265f5a.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/modelplan.rs crates/core/src/original.rs crates/core/src/plan.rs crates/core/src/problem.rs crates/core/src/recorder.rs crates/core/src/recovery.rs crates/core/src/steps.rs crates/core/src/taskmodes.rs

/root/repo/target/release/deps/libfftx_core-4e46190d9b265f5a.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/modelplan.rs crates/core/src/original.rs crates/core/src/plan.rs crates/core/src/problem.rs crates/core/src/recorder.rs crates/core/src/recovery.rs crates/core/src/steps.rs crates/core/src/taskmodes.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/modelplan.rs:
crates/core/src/original.rs:
crates/core/src/plan.rs:
crates/core/src/problem.rs:
crates/core/src/recorder.rs:
crates/core/src/recovery.rs:
crates/core/src/steps.rs:
crates/core/src/taskmodes.rs:
