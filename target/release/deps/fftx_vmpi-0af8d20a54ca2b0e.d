/root/repo/target/release/deps/fftx_vmpi-0af8d20a54ca2b0e.d: crates/vmpi/src/lib.rs crates/vmpi/src/comm.rs crates/vmpi/src/error.rs crates/vmpi/src/world.rs

/root/repo/target/release/deps/libfftx_vmpi-0af8d20a54ca2b0e.rlib: crates/vmpi/src/lib.rs crates/vmpi/src/comm.rs crates/vmpi/src/error.rs crates/vmpi/src/world.rs

/root/repo/target/release/deps/libfftx_vmpi-0af8d20a54ca2b0e.rmeta: crates/vmpi/src/lib.rs crates/vmpi/src/comm.rs crates/vmpi/src/error.rs crates/vmpi/src/world.rs

crates/vmpi/src/lib.rs:
crates/vmpi/src/comm.rs:
crates/vmpi/src/error.rs:
crates/vmpi/src/world.rs:
