/root/repo/target/release/deps/recovery-57501286fefb149a.d: crates/bench/src/bin/recovery.rs

/root/repo/target/release/deps/recovery-57501286fefb149a: crates/bench/src/bin/recovery.rs

crates/bench/src/bin/recovery.rs:
