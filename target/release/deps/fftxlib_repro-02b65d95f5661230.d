/root/repo/target/release/deps/fftxlib_repro-02b65d95f5661230.d: src/lib.rs

/root/repo/target/release/deps/libfftxlib_repro-02b65d95f5661230.rlib: src/lib.rs

/root/repo/target/release/deps/libfftxlib_repro-02b65d95f5661230.rmeta: src/lib.rs

src/lib.rs:
