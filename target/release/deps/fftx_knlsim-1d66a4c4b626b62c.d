/root/repo/target/release/deps/fftx_knlsim-1d66a4c4b626b62c.d: crates/knlsim/src/lib.rs crates/knlsim/src/arch.rs crates/knlsim/src/des.rs crates/knlsim/src/model.rs crates/knlsim/src/program.rs

/root/repo/target/release/deps/libfftx_knlsim-1d66a4c4b626b62c.rlib: crates/knlsim/src/lib.rs crates/knlsim/src/arch.rs crates/knlsim/src/des.rs crates/knlsim/src/model.rs crates/knlsim/src/program.rs

/root/repo/target/release/deps/libfftx_knlsim-1d66a4c4b626b62c.rmeta: crates/knlsim/src/lib.rs crates/knlsim/src/arch.rs crates/knlsim/src/des.rs crates/knlsim/src/model.rs crates/knlsim/src/program.rs

crates/knlsim/src/lib.rs:
crates/knlsim/src/arch.rs:
crates/knlsim/src/des.rs:
crates/knlsim/src/model.rs:
crates/knlsim/src/program.rs:
