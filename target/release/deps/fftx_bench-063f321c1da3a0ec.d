/root/repo/target/release/deps/fftx_bench-063f321c1da3a0ec.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libfftx_bench-063f321c1da3a0ec.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libfftx_bench-063f321c1da3a0ec.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
