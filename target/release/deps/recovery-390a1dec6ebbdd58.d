/root/repo/target/release/deps/recovery-390a1dec6ebbdd58.d: crates/bench/src/bin/recovery.rs

/root/repo/target/release/deps/recovery-390a1dec6ebbdd58: crates/bench/src/bin/recovery.rs

crates/bench/src/bin/recovery.rs:
