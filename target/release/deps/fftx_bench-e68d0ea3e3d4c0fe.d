/root/repo/target/release/deps/fftx_bench-e68d0ea3e3d4c0fe.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libfftx_bench-e68d0ea3e3d4c0fe.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libfftx_bench-e68d0ea3e3d4c0fe.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
