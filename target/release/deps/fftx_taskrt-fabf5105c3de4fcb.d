/root/repo/target/release/deps/fftx_taskrt-fabf5105c3de4fcb.d: crates/taskrt/src/lib.rs crates/taskrt/src/error.rs crates/taskrt/src/handle.rs crates/taskrt/src/runtime.rs

/root/repo/target/release/deps/libfftx_taskrt-fabf5105c3de4fcb.rlib: crates/taskrt/src/lib.rs crates/taskrt/src/error.rs crates/taskrt/src/handle.rs crates/taskrt/src/runtime.rs

/root/repo/target/release/deps/libfftx_taskrt-fabf5105c3de4fcb.rmeta: crates/taskrt/src/lib.rs crates/taskrt/src/error.rs crates/taskrt/src/handle.rs crates/taskrt/src/runtime.rs

crates/taskrt/src/lib.rs:
crates/taskrt/src/error.rs:
crates/taskrt/src/handle.rs:
crates/taskrt/src/runtime.rs:
