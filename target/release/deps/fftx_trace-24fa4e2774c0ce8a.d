/root/repo/target/release/deps/fftx_trace-24fa4e2774c0ce8a.d: crates/trace/src/lib.rs crates/trace/src/event.rs crates/trace/src/lane_ctx.rs crates/trace/src/histogram.rs crates/trace/src/paraver.rs crates/trace/src/pop.rs crates/trace/src/table.rs crates/trace/src/timeline.rs crates/trace/src/trace.rs

/root/repo/target/release/deps/libfftx_trace-24fa4e2774c0ce8a.rlib: crates/trace/src/lib.rs crates/trace/src/event.rs crates/trace/src/lane_ctx.rs crates/trace/src/histogram.rs crates/trace/src/paraver.rs crates/trace/src/pop.rs crates/trace/src/table.rs crates/trace/src/timeline.rs crates/trace/src/trace.rs

/root/repo/target/release/deps/libfftx_trace-24fa4e2774c0ce8a.rmeta: crates/trace/src/lib.rs crates/trace/src/event.rs crates/trace/src/lane_ctx.rs crates/trace/src/histogram.rs crates/trace/src/paraver.rs crates/trace/src/pop.rs crates/trace/src/table.rs crates/trace/src/timeline.rs crates/trace/src/trace.rs

crates/trace/src/lib.rs:
crates/trace/src/event.rs:
crates/trace/src/lane_ctx.rs:
crates/trace/src/histogram.rs:
crates/trace/src/paraver.rs:
crates/trace/src/pop.rs:
crates/trace/src/table.rs:
crates/trace/src/timeline.rs:
crates/trace/src/trace.rs:
