/root/repo/target/release/deps/fftx_fault-907aee627fc9a837.d: crates/fault/src/lib.rs crates/fault/src/chaos.rs crates/fault/src/fatal.rs crates/fault/src/plan.rs

/root/repo/target/release/deps/libfftx_fault-907aee627fc9a837.rlib: crates/fault/src/lib.rs crates/fault/src/chaos.rs crates/fault/src/fatal.rs crates/fault/src/plan.rs

/root/repo/target/release/deps/libfftx_fault-907aee627fc9a837.rmeta: crates/fault/src/lib.rs crates/fault/src/chaos.rs crates/fault/src/fatal.rs crates/fault/src/plan.rs

crates/fault/src/lib.rs:
crates/fault/src/chaos.rs:
crates/fault/src/fatal.rs:
crates/fault/src/plan.rs:
