/root/repo/target/release/deps/fftx-2ba26ef03ad1a00f.d: src/bin/fftx.rs

/root/repo/target/release/deps/fftx-2ba26ef03ad1a00f: src/bin/fftx.rs

src/bin/fftx.rs:
