/root/repo/target/release/deps/alloc_probe-47f8d44efc1e74ac.d: crates/core/tests/alloc_probe.rs

/root/repo/target/release/deps/alloc_probe-47f8d44efc1e74ac: crates/core/tests/alloc_probe.rs

crates/core/tests/alloc_probe.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/core
