/root/repo/target/release/deps/resilience-5a5789a10af186bf.d: crates/bench/src/bin/resilience.rs

/root/repo/target/release/deps/resilience-5a5789a10af186bf: crates/bench/src/bin/resilience.rs

crates/bench/src/bin/resilience.rs:
