/root/repo/target/release/deps/fftx-36c1c51fe4fed39a.d: src/bin/fftx.rs

/root/repo/target/release/deps/fftx-36c1c51fe4fed39a: src/bin/fftx.rs

src/bin/fftx.rs:
