/root/repo/target/release/deps/fftx_pw-b018e2939683fe1d.d: crates/pw/src/lib.rs crates/pw/src/cell.rs crates/pw/src/gamma.rs crates/pw/src/grid.rs crates/pw/src/gvec.rs crates/pw/src/layout.rs crates/pw/src/potential.rs crates/pw/src/reference.rs crates/pw/src/sticks.rs crates/pw/src/wave.rs

/root/repo/target/release/deps/libfftx_pw-b018e2939683fe1d.rlib: crates/pw/src/lib.rs crates/pw/src/cell.rs crates/pw/src/gamma.rs crates/pw/src/grid.rs crates/pw/src/gvec.rs crates/pw/src/layout.rs crates/pw/src/potential.rs crates/pw/src/reference.rs crates/pw/src/sticks.rs crates/pw/src/wave.rs

/root/repo/target/release/deps/libfftx_pw-b018e2939683fe1d.rmeta: crates/pw/src/lib.rs crates/pw/src/cell.rs crates/pw/src/gamma.rs crates/pw/src/grid.rs crates/pw/src/gvec.rs crates/pw/src/layout.rs crates/pw/src/potential.rs crates/pw/src/reference.rs crates/pw/src/sticks.rs crates/pw/src/wave.rs

crates/pw/src/lib.rs:
crates/pw/src/cell.rs:
crates/pw/src/gamma.rs:
crates/pw/src/grid.rs:
crates/pw/src/gvec.rs:
crates/pw/src/layout.rs:
crates/pw/src/potential.rs:
crates/pw/src/reference.rs:
crates/pw/src/sticks.rs:
crates/pw/src/wave.rs:
