/root/repo/target/release/deps/fftx_fft-c6118ae150b4a259.d: crates/fft/src/lib.rs crates/fft/src/batch.rs crates/fft/src/bluestein.rs crates/fft/src/cache.rs crates/fft/src/complex.rs crates/fft/src/dft.rs crates/fft/src/fft1d.rs crates/fft/src/fft3d.rs crates/fft/src/kernel.rs crates/fft/src/opcount.rs crates/fft/src/planner.rs

/root/repo/target/release/deps/libfftx_fft-c6118ae150b4a259.rlib: crates/fft/src/lib.rs crates/fft/src/batch.rs crates/fft/src/bluestein.rs crates/fft/src/cache.rs crates/fft/src/complex.rs crates/fft/src/dft.rs crates/fft/src/fft1d.rs crates/fft/src/fft3d.rs crates/fft/src/kernel.rs crates/fft/src/opcount.rs crates/fft/src/planner.rs

/root/repo/target/release/deps/libfftx_fft-c6118ae150b4a259.rmeta: crates/fft/src/lib.rs crates/fft/src/batch.rs crates/fft/src/bluestein.rs crates/fft/src/cache.rs crates/fft/src/complex.rs crates/fft/src/dft.rs crates/fft/src/fft1d.rs crates/fft/src/fft3d.rs crates/fft/src/kernel.rs crates/fft/src/opcount.rs crates/fft/src/planner.rs

crates/fft/src/lib.rs:
crates/fft/src/batch.rs:
crates/fft/src/bluestein.rs:
crates/fft/src/cache.rs:
crates/fft/src/complex.rs:
crates/fft/src/dft.rs:
crates/fft/src/fft1d.rs:
crates/fft/src/fft3d.rs:
crates/fft/src/kernel.rs:
crates/fft/src/opcount.rs:
crates/fft/src/planner.rs:
