//! Value-generation strategies.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Derives a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }
}

/// Strategies compose by reference too (parity with upstream).
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "strategy: empty range");
                let span = (b as i128 - a as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (a as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.next_unit_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (a, b) = (*self.start(), *self.end());
        a + (b - a) * rng.next_unit_f64()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy for [`Arbitrary`] types; see [`any`].
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T` (e.g. `any::<bool>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}
