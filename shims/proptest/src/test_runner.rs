//! Test harness plumbing: config, RNG, and case-failure reporting.

use std::fmt;

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic per-case generator (splitmix64). Seeded from the test's
/// fully-qualified name and the case index, so every run — local or CI —
/// generates the same inputs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Generator for `case` of the test whose name hashes to `seed`.
    pub fn for_case(seed: u64, case: u32) -> Self {
        TestRng {
            state: seed ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// FNV-1a hash of a test name (macro-internal).
pub fn fnv1a(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// A failed case (carried back to the harness, which panics with context).
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}
