//! Offline drop-in subset of the `proptest` API.
//!
//! Implements the surface this workspace uses: the `proptest!` macro with
//! `ident in strategy` arguments and an optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]` header, numeric
//! range strategies, tuple strategies, `prop_map` / `prop_flat_map`,
//! `collection::{vec, btree_set}`, `any::<bool>()`, and the
//! `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! case number and generated arguments stay deterministic per test name,
//! so failures reproduce exactly), and the value stream is splitmix64.

pub mod strategy;

pub mod collection;

pub mod test_runner;

/// Everything a test file needs.
pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a test running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { [$cfg] $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { [$crate::test_runner::ProptestConfig::default()] $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ([$cfg:expr] $( $(#[$meta:meta])* fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let seed = $crate::test_runner::fnv1a(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(seed, case);
                    $( let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng); )*
                    let outcome = (move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(err) = outcome {
                        ::std::panic!(
                            "proptest {}: case {}/{} failed: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            err
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking) so the harness can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), l, r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
                    stringify!($left), stringify!($right), l, r, format!($($fmt)*)
                );
            }
        }
    };
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l != *r,
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left), stringify!($right), l
                );
            }
        }
    };
}
