//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

/// Inclusive size bounds for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        debug_assert!(self.min <= self.max);
        self.min + (rng.next_u64() as usize) % (self.max - self.min + 1)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "collection size: empty range");
        SizeRange { min: r.start, max: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange { min: *r.start(), max: *r.end() }
    }
}

/// `Vec` of values drawn from `element`, with length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// `BTreeSet` of values drawn from `element`. Aims for a size in `size`;
/// like upstream, a small value domain may yield fewer (never fewer than
/// reachable) distinct elements.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy { element, size: size.into() }
}

/// See [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.sample(rng);
        let mut out = BTreeSet::new();
        let mut attempts = 0usize;
        while out.len() < target && attempts < 50 + target * 20 {
            out.insert(self.element.generate(rng));
            attempts += 1;
        }
        out
    }
}
