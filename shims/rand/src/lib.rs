//! Offline drop-in subset of the `rand` API.
//!
//! Mirrors the calls this workspace makes — `StdRng::seed_from_u64` plus
//! `Rng::gen_range` over primitive ranges — with a splitmix64 core. The
//! stream differs from upstream `rand`, which is fine here: the repo only
//! relies on determinism for a given seed, never on specific values.

use std::ops::{Range, RangeInclusive};

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a `u64` seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Random value generation over primitive ranges.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw from `range` (half-open or inclusive primitive range).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Uniform f64 in `[0, 1)`.
    fn gen_unit(&mut self) -> f64
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges a value can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: Rng>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: Rng>(self, rng: &mut R) -> f64 {
        self.start + (self.end - self.start) * rng.gen_unit()
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: Rng>(self, rng: &mut R) -> f64 {
        let (a, b) = (*self.start(), *self.end());
        a + (b - a) * rng.gen_unit()
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "gen_range: empty range");
                let span = (b as i128 - a as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (a as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Generator types.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_range_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: f64 = r.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&v));
        }
    }

    #[test]
    fn int_ranges_cover_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[r.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = r.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&v));
        }
    }
}
