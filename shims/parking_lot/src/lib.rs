//! Offline drop-in subset of the `parking_lot` API backed by `std::sync`.
//!
//! The build environment has no registry access, so the workspace vendors
//! the few external crates it uses as thin shims. This one mirrors the
//! `parking_lot` surface the repo actually calls: `Mutex` (non-poisoning
//! `lock()` returning the guard directly) and `Condvar` (`wait` /
//! `wait_until` / `wait_for` taking `&mut MutexGuard`). Poisoned std locks
//! are recovered transparently, matching parking_lot's no-poisoning
//! semantics.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::{Duration, Instant};

/// Mutual exclusion primitive; `lock()` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (exclusive borrow proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(sync::MutexGuard<'a, T>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable operating on [`MutexGuard`]s in place.
#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }

    /// Blocks until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        self.replace(guard, |g| self.0.wait(g).unwrap_or_else(PoisonError::into_inner));
    }

    /// Blocks until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        self.wait_for(guard, timeout)
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        self.replace(guard, |g| {
            let (g, r) = self
                .0
                .wait_timeout(g, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            timed_out = r.timed_out();
            g
        });
        WaitTimeoutResult(timed_out)
    }

    /// Runs `f` on the inner std guard in place. `f` must not panic (the
    /// std waits only fail on poisoning, which the callers recover).
    fn replace<'a, T>(
        &self,
        slot: &mut MutexGuard<'a, T>,
        f: impl FnOnce(sync::MutexGuard<'a, T>) -> sync::MutexGuard<'a, T>,
    ) {
        unsafe {
            let inner = std::ptr::read(&slot.0);
            let next = f(inner);
            std::ptr::write(&mut slot.0, next);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }

    #[test]
    fn wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(r.timed_out());
    }
}
