//! Offline drop-in subset of the `criterion` API.
//!
//! Runs each benchmark a fixed number of timed iterations and prints the
//! mean wall time per iteration — no statistics, plots, or baselines.
//! Exists so `cargo bench` works in the registry-less build environment;
//! the repo's headline numbers come from the `fftx-bench` binaries, not
//! from these micro-benchmarks.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id combining a function name and a parameter value.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }
}

/// Accepted by `bench_function`-style calls: `&str`, `String`, or
/// [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.0
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Declared throughput of one iteration (printed alongside the time).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `f`, discarding one warmup iteration.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        black_box(f());
        let t0 = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.elapsed = t0.elapsed();
        self.iters = self.samples as u64;
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

fn run_one(name: &str, samples: usize, throughput: Option<Throughput>, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        elapsed: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    if b.iters == 0 {
        println!("{name:<40} (no iterations)");
        return;
    }
    let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
    let rate = match throughput {
        Some(Throughput::Bytes(n)) => format!("  {:>10.1} MiB/s", n as f64 / per_iter / (1 << 20) as f64),
        Some(Throughput::Elements(n)) => format!("  {:>10.2} Melem/s", n as f64 / per_iter / 1e6),
        None => String::new(),
    };
    println!("{name:<40} {:>12.3} us/iter{rate}", per_iter * 1e6);
}

impl Criterion {
    /// Runs one benchmark.
    pub fn bench_function(&mut self, id: impl IntoBenchmarkId, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        run_one(&id.into_id(), self.sample_size, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares the throughput of subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(&mut self, id: impl IntoBenchmarkId, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        let name = format!("{}/{}", self.name, id.into_id());
        run_one(&name, self.sample_size, self.throughput, f);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.0);
        run_one(&name, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions as a callable `fn $name()`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main()` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
