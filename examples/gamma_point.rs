//! The Γ-point optimisation: real wavefunctions have Hermitian plane-wave
//! coefficients, so two bands ride one complex FFT and only half the sphere
//! is stored — FFTXlib's `gamma_only` path, reproduced and verified here.
//!
//! Run with: `cargo run --release --example gamma_point`

use fftxlib_repro::pw::gamma::{apply_vloc_gamma, gamma_fft_count, GammaBand, HalfSphere};
use fftxlib_repro::pw::{generate_potential, Cell, FftGrid, GSphere, StickSet, DUAL};
use std::time::Instant;

fn main() {
    let ecut = 8.0;
    let cell = Cell::cubic(9.0);
    let grid = FftGrid::from_cutoff(&cell, DUAL * ecut);
    let sphere = GSphere::generate(&cell, ecut, &grid);
    let half = HalfSphere::from_sphere(&sphere);
    let v = generate_potential(&grid, 3);
    let nbnd = 8;

    println!("Gamma-point path on a {}^3 grid:", grid.nr1);
    println!(
        "  full sphere: {} plane waves; half storage: {} ({}x saving)",
        sphere.len(),
        half.len(),
        sphere.len() as f64 / half.len() as f64
    );
    println!(
        "  FFTs for {nbnd} bands: complex path {nbnd}, gamma path {} (two bands per transform)\n",
        gamma_fft_count(nbnd)
    );

    // Generate real bands and run both paths.
    let bands: Vec<GammaBand> = (0..nbnd).map(|b| GammaBand::generate(&half, b, 17)).collect();

    let t0 = Instant::now();
    let gamma_out = apply_vloc_gamma(&half, &grid, &v, &bands);
    let t_gamma = t0.elapsed();

    // Complex path on the expanded bands, through the ordinary machinery.
    let set = StickSet::build(&sphere, &grid);
    let reorder = |full: &[fftxlib_repro::fft::Complex64]| {
        use std::collections::HashMap;
        let by_miller: HashMap<(i32, i32, i32), _> = sphere
            .vectors
            .iter()
            .zip(full)
            .map(|(g, &c)| (g.miller, c))
            .collect();
        let mut out = Vec::with_capacity(set.ngw);
        for stick in &set.sticks {
            for &l in &stick.lz {
                out.push(by_miller[&(stick.hk.0, stick.hk.1, l)]);
            }
        }
        out
    };
    let full_bands: Vec<Vec<_>> = bands
        .iter()
        .map(|b| reorder(&b.to_full(&half, &sphere)))
        .collect();
    let t0 = Instant::now();
    let complex_out = fftxlib_repro::pw::apply_vloc(&set, &grid, &v, &full_bands);
    let t_complex = t0.elapsed();

    // Verify agreement.
    let mut worst = 0.0_f64;
    for (b, g) in gamma_out.iter().enumerate() {
        let got = reorder(&g.to_full(&half, &sphere));
        worst = worst.max(fftxlib_repro::fft::max_dist(&got, &complex_out[b]));
    }
    println!("max deviation gamma vs complex path: {worst:.3e}");
    assert!(worst < 1e-9);
    println!(
        "wall time: gamma {:.1} ms vs complex {:.1} ms ({:.2}x)",
        t_gamma.as_secs_f64() * 1e3,
        t_complex.as_secs_f64() * 1e3,
        t_complex.as_secs_f64() / t_gamma.as_secs_f64()
    );
    println!("OK — the gamma trick halves the transform count at identical results.");
}
