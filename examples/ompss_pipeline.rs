//! The two task-based optimisation strategies of Section IV, executed for
//! real: strategy 1 turns every pipeline step into a dependency-chained
//! task (communication/computation overlap), strategy 2 turns every band's
//! whole FFT into one independent task (de-synchronisation). Both must — and
//! do — produce bit-identical results to the static original.
//!
//! Run with: `cargo run --release --example ompss_pipeline`

use fftxlib_repro::core::{run, FftxConfig, Mode, Problem};
use fftxlib_repro::fft::max_dist;
use fftxlib_repro::trace::{render_timeline, TimelineOptions};

fn main() {
    let base = FftxConfig::small(2, 3, Mode::Original);
    println!("Strategy comparison on a small real problem ({} ranks x {} threads/groups, {} bands)\n",
        base.nr, base.ntg, base.nbnd);

    let mut reference: Option<Vec<Vec<fftxlib_repro::fft::Complex64>>> = None;
    for mode in [Mode::Original, Mode::TaskPerStep, Mode::TaskPerFft] {
        let mut config = base;
        config.mode = mode;
        let problem = Problem::new(config);
        let out = run(&problem);

        match &reference {
            None => reference = Some(out.bands.clone()),
            Some(expect) => {
                let worst = out
                    .bands
                    .iter()
                    .zip(expect)
                    .map(|(a, b)| max_dist(a, b))
                    .fold(0.0_f64, f64::max);
                assert!(worst < 1e-12, "{mode:?} diverged: {worst}");
            }
        }

        let tasks = out.trace.tasks.len();
        let threads: std::collections::BTreeSet<usize> = out
            .trace
            .compute
            .iter()
            .map(|r| r.lane.thread)
            .collect();
        println!(
            "{:<12} wall {:.4}s, {:>3} task records, compute on worker threads {:?}",
            mode.name(),
            out.fft_phase_s,
            tasks,
            threads
        );

        if mode == Mode::TaskPerStep {
            // Show the step-task pipeline of rank 0: chains of
            // pack -> fftz -> scatter -> fftxy -> vofr -> ... per band,
            // with different bands overlapping.
            println!("\n  task pipeline on rank 0 (first 12 task records):");
            let mut recs: Vec<_> = out
                .trace
                .tasks
                .iter()
                .filter(|t| t.lane.rank == 0)
                .collect();
            recs.sort_by(|a, b| a.t_start.total_cmp(&b.t_start));
            for t in recs.iter().take(12) {
                println!(
                    "    {:<16} worker {}  {:.6}s .. {:.6}s",
                    t.label, t.lane.thread, t.t_start, t.t_end
                );
            }
            println!();
        }
    }

    println!("\nAll three strategies produced identical bands (max deviation < 1e-12).\n");

    // Timeline of the task-per-fft run, lanes = (rank, worker).
    let mut config = base;
    config.mode = Mode::TaskPerFft;
    let problem = Problem::new(config);
    let out = run(&problem);
    println!("Compute timeline of the task-per-FFT run (lanes are rank x worker):");
    print!(
        "{}",
        render_timeline(
            &out.trace,
            &TimelineOptions {
                width: 100,
                window: None,
                show_comm: true,
            }
        )
    );
}
