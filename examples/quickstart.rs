//! Quickstart: apply a real-space potential to a handful of plane-wave
//! bands with the distributed FFT kernel, and check the result against the
//! serial dense-grid reference.
//!
//! Run with: `cargo run --release --example quickstart`

use fftxlib_repro::core::{run, FftxConfig, Mode, Problem};
use fftxlib_repro::fft::max_dist;
use fftxlib_repro::pw::apply_vloc;

fn main() {
    // A laptop-scale problem: cutoff 6 Ry in an 8 bohr cell -> ~24^3 grid,
    // 2 MPI ranks x 2 FFT task groups, 4 bands.
    let config = FftxConfig::small(2, 2, Mode::Original);
    let problem = Problem::new(config);
    let grid = problem.grid();
    println!("FFTXlib reproduction quickstart");
    println!("  cell:   cubic, alat = {} bohr", config.alat);
    println!("  cutoff: {} Ry -> grid {} x {} x {}", config.ecutwfc, grid.nr1, grid.nr2, grid.nr3);
    println!(
        "  sphere: {} plane waves on {} sticks",
        problem.layout.set.ngw,
        problem.layout.set.nst()
    );
    println!(
        "  layout: {} ranks = {} x {} (ranks x task groups), {} bands\n",
        config.vmpi_ranks(),
        config.nr,
        config.ntg,
        config.nbnd
    );

    // Run the distributed kernel (forward FFT -> V(r) -> backward FFT for
    // every band) on virtual MPI ranks.
    let out = run(&problem);
    println!("FFT phase completed in {:.4}s (wall time, {} virtual ranks)", out.fft_phase_s, config.vmpi_ranks());

    // Verify against the serial reference.
    let bands_in: Vec<Vec<_>> = (0..config.nbnd).map(|b| problem.band(b)).collect();
    let expect = apply_vloc(&problem.layout.set, &grid, &problem.v, &bands_in);
    let mut worst = 0.0_f64;
    for (got, want) in out.bands.iter().zip(&expect) {
        worst = worst.max(max_dist(got, want));
    }
    println!("max deviation from the serial reference: {worst:.3e}");
    assert!(worst < 1e-9, "distributed kernel must match the reference");
    println!("OK — distributed pipeline matches the dense-grid reference.");

    // A peek at what was recorded.
    let alltoalls = out
        .trace
        .comm
        .iter()
        .filter(|r| r.op == fftxlib_repro::trace::CommOp::Alltoall)
        .count();
    println!(
        "trace: {} compute bursts, {} MPI calls ({} scatter alltoalls)",
        out.trace.compute.len(),
        out.trace.comm.len(),
        alltoalls
    );
}
