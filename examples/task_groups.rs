//! The FFT task-group trade-off (Section II of the paper): at a fixed rank
//! count, sweep the number of task groups and show how the communication
//! shifts between the pack/unpack `Alltoallv` (neighbouring-rank groups)
//! and the scatter `Alltoall` (strided families) — including the two
//! extreme cases the paper discusses.
//!
//! Run with: `cargo run --release --example task_groups`

use fftxlib_repro::core::{run, Decomposition, FftxConfig, Mode, Problem};
use fftxlib_repro::trace::{communicator_summary, CommOp};

fn main() {
    let total_ranks = 4usize;
    println!("Task-group sweep at {total_ranks} virtual MPI ranks (real execution)\n");
    println!(
        "{:<8} {:>10} {:>14} {:>14} {:>12} {:>12}",
        "ntg", "wall s", "pack calls", "scatter calls", "pack MiB", "scatter MiB"
    );

    for ntg in [1usize, 2, 4] {
        let config = FftxConfig {
            ecutwfc: 6.0,
            alat: 8.0,
            nbnd: 4,
            nr: total_ranks / ntg,
            ntg,
            mode: Mode::Original,
            decomp: Decomposition::Slab,
            seed: 42,
        };
        let problem = Problem::new(config);
        let out = run(&problem);

        let pack: Vec<_> = out
            .trace
            .comm
            .iter()
            .filter(|r| r.op == CommOp::Alltoallv)
            .collect();
        let scatter: Vec<_> = out
            .trace
            .comm
            .iter()
            .filter(|r| r.op == CommOp::Alltoall)
            .collect();
        let mib = |v: &[&fftxlib_repro::trace::CommRecord]| {
            v.iter().map(|r| r.bytes).sum::<usize>() as f64 / (1024.0 * 1024.0)
        };
        println!(
            "{:<8} {:>10.4} {:>14} {:>14} {:>12.3} {:>12.3}",
            format!("{} x {}", config.nr, config.ntg),
            out.fft_phase_s,
            pack.len(),
            scatter.len(),
            mib(&pack),
            mib(&scatter),
        );
    }

    println!("\nThe two extremes (paper, Section II):");
    println!("  ntg = 1: pack is local, ALL collective cost sits in the scatter");
    println!("           (which then involves every rank);");
    println!("  ntg = P: the scatter family has a single member (free), ALL cost");
    println!("           sits in the pack/unpack over every rank.\n");

    // Show the communicator structure for the mixed case, like Fig. 3's
    // communicator timeline: 2 pack groups of 2 neighbours, 2 scatter
    // families of 2 strided ranks.
    let config = FftxConfig {
        ecutwfc: 6.0,
        alat: 8.0,
        nbnd: 4,
        nr: 2,
        ntg: 2,
        mode: Mode::Original,
        decomp: Decomposition::Slab,
        seed: 42,
    };
    let problem = Problem::new(config);
    let out = run(&problem);
    println!("Communicator usage for 2 x 2 (cf. the paper's Fig. 3):");
    print!("{}", communicator_summary(&out.trace));
    println!("(each rank talks on one pack communicator and one scatter communicator)");
}
