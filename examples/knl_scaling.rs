//! A node-scale scaling study on the modeled KNL: the paper's benchmark
//! configurations (ecutwfc 80 Ry, alat 20 bohr, 128 bands) swept over rank
//! counts for the original and task-based versions — a compact version of
//! Figs. 2 and 6 runnable in seconds. For the full harness with shape
//! checks and CSV artefacts use the `fftx-bench` binaries.
//!
//! Run with: `cargo run --release --example knl_scaling`

use fftxlib_repro::core::{run_modeled, FftxConfig, Mode};
use fftxlib_repro::trace::StateClass;

fn main() {
    println!("Simulated KNL node: 68 cores @ 1.4 GHz, 4-way SMT");
    println!("Benchmark: ecutwfc 80 Ry, alat 20 bohr, 128 bands (grid 120^3)\n");
    println!(
        "{:<8} {:>6} {:>22} {:>22} {:>8}",
        "config", "lanes", "original runtime (s)", "ompss runtime (s)", "gain"
    );

    for nr in [1usize, 2, 4, 8, 16] {
        let orig = run_modeled(FftxConfig::paper(nr, Mode::Original));
        let ompss = run_modeled(FftxConfig::paper(nr, Mode::TaskPerFft));
        println!(
            "{:<8} {:>6} {:>22.4} {:>22.4} {:>7.1}%",
            format!("{nr} x 8"),
            nr * 8,
            orig.runtime,
            ompss.runtime,
            (1.0 - ompss.runtime / orig.runtime) * 100.0
        );
    }

    println!("\nThe mechanism (8 x 8):");
    let orig = run_modeled(FftxConfig::paper(8, Mode::Original));
    let ompss = run_modeled(FftxConfig::paper(8, Mode::TaskPerFft));
    println!(
        "  main-phase IPC: original {:.3}  ->  ompss {:.3}",
        orig.trace.mean_ipc(StateClass::FftXy),
        ompss.trace.mean_ipc(StateClass::FftXy)
    );
    println!(
        "  the dynamic schedule de-synchronises the compute phases, so the"
    );
    println!(
        "  high-intensity xy-FFT overlaps low-intensity phases instead of"
    );
    println!("  contending with 63 copies of itself (paper: 0.75 -> 0.85).");
}
